"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` for PEP 660 editable installs;
this offline environment lacks it, so ``python setup.py develop`` (or
``pip install -e . --config-settings editable_mode=compat``) is the
supported editable-install path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
