"""The on-disk content-addressed store of the measurement cache.

Layout mirrors git's object store: ``<root>/objects/<key[:2]>/<key>.json``.
Writes go through a temp file + ``os.replace`` so concurrent campaign
shards (worker processes sharing one ``--cache-dir``) never observe a
torn entry — the worst race is two workers writing the same key, which
is idempotent because the content *is* the address.

Anything unreadable (missing file, truncated JSON, wrong schema
version) reads as a miss; the caller simply re-measures, which is
always safe because measurements are deterministic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: On-disk entry schema version; bump to invalidate every stored entry.
STORE_VERSION = 1


class DiskStore:
    """Content-addressed JSON entries under one cache directory."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> "dict | None":
        """Load one entry, or ``None`` when missing/corrupt/stale."""
        try:
            payload = json.loads(
                self.path_for(key).read_text(encoding="utf-8"))
            if (payload.get("version") != STORE_VERSION
                    or payload.get("key") != key):
                return None
            return payload
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: dict) -> int:
        """Atomically persist one entry; returns the bytes written."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"version": STORE_VERSION, "key": key, **payload},
                          separators=(",", ":"))
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, path)
        return len(body)

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))
