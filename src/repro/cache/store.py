"""The on-disk content-addressed store of the measurement cache.

Layout mirrors git's object store: ``<root>/objects/<key[:2]>/<key>.json``.
Writes go through a temp file that is fsynced and then atomically
``os.replace``\\d, so concurrent campaign shards (worker processes
sharing one ``--cache-dir``) never observe a torn entry — the worst
race is two workers writing the same key, which is idempotent because
the content *is* the address. A write that fails partway removes its
temp file, and opening a store sweeps temp files old enough that their
writer must be dead (a killed worker's leak), so crashes never grow
the store unboundedly.

Anything unreadable (missing file, truncated JSON, wrong schema
version, an object damaged by the ``cache.store.read`` fault point in
chaos runs) reads as a miss; the caller simply re-measures, which is
always safe because measurements are deterministic.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import suppress
from pathlib import Path

from repro.resilience import runtime as resilience
from repro.resilience.faults import corrupt_text, stable_key
from repro.telemetry import runtime as telemetry

#: On-disk entry schema version; bump to invalidate every stored entry.
STORE_VERSION = 1

#: Temp files older than this are presumed orphaned by a dead writer
#: and swept on store open. Generous enough that no live writer — a
#: put is a single small write — can be swept mid-flight.
STALE_TMP_SECONDS = 3600.0


class DiskStore:
    """Content-addressed JSON entries under one cache directory."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.swept_tmp = self._sweep_stale_tmp()

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _sweep_stale_tmp(self) -> int:
        """Remove temp files leaked by writers that died mid-put."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        cutoff = time.time() - STALE_TMP_SECONDS
        swept = 0
        for tmp in objects.glob("*/*.tmp"):
            with suppress(OSError):  # racing writers/sweepers are fine
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
        if swept:
            registry = telemetry.metrics()
            if registry.enabled:
                registry.counter("cache.tmp_swept").inc(swept)
        return swept

    def get(self, key: str) -> "dict | None":
        """Load one entry, or ``None`` when missing/corrupt/stale."""
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            return None
        action = resilience.check("cache.store.read", key=stable_key(key))
        if action is not None and action.mode == "corrupt":
            text = corrupt_text(text, key=stable_key(key))
        try:
            payload = json.loads(text)
            if (payload.get("version") != STORE_VERSION
                    or payload.get("key") != key):
                return None
            return payload
        except ValueError:
            return None

    def put(self, key: str, payload: dict) -> int:
        """Durably persist one entry; returns the bytes written."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"version": STORE_VERSION, "key": key, **payload},
                          separators=(",", ":"))
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Never leak the temp file — a crashed or faulted writer
            # must not leave objects for other workers to trip over.
            with suppress(OSError):
                tmp.unlink()
            raise
        return len(body)

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))
