"""Process-global measurement-cache runtime.

Mirrors :mod:`repro.telemetry.runtime`: hot-path code never owns a
cache, it asks this module for the process-global one
(:func:`active`). Until :func:`configure` is called the accessor hands
back a shared no-op cache, so the disabled path costs one function
call and an attribute read. The slot itself is a
:class:`repro.utils.runtime.ProcessGlobal`, the helper all four
runtime modules (telemetry, cache, resilience, fleet) share.

:func:`session` scopes a configuration: the CLI opens one around a
``fuzz``/``profile``/``deploy`` command, and campaign worker processes
open one per shard batch when the parent hands them a ``cache_dir`` —
the on-disk tier is shared across every process pointing at the same
directory (writes are atomic and idempotent), which is what lets shard
N's measurements warm shard M's re-run.
"""

from __future__ import annotations

from pathlib import Path

from repro.cache.cache import (
    DEFAULT_MAX_ENTRIES,
    NOOP_CACHE,
    MeasurementCache,
    NoopMeasurementCache,
)
from repro.utils.runtime import ProcessGlobal

_slot: "ProcessGlobal[MeasurementCache | NoopMeasurementCache]" = \
    ProcessGlobal(NOOP_CACHE)


def configure(cache_dir: "str | Path | None" = None,
              max_entries: int = DEFAULT_MAX_ENTRIES) -> MeasurementCache:
    """Install a live cache; returns it.

    ``cache_dir=None`` keeps the cache memory-only; with a directory
    the on-disk tier persists across runs and processes.
    """
    return _slot.install(
        MeasurementCache(cache_dir=cache_dir, max_entries=max_entries))


def disable() -> None:
    """Restore the no-op cache."""
    _slot.reset()


def enabled() -> bool:
    return _slot.enabled()


def active() -> "MeasurementCache | NoopMeasurementCache":
    return _slot.active()


def session(cache_dir: "str | Path | None" = None,
            max_entries: int = DEFAULT_MAX_ENTRIES):
    """Scoped cache: configure, yield, restore the previous one."""
    return _slot.scoped(
        MeasurementCache(cache_dir=cache_dir, max_entries=max_entries))
