"""Content-addressed measurement caching (the screening hot path).

The Event Fuzzer's screening stage and the campaign engine re-execute
deterministic gadget measurements: for a fixed campaign configuration,
gadget *i*'s program, microarchitectural start state, and noise stream
depend only on the campaign entropy and *i*. That makes every
measurement a pure function of its fingerprint, and pure functions are
cacheable.

This package provides the cache:

- :mod:`repro.cache.fingerprint` — content-addressed keys over
  (assembled program bytes, CPU/processor-model config, RNG stream id,
  repetition count).
- :mod:`repro.cache.lru` — the in-memory LRU tier.
- :mod:`repro.cache.store` — the on-disk content-addressed store,
  written atomically so campaign shards in different worker processes
  can share one directory.
- :mod:`repro.cache.cache` — :class:`MeasurementCache`, the two-tier
  facade that also emits ``cache.hits`` / ``cache.misses`` /
  ``cache.bytes`` through the telemetry metrics registry.
- :mod:`repro.cache.runtime` — the process-global active cache, scoped
  with :func:`repro.cache.runtime.session` exactly like the telemetry
  runtime.

Correctness bar: a warm-cache run returns bit-identical measurements
(the cached value round-trips floats exactly), so re-running a
campaign with a warm cache produces a bit-identical ``FuzzingReport``
while skipping the ``execute_program`` calls entirely.
"""

from repro.cache.cache import (
    DEFAULT_MAX_ENTRIES,
    CachedMeasurement,
    CacheStats,
    MeasurementCache,
    NoopMeasurementCache,
)
from repro.cache.fingerprint import (
    measurement_key,
    program_bytes,
    screening_config_digest,
)
from repro.cache.lru import LruCache
from repro.cache.runtime import active, configure, disable, enabled, session
from repro.cache.store import DiskStore

__all__ = [
    "CachedMeasurement",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "DiskStore",
    "LruCache",
    "MeasurementCache",
    "NoopMeasurementCache",
    "active",
    "configure",
    "disable",
    "enabled",
    "measurement_key",
    "program_bytes",
    "screening_config_digest",
    "session",
]
