"""The in-memory LRU tier of the measurement cache.

A thin ordered-dict LRU: ``get`` promotes to most-recent, ``put``
evicts the least-recent entry past capacity. Entries are small frozen
measurement records, so the default capacity costs a few megabytes at
most while absorbing the repeat lookups of warm in-process re-runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

V = TypeVar("V")


class LruCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> "V | None":
        """Return the cached value (promoting it) or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh an entry, evicting the oldest past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
