"""Content-addressed fingerprints for cached measurements.

A measurement is reusable only when *everything* that can change its
outcome is part of the key:

- the **assembled program bytes** — the placed instruction sequence the
  core actually executes, including addresses, memory operands, and
  branch directions;
- the **CPU / processor-model configuration** — event catalog, ISA
  microarchitecture profile, harness unroll, grammar geometry, and the
  event indices being measured;
- the **RNG stream id** — the ``(entropy, spawn_key)`` identity of the
  per-gadget noise stream (the stream that drew the gadget and feeds
  the counter-noise model);
- the **repetition count** — how many (reset + trigger) iterations one
  measurement executes.

Keys are hex SHA-256 digests, so the on-disk store is content-addressed
and collision-free for practical purposes; changing any component of
the configuration changes every key, which is how stale cache entries
are invalidated without bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.fuzzer.campaign import ShardConfig
    from repro.isa.spec import Program


def program_bytes(program: "Program") -> bytes:
    """Canonical byte serialization of a placed program.

    One line per placed instruction carrying the catalog variant name
    plus every placement field that affects execution (code address,
    memory operand, branch direction, branch target). Two programs
    serialize identically iff the core executes them identically.
    """
    lines = [
        f"{ins.spec.name}|{ins.address:x}|{ins.mem_operand:x}"
        f"|{int(ins.taken)}|{ins.target:x}"
        for ins in program.instructions
    ]
    return "\n".join(lines).encode("utf-8")


def config_digest(fields: dict) -> str:
    """Short stable digest of a plain-type configuration mapping."""
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def screening_config_digest(config: "ShardConfig") -> str:
    """The CPU/measurement configuration component of screening keys.

    Covers everything that shapes a screening measurement's outcome:
    the processor model (event catalog + noise model), the microarch
    profile (legal instruction list), harness unroll, grammar geometry,
    and the measured event indices. Deliberately excludes the screening
    thresholds (they only gate *acceptance* of a delta, never its
    value) and the budget/shard partition (measurements are partition
    invariant), so a warm cache keeps hitting when those change.
    """
    return config_digest({
        "processor_model": config.processor_model,
        "microarch": config.microarch,
        "unroll": config.unroll,
        "sequence_length": config.sequence_length,
        "empty_reset_prob": config.empty_reset_prob,
        "event_indices": list(config.event_indices),
    })


def measurement_key(program_data: bytes, config: str,
                    stream_id: Iterable[int], repeats: int) -> str:
    """Content-addressed key of one measurement.

    ``stream_id`` identifies the RNG stream the measurement consumes —
    for campaign screening that is ``(entropy, gadget_index)``, the
    ``SeedSequence`` identity of the per-gadget stream.
    """
    digest = hashlib.sha256()
    digest.update(program_data)
    digest.update(b"\x00")
    digest.update(config.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(",".join(str(int(part)) for part in stream_id)
                  .encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(int(repeats)).encode("utf-8"))
    return digest.hexdigest()
