"""The two-tier measurement cache facade.

:class:`MeasurementCache` fronts the in-memory LRU tier and the
optional on-disk store. Lookups check the LRU first, then the disk
store (promoting disk hits into the LRU); stores write both tiers.
Every lookup and store is mirrored into the telemetry metrics registry
as ``cache.hits`` / ``cache.misses`` / ``cache.bytes`` so hit rates
appear in ``report --trace`` next to the fuzzing counters, and tracked
locally in :class:`CacheStats` so library callers don't need telemetry
enabled to read them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cache.lru import LruCache
from repro.cache.store import DiskStore
from repro.observability import runtime as observability
from repro.telemetry import runtime as telemetry

#: Default in-memory tier capacity. Entries are a few hundred bytes, so
#: this absorbs several default-sized campaign budgets per process.
DEFAULT_MAX_ENTRIES = 8192


@dataclass(frozen=True)
class CachedMeasurement:
    """One cached measurement outcome.

    Floats are stored as plain Python floats (JSON round-trips them
    exactly), so a warm-cache replay is bit-identical to the original
    measurement.
    """

    deltas: tuple
    signals: tuple
    cycles: int

    @classmethod
    def from_measured(cls, measured) -> "CachedMeasurement":
        """Freeze an :class:`ExecutionHarness` ``MeasuredDelta``."""
        return cls(deltas=tuple(float(d) for d in np.atleast_1d(
                       measured.deltas)),
                   signals=tuple(float(s) for s in measured.signals),
                   cycles=int(measured.cycles))

    def delta_array(self) -> np.ndarray:
        return np.asarray(self.deltas, dtype=np.float64)

    def signal_array(self) -> np.ndarray:
        return np.asarray(self.signals, dtype=np.float64)

    def to_payload(self) -> dict:
        return {"deltas": list(self.deltas), "signals": list(self.signals),
                "cycles": self.cycles}

    @classmethod
    def from_payload(cls, payload: dict) -> "CachedMeasurement":
        return cls(deltas=tuple(float(d) for d in payload["deltas"]),
                   signals=tuple(float(s) for s in payload["signals"]),
                   cycles=int(payload["cycles"]))


@dataclass
class CacheStats:
    """Local hit/miss accounting (kept even with telemetry disabled)."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stored: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MeasurementCache:
    """LRU + on-disk content-addressed measurement cache.

    Parameters
    ----------
    cache_dir:
        Directory of the shared on-disk tier. ``None`` keeps the cache
        memory-only (still useful for in-process re-measurements, but
        nothing survives the process or crosses worker boundaries).
    max_entries:
        Capacity of the in-memory LRU tier.
    """

    enabled = True

    def __init__(self, cache_dir: "str | Path | None" = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._lru: LruCache[CachedMeasurement] = LruCache(max_entries)
        self._store = (DiskStore(self.cache_dir)
                       if self.cache_dir is not None else None)
        self.stats = CacheStats()

    def get(self, key: str) -> "CachedMeasurement | None":
        """SLO-timed wrapper around :meth:`_get`."""
        obs = observability.active()
        if not obs.enabled:
            return self._get(key)
        start = time.perf_counter()
        measurement = self._get(key)
        obs.slo.observe("cache.lookup", time.perf_counter() - start)
        return measurement

    def _get(self, key: str) -> "CachedMeasurement | None":
        """Look one measurement up; LRU first, then the disk store."""
        measurement = self._lru.get(key)
        if measurement is not None:
            self.stats.memory_hits += 1
            return self._hit(measurement)
        if self._store is not None:
            payload = self._store.get(key)
            if payload is not None:
                try:
                    measurement = CachedMeasurement.from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    measurement = None
                if measurement is not None:
                    self._lru.put(key, measurement)
                    self.stats.disk_hits += 1
                    return self._hit(measurement)
        self.stats.misses += 1
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("cache.misses").inc()
        return None

    def put(self, key: str, measurement: CachedMeasurement) -> None:
        """Store one measurement in both tiers."""
        self._lru.put(key, measurement)
        self.stats.stored += 1
        written = 0
        if self._store is not None:
            written = self._store.put(key, measurement.to_payload())
            self.stats.bytes_written += written
        registry = telemetry.metrics()
        if registry.enabled and written:
            registry.counter("cache.bytes").inc(written)

    def _hit(self, measurement: CachedMeasurement) -> CachedMeasurement:
        self.stats.hits += 1
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("cache.hits").inc()
        return measurement

    def clear_memory(self) -> None:
        """Drop the LRU tier (the disk store is untouched)."""
        self._lru.clear()


class NoopMeasurementCache:
    """Disabled cache: every lookup misses silently, stores are dropped."""

    enabled = False
    cache_dir = None
    #: Shared empty stats so callers can read hit rates unconditionally.
    stats = CacheStats()

    def get(self, key: str) -> None:
        return None

    def put(self, key: str, measurement: CachedMeasurement) -> None:
        return None

    def clear_memory(self) -> None:
        return None


NOOP_CACHE = NoopMeasurementCache()
