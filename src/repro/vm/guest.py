"""The guest VM: vCPUs backed by simulated cores, encrypted memory.

The paper's victim VM has 4 vCPUs, 8 GiB of memory and runs one
protected application; the defense explicitly pins the Event Obfuscator
and the protected application to the *same* vCPU so the hypervisor
cannot schedule them apart. This module models vCPUs, process pinning,
and the encrypted guest memory the hypervisor cannot read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.core import ActivityBlock, Core
from repro.utils.rng import ensure_rng, spawn_rng
from repro.vm.sev import MemoryEncryptionEngine, SevPolicy, generate_vm_key


@dataclass
class GuestProcess:
    """A process inside the guest, pinned to one vCPU."""

    name: str
    vcpu_index: int
    pid: int


class VirtualCpu:
    """One vCPU: a simulated core plus scheduling metadata."""

    def __init__(self, index: int, core: Core) -> None:
        self.index = index
        self.core = core

    def run_slice(self, block: ActivityBlock, noisy: bool = True) -> np.ndarray:
        """Execute one activity slice on this vCPU's core."""
        return self.core.execute_block(block, noisy=noisy)


class GuestVM:
    """An SEV-protected guest VM.

    Parameters
    ----------
    name:
        Guest identifier.
    processor_model:
        Host processor model backing the vCPUs (fixes the event catalog).
    num_vcpus / memory_mb / disk_gb:
        Paper configuration defaults: 4 vCPUs, 8 GiB memory, 80 GiB disk.
    policy:
        SEV launch policy.
    """

    def __init__(self, name: str, processor_model: str = "amd-epyc-7252",
                 num_vcpus: int = 4, memory_mb: int = 8192, disk_gb: int = 80,
                 policy: SevPolicy | None = None,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if num_vcpus < 1:
            raise ValueError(f"num_vcpus must be >= 1, got {num_vcpus}")
        root = ensure_rng(rng)
        children = spawn_rng(root, num_vcpus + 1)
        self.name = name
        self.processor_model = processor_model
        self.memory_mb = memory_mb
        self.disk_gb = disk_gb
        self.policy = policy or SevPolicy()
        self.vcpus = [
            VirtualCpu(i, Core(processor_model, rng=children[i]))
            for i in range(num_vcpus)
        ]
        self._encryption = MemoryEncryptionEngine(generate_vm_key(children[-1]))
        self._memory: dict[int, bytes] = {}
        self._processes: dict[int, GuestProcess] = {}
        self._next_pid = 1000

    # -- processes ---------------------------------------------------

    def spawn_process(self, name: str, vcpu_index: int = 0) -> GuestProcess:
        """Create a guest process pinned to ``vcpu_index``."""
        if not 0 <= vcpu_index < len(self.vcpus):
            raise IndexError(
                f"vcpu_index {vcpu_index} out of range [0, {len(self.vcpus)})")
        process = GuestProcess(name=name, vcpu_index=vcpu_index,
                               pid=self._next_pid)
        self._next_pid += 1
        self._processes[process.pid] = process
        return process

    def process(self, pid: int) -> GuestProcess:
        """Look up a guest process by pid."""
        try:
            return self._processes[pid]
        except KeyError as exc:
            raise KeyError(f"no such guest process pid={pid}") from exc

    def processes_on_vcpu(self, vcpu_index: int) -> list[GuestProcess]:
        """Processes pinned to one vCPU (indistinguishable to the host)."""
        return [p for p in self._processes.values()
                if p.vcpu_index == vcpu_index]

    # -- encrypted memory ---------------------------------------------

    def write_memory(self, address: int, plaintext: bytes) -> None:
        """Guest-side write; stored encrypted."""
        self._memory[address] = self._encryption.encrypt(address, plaintext)

    def read_memory(self, address: int) -> bytes:
        """Guest-side read; transparently decrypted."""
        try:
            ciphertext = self._memory[address]
        except KeyError as exc:
            raise KeyError(f"guest address {address:#x} not written") from exc
        return self._encryption.decrypt(address, ciphertext)

    def read_memory_ciphertext(self, address: int) -> bytes:
        """What the hypervisor sees when it maps the page: ciphertext."""
        try:
            return self._memory[address]
        except KeyError as exc:
            raise KeyError(f"guest address {address:#x} not written") from exc
