"""Secure Encrypted Virtualization model.

SEV encrypts guest memory with a per-VM key held by the Platform
Security Processor; SEV-ES adds register-state encryption on world
switches; SEV-SNP adds memory integrity. For the side-channel
experiments, what matters is the *boundary*: the hypervisor can never
read plaintext guest memory or registers, but shared hardware resources
(the HPC registers) still leak. This module models keys, policies and
the remote-attestation report the guest owner uses to learn the host's
processor model (which the Application Profiler needs to pick a template
server).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np


class SevVersion(enum.Enum):
    """SEV feature generations."""

    SEV = "SEV"
    SEV_ES = "SEV-ES"
    SEV_SNP = "SEV-SNP"


@dataclass(frozen=True)
class SevPolicy:
    """Guest launch policy bits."""

    version: SevVersion = SevVersion.SEV_SNP
    debug_allowed: bool = False
    migration_allowed: bool = False

    @property
    def registers_encrypted(self) -> bool:
        """SEV-ES and later encrypt register state on world switches."""
        return self.version in (SevVersion.SEV_ES, SevVersion.SEV_SNP)

    @property
    def memory_integrity(self) -> bool:
        """Only SEV-SNP provides memory integrity (RMP)."""
        return self.version is SevVersion.SEV_SNP


@dataclass(frozen=True)
class AttestationReport:
    """Report returned by the PSP during remote attestation.

    The guest owner verifies ``measurement`` and reads
    ``processor_model`` — the paper's profiler uses the latter to rent a
    template server in the same processor family.
    """

    guest_name: str
    processor_model: str
    policy: SevPolicy
    measurement: str

    def verify(self, expected_measurement: str) -> bool:
        """Check the launch measurement against the expected digest."""
        return self.measurement == expected_measurement


class MemoryEncryptionEngine:
    """Per-VM AES-like memory transform (a keyed digest stands in).

    Plaintext never leaves the engine: reads through the hypervisor
    yield ciphertext bytes that change with the ephemeral VM key.
    """

    def __init__(self, vm_key: bytes) -> None:
        if len(vm_key) < 16:
            raise ValueError("vm_key must be at least 128 bits")
        self._key = vm_key

    def encrypt(self, address: int, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` at ``address`` (address-tweaked)."""
        stream = self._keystream(address, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt(self, address: int, ciphertext: bytes) -> bytes:
        """Decrypt; the transform is an involution."""
        return self.encrypt(address, ciphertext)

    def _keystream(self, address: int, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hashlib.sha256(
                self._key + address.to_bytes(8, "little")
                + counter.to_bytes(4, "little")).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])


def generate_vm_key(rng: np.random.Generator) -> bytes:
    """PSP-style ephemeral per-VM key."""
    return bytes(int(b) for b in rng.integers(0, 256, size=32))


def launch_measurement(guest_name: str, processor_model: str,
                       policy: SevPolicy) -> str:
    """Deterministic launch digest over the guest's initial state."""
    payload = f"{guest_name}|{processor_model}|{policy.version.value}|" \
              f"{policy.debug_allowed}|{policy.migration_allowed}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
