"""The honest-but-curious hypervisor.

It follows the service agreement (launches guests, reports correct
register values) but exploits every observation channel it legitimately
has. With SEV enabled it cannot read guest memory or registers — but it
*can* read the HPC registers mapped to a victim vCPU, which is the whole
attack surface of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.signals import Signal, zero_signals
from repro.utils.rng import ensure_rng, spawn_rng
from repro.vm.guest import GuestVM
from repro.vm.sev import AttestationReport, SevPolicy, launch_measurement


class GuestMemoryProtectedError(PermissionError):
    """Raised when the host tries to read plaintext from an SEV guest."""


class Hypervisor:
    """Host-side virtual machine monitor.

    Parameters
    ----------
    processor_model:
        The physical processor model (and thus HPC event catalog).
    host_load:
        Scale of background host activity (other tenants, kernel work);
        contributes to unfiltered HPC measurements.
    """

    def __init__(self, processor_model: str = "amd-epyc-7252",
                 host_load: float = 1.0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        root = ensure_rng(rng)
        self._guest_rng, self._noise_rng = spawn_rng(root, 2)
        self.processor_model = processor_model
        self.host_load = float(host_load)
        self.guests: dict[str, GuestVM] = {}
        self._read_tap = None

    # -- lifecycle ----------------------------------------------------

    def launch_guest(self, name: str, num_vcpus: int = 4,
                     memory_mb: int = 8192,
                     policy: SevPolicy | None = None) -> GuestVM:
        """Launch an encrypted guest on this host."""
        if name in self.guests:
            raise ValueError(f"guest {name!r} already running")
        guest = GuestVM(name, processor_model=self.processor_model,
                        num_vcpus=num_vcpus, memory_mb=memory_mb,
                        policy=policy,
                        rng=np.random.default_rng(
                            int(self._guest_rng.integers(2**63))))
        self.guests[name] = guest
        return guest

    def launch_fleet(self, names: "list[str]", num_vcpus: int = 1,
                     memory_mb: int = 8192,
                     policy: SevPolicy | None = None
                     ) -> "dict[str, GuestVM]":
        """Launch one encrypted guest per name, in the given order.

        Convenience for multi-tenant hosts (the fleet control plane):
        launch order fixes each guest's RNG stream, so callers that
        need reproducible fleets pass names in a canonical order.
        """
        return {name: self.launch_guest(name, num_vcpus=num_vcpus,
                                        memory_mb=memory_mb, policy=policy)
                for name in names}

    def attest(self, guest_name: str) -> AttestationReport:
        """Produce the PSP attestation report for a running guest."""
        guest = self._guest(guest_name)
        return AttestationReport(
            guest_name=guest.name,
            processor_model=self.processor_model,
            policy=guest.policy,
            measurement=launch_measurement(guest.name, self.processor_model,
                                           guest.policy),
        )

    def _guest(self, name: str) -> GuestVM:
        try:
            return self.guests[name]
        except KeyError as exc:
            raise KeyError(f"no such guest {name!r}") from exc

    # -- what SEV blocks ----------------------------------------------

    def read_guest_memory(self, guest_name: str, address: int) -> bytes:
        """Attempt to read guest memory; SEV yields only ciphertext."""
        guest = self._guest(guest_name)
        raise GuestMemoryProtectedError(
            f"guest {guest.name!r} memory is SEV-encrypted; mapping "
            f"{address:#x} yields ciphertext only "
            f"(use read_guest_memory_ciphertext)")

    def read_guest_memory_ciphertext(self, guest_name: str,
                                     address: int) -> bytes:
        """The ciphertext view the host actually gets."""
        return self._guest(guest_name).read_memory_ciphertext(address)

    def read_guest_registers(self, guest_name: str, vcpu_index: int) -> dict:
        """Attempt to read vCPU register state (blocked by SEV-ES+)."""
        guest = self._guest(guest_name)
        if guest.policy.registers_encrypted:
            raise GuestMemoryProtectedError(
                f"guest {guest.name!r} runs {guest.policy.version.value}: "
                "vCPU register state is encrypted on world switches")
        return {"rip": 0, "rsp": 0}  # legacy SEV would leak these

    # -- what SEV does NOT block: the HPC side channel ------------------

    def install_read_tap(self, tap) -> None:
        """Observe every HPC read: ``tap(guest, vcpu, slot, at)``.

        The tap sees exactly what the read path sees — which guest,
        which register, and the caller-supplied logical timestamp — and
        never the counter value, so an observer cannot become a second
        side channel. One tap at a time; ``None`` uninstalls.
        """
        self._read_tap = tap

    def read_vcpu_hpc(self, guest_name: str, vcpu_index: int,
                      slot: int, at: "float | None" = None) -> int:
        """Read an HPC register mapped to a victim vCPU.

        This is the leak: HPC registers are shared hardware outside the
        SEV protection boundary, so the host reads them freely.
        ``at`` is an optional logical timestamp forwarded to the read
        tap (defense-side observability); it does not affect the value.
        """
        guest = self._guest(guest_name)
        if not 0 <= vcpu_index < len(guest.vcpus):
            raise IndexError(f"vcpu_index {vcpu_index} out of range")
        value = guest.vcpus[vcpu_index].core.hpc.rdpmc(slot)
        if self._read_tap is not None:
            self._read_tap(guest_name, vcpu_index, slot, at)
        return value

    def program_vcpu_hpc(self, guest_name: str, vcpu_index: int, slot: int,
                         event: "int | str") -> None:
        """Program an HPC register for a victim vCPU from the host side."""
        guest = self._guest(guest_name)
        guest.vcpus[vcpu_index].core.hpc.program(slot, event)

    # -- host background activity ---------------------------------------

    def host_background_signals(self, duration_s: float) -> np.ndarray:
        """Signals generated by the host kernel and co-tenants.

        These pollute HPC measurements taken *without* pid filtering and
        drive the tracepoint/software events of the catalog.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        rng = self._noise_rng
        scale = self.host_load * duration_s
        signals = zero_signals()
        signals[Signal.SYSCALLS] = rng.poisson(4000 * scale)
        signals[Signal.IO_OPS] = rng.poisson(800 * scale)
        signals[Signal.CONTEXT_SWITCHES] = rng.poisson(1000 * scale)
        signals[Signal.INTERRUPTS] = rng.poisson(950 * scale)
        signals[Signal.PAGE_FAULTS] = rng.poisson(120 * scale)
        signals[Signal.INSTRUCTIONS] = rng.poisson(2_000_000 * scale)
        signals[Signal.UOPS] = signals[Signal.INSTRUCTIONS] * 1.7
        signals[Signal.CYCLES] = signals[Signal.INSTRUCTIONS] * 1.1
        signals[Signal.LOADS] = signals[Signal.INSTRUCTIONS] * 0.28
        signals[Signal.STORES] = signals[Signal.INSTRUCTIONS] * 0.12
        signals[Signal.L1D_ACCESS] = signals[Signal.LOADS] + signals[Signal.STORES]
        signals[Signal.L1D_MISS] = signals[Signal.L1D_ACCESS] * 0.03
        signals[Signal.BRANCHES] = signals[Signal.INSTRUCTIONS] * 0.18
        signals[Signal.BRANCH_MISS] = signals[Signal.BRANCHES] * 0.02
        return signals
