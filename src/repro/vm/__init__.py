"""Virtualization substrate: SEV-style confidential VMs and the host.

Models exactly the trust boundary the paper attacks and defends: guest
memory and register state are opaque to the hypervisor (SEV), but the
per-vCPU HPC register values are host-readable — the side channel.
"""

from repro.vm.sev import AttestationReport, SevPolicy, SevVersion
from repro.vm.guest import GuestVM, VirtualCpu
from repro.vm.hypervisor import Hypervisor
from repro.vm.perf_event import PerfEventAttr, PerfEventMonitor

__all__ = [
    "AttestationReport",
    "GuestVM",
    "Hypervisor",
    "PerfEventAttr",
    "PerfEventMonitor",
    "SevPolicy",
    "SevVersion",
    "VirtualCpu",
]
