"""vCPU scheduling and world switches.

A guest vCPU is a host thread: the hypervisor preempts it for other
tenants and for VM exits, and every world switch perturbs the
microarchitectural state the HPCs observe (TLB shootdowns, predictor
pollution, lost time slices). This module models the scheduling layer:
time-slice accounting per vCPU, world-switch counting, the steal-time
the guest sees, and the paper's pinning countermeasure (the Event
Obfuscator is pinned with the protected app, so the hypervisor cannot
separate them onto different cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.signals import Signal, zero_signals
from repro.utils.rng import ensure_rng


@dataclass
class VcpuScheduleState:
    """Scheduling accounting for one vCPU."""

    vcpu_index: int
    physical_core: int
    pinned: bool = False
    run_time_s: float = 0.0
    steal_time_s: float = 0.0
    world_switches: int = 0

    @property
    def steal_fraction(self) -> float:
        total = self.run_time_s + self.steal_time_s
        return self.steal_time_s / total if total > 0 else 0.0


class VcpuScheduler:
    """Host-side scheduler for a guest's vCPUs.

    Parameters
    ----------
    num_vcpus / num_physical_cores:
        Topology; an oversubscribed host (fewer cores than runnable
        threads) produces steal time.
    contention:
        Probability per slice that a vCPU loses part of its slice to a
        co-tenant.
    exit_rate_hz:
        Baseline VM-exit (world switch) rate while running.
    """

    def __init__(self, num_vcpus: int = 4, num_physical_cores: int = 8,
                 contention: float = 0.05, exit_rate_hz: float = 200.0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if num_vcpus < 1 or num_physical_cores < 1:
            raise ValueError("topology values must be >= 1")
        if not 0.0 <= contention <= 1.0:
            raise ValueError(f"contention must be in [0, 1], got {contention}")
        if exit_rate_hz < 0:
            raise ValueError("exit_rate_hz must be non-negative")
        self.contention = contention
        self.exit_rate_hz = exit_rate_hz
        self._rng = ensure_rng(rng)
        self.states = [
            VcpuScheduleState(vcpu_index=i,
                              physical_core=i % num_physical_cores)
            for i in range(num_vcpus)
        ]

    def state(self, vcpu_index: int) -> VcpuScheduleState:
        try:
            return self.states[vcpu_index]
        except IndexError as exc:
            raise IndexError(f"no vCPU {vcpu_index}") from exc

    def pin(self, vcpu_index: int, physical_core: int) -> None:
        """Pin a vCPU to one physical core (the defense's placement)."""
        state = self.state(vcpu_index)
        state.pinned = True
        state.physical_core = physical_core

    def migrate(self, vcpu_index: int, physical_core: int) -> bool:
        """Hypervisor-initiated migration; refused for pinned vCPUs.

        The paper pins the obfuscator and the protected application to
        the same vCPU precisely so the host cannot schedule them apart
        — with SEV, processes sharing a vCPU are indistinguishable.
        """
        state = self.state(vcpu_index)
        if state.pinned:
            return False
        state.physical_core = physical_core
        state.world_switches += 1
        return True

    def run_slice(self, vcpu_index: int, duration_s: float) -> np.ndarray:
        """Account one scheduling slice; returns perturbation signals.

        World switches flush TLB state and interrupt the guest;
        contention steals part of the slice. The returned signal vector
        is the *host-induced* perturbation a monitor sees mixed into
        the vCPU's counters.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        state = self.state(vcpu_index)
        signals = zero_signals()
        exits = int(self._rng.poisson(self.exit_rate_hz * duration_s))
        state.world_switches += exits
        signals[Signal.CONTEXT_SWITCHES] += exits
        signals[Signal.TLB_FLUSHES] += exits
        signals[Signal.ITLB_MISS] += 12.0 * exits
        signals[Signal.DTLB_MISS] += 25.0 * exits
        signals[Signal.INTERRUPTS] += exits
        stolen = 0.0
        if self.contention > 0 and self._rng.random() < self.contention:
            stolen = duration_s * float(self._rng.uniform(0.05, 0.4))
        state.run_time_s += duration_s - stolen
        state.steal_time_s += stolen
        return signals
