"""A perf_event_open-style monitoring interface on the host.

The paper's profiler measures events through the Linux kernel's
``perf_event_open`` interface with the ``pid`` and ``exclude_kernel``
attributes set, and notes that the perf subsystem *time-multiplexes*
counter groups whenever more events are monitored than hardware
registers exist (four on both testbeds), degrading accuracy. This module
reproduces that interface: pid-filtered measurement of a victim vCPU,
kernel exclusion, and round-robin multiplexing with enabled/running-time
scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpu.events import EventCatalog
from repro.cpu.hpc import PerfCounter
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PerfEventAttr:
    """Subset of the perf_event_open attribute structure we model."""

    pid_filtered: bool = True
    exclude_kernel: bool = True
    exclude_host_leakage: float = 0.0  # residual host-signal bleed-through


class PerfEventMonitor:
    """Monitor a set of HPC events for one measured context (vCPU).

    Parameters
    ----------
    catalog:
        Event catalog of the host processor.
    events:
        Event names (or indices) to monitor.
    num_registers:
        Hardware counters available; more events than this triggers
        time multiplexing.
    attr:
        perf attributes (pid filter, kernel exclusion).
    """

    def __init__(self, catalog: EventCatalog, events: "list[str | int]",
                 num_registers: int = 4, attr: PerfEventAttr | None = None,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if not events:
            raise ValueError("events must be non-empty")
        if num_registers < 1:
            raise ValueError(f"num_registers must be >= 1, got {num_registers}")
        self.catalog = catalog
        self.attr = attr or PerfEventAttr()
        self.num_registers = num_registers
        self.event_indices = np.array([
            catalog.index_of(e) if isinstance(e, str) else int(e)
            for e in events
        ])
        if np.any(self.event_indices < 0) or np.any(
                self.event_indices >= len(catalog)):
            raise IndexError("event index out of catalog range")
        self.counters = [PerfCounter(event_index=int(i))
                         for i in self.event_indices]
        self.num_groups = math.ceil(len(events) / num_registers)
        self._slice_index = 0
        self._rng = ensure_rng(rng)

    @property
    def multiplexed(self) -> bool:
        """True when events outnumber hardware registers."""
        return self.num_groups > 1

    def _scheduled_mask(self) -> np.ndarray:
        """Which events are actually counting during this slice."""
        if not self.multiplexed:
            return np.ones(len(self.counters), dtype=bool)
        group = self._slice_index % self.num_groups
        mask = np.zeros(len(self.counters), dtype=bool)
        start = group * self.num_registers
        mask[start:start + self.num_registers] = True
        return mask

    def observe_slice(self, guest_signals: np.ndarray,
                      host_signals: np.ndarray | None = None,
                      duration_s: float = 1e-3) -> np.ndarray:
        """Measure one sampling slice; returns per-event slice counts.

        With ``pid_filtered`` the measurement follows only the victim
        context's signals (plus any configured residual leakage); without
        it, host background activity pollutes every count. Events not
        scheduled this slice (multiplexing) report ``NaN``.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        effective = np.asarray(guest_signals, dtype=np.float64).copy()
        if host_signals is not None:
            host = np.asarray(host_signals, dtype=np.float64)
            if self.attr.pid_filtered:
                effective += self.attr.exclude_host_leakage * host
            else:
                effective += host
        noise_rng = self._rng
        counts = self.catalog.counts_for(effective, rng=noise_rng,
                                         event_indices=self.event_indices)
        counts = np.atleast_1d(counts)
        if not self.attr.exclude_kernel:
            # Kernel-inclusive measurement picks up extra jitter.
            counts = np.maximum(
                counts * (1.0 + noise_rng.normal(0.0, 0.05, counts.shape)), 0.0)
        mask = self._scheduled_mask()
        observed = np.full(len(self.counters), np.nan)
        for i, counter in enumerate(self.counters):
            counter.enabled_time += duration_s
            if mask[i]:
                counter.running_time += duration_s
                counter.value += counts[i]
                observed[i] = counts[i]
        self._slice_index += 1
        return observed

    def sample(self, slices: "list[tuple[np.ndarray, np.ndarray | None]]",
               duration_s: float = 1e-3) -> np.ndarray:
        """Observe a sequence of slices; returns ``(E, T)`` trace matrix."""
        trace = np.empty((len(self.counters), len(slices)))
        for t, (guest, host) in enumerate(slices):
            trace[:, t] = self.observe_slice(guest, host, duration_s)
        return trace

    def observe_trace(self, guest_matrix: np.ndarray,
                      host_matrix: np.ndarray | None = None,
                      duration_s: float = 1e-3) -> np.ndarray:
        """Vectorized slice sequence for the non-multiplexed case.

        ``guest_matrix`` is (T, NUM_SIGNALS); returns an (E, T) trace.
        Falls back to the per-slice loop when multiplexing is active
        (scheduling order matters there).
        """
        guest_matrix = np.asarray(guest_matrix, dtype=np.float64)
        if guest_matrix.ndim != 2:
            raise ValueError("guest_matrix must be 2-D (T, NUM_SIGNALS)")
        if self.multiplexed:
            slices = [
                (guest_matrix[t],
                 None if host_matrix is None else host_matrix[t])
                for t in range(len(guest_matrix))
            ]
            return self.sample(slices, duration_s)
        effective = guest_matrix.copy()
        if host_matrix is not None:
            host = np.asarray(host_matrix, dtype=np.float64)
            if self.attr.pid_filtered:
                effective += self.attr.exclude_host_leakage * host
            else:
                effective += host
        counts = self.catalog.counts_for(effective, rng=self._rng,
                                         event_indices=self.event_indices)
        if not self.attr.exclude_kernel:
            counts = np.maximum(
                counts * (1.0 + self._rng.normal(0.0, 0.05, counts.shape)),
                0.0)
        for i, counter in enumerate(self.counters):
            counter.enabled_time += duration_s * len(guest_matrix)
            counter.running_time += duration_s * len(guest_matrix)
            counter.value += counts[:, i].sum()
        self._slice_index += len(guest_matrix)
        return counts.T

    def read_totals(self, scaled: bool = True) -> np.ndarray:
        """Total per-event counts, multiplexing-scaled by default."""
        if scaled:
            return np.array([c.scaled_value() for c in self.counters])
        return np.array([c.value for c in self.counters])

    def reset(self) -> None:
        """Zero all counters and the multiplexing rotation."""
        for counter in self.counters:
            counter.value = 0.0
            counter.enabled_time = 0.0
            counter.running_time = 0.0
        self._slice_index = 0
