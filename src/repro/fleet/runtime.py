"""Process-global fleet runtime.

The fourth user of :class:`repro.utils.runtime.ProcessGlobal`: one
control plane per process, installed by the ``aegis fleet`` CLI (or a
test scope) and reachable from anywhere without threading the object
through every call. Unlike the telemetry/cache/resilience slots there
is no meaningful no-op control plane, so the disabled default is
``None`` and :func:`active` raises when nothing is installed — serving
reads against a fleet that was never configured is a bug, not a case
to silently absorb.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.utils.runtime import ProcessGlobal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.controlplane import FleetControlPlane

_slot: "ProcessGlobal[FleetControlPlane | None]" = ProcessGlobal(None)


def configure(plane: "FleetControlPlane") -> "FleetControlPlane":
    """Install ``plane`` as the process-global fleet; returns it."""
    return _slot.install(plane)


def disable() -> None:
    """Remove the installed control plane."""
    _slot.reset()


def enabled() -> bool:
    return _slot.enabled()


def active() -> "FleetControlPlane":
    """The installed control plane; raises when none is configured."""
    plane = _slot.active()
    if plane is None:
        raise RuntimeError(
            "no fleet control plane configured in this process; call "
            "repro.fleet.runtime.configure(...) first")
    return plane


def session(plane: "FleetControlPlane"):
    """Scoped installation: install, yield, restore the previous one."""
    return _slot.scoped(plane)
