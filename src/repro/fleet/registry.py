"""The fleet artifact registry: versioned deployment artifacts.

A fleet serves many tenants from the offline stage's output, so the
hand-off object — the :class:`~repro.core.artifacts.DeploymentArtifact`
— graduates from "a JSON file somewhere" to a registry keyed by
``(processor model, workload)``. Publishing assigns the next version
number and writes atomically; loading verifies a content digest and
the compatibility of the artifact with the requesting host before a
single tenant is wired to it. Both checks fail *closed*: a torn write
or a cross-processor artifact raises instead of silently deploying a
mis-calibrated obfuscator fleet-wide.

Layout under the registry root::

    <root>/<processor_model>/<workload>/v0001.json

Each version file wraps the artifact document with its SHA-256 so
corruption is detectable without trusting the payload itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.artifacts import DeploymentArtifact
from repro.core.obfuscator.injector import default_noise_components
from repro.cpu.events import processor_catalog

_VERSION_RE = re.compile(r"^v(\d{4})\.json$")
_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class RegistryIntegrityError(RuntimeError):
    """A stored artifact failed its digest check (fail closed)."""


class ArtifactCompatibilityError(RuntimeError):
    """A loaded artifact does not fit the requesting deployment."""


def _check_key(value: str, what: str) -> str:
    if not _KEY_RE.match(value):
        raise ValueError(
            f"{what} {value!r} is not a valid registry key "
            f"(letters, digits, '.', '_', '-' only)")
    return value


@dataclass(frozen=True)
class RegistryEntry:
    """One published artifact version."""

    processor_model: str
    workload: str
    version: int
    path: Path
    digest: str


class ArtifactRegistry:
    """Directory-backed registry of deployment artifacts.

    Parameters
    ----------
    root:
        Registry directory; created on first publish.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------

    def _series_dir(self, processor_model: str, workload: str) -> Path:
        return (self.root / _check_key(processor_model, "processor_model")
                / _check_key(workload, "workload"))

    def versions(self, processor_model: str, workload: str) -> list[int]:
        """Published version numbers for one series, ascending."""
        series = self._series_dir(processor_model, workload)
        if not series.is_dir():
            return []
        found = []
        for name in os.listdir(series):
            match = _VERSION_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def series(self) -> list[tuple[str, str]]:
        """All ``(processor_model, workload)`` series with versions."""
        out = []
        if not self.root.is_dir():
            return out
        for processor in sorted(os.listdir(self.root)):
            processor_dir = self.root / processor
            if not processor_dir.is_dir():
                continue
            for workload in sorted(os.listdir(processor_dir)):
                if self.versions(processor, workload):
                    out.append((processor, workload))
        return out

    # -- publish -------------------------------------------------------

    def publish(self, artifact: DeploymentArtifact,
                workload: str) -> RegistryEntry:
        """Store ``artifact`` as the next version of its series.

        The write is atomic (temp file + rename) so a crashed publish
        never leaves a half-written version for loaders to trip on.
        """
        series = self._series_dir(artifact.processor_model, workload)
        series.mkdir(parents=True, exist_ok=True)
        existing = self.versions(artifact.processor_model, workload)
        version = (existing[-1] + 1) if existing else 1
        document = artifact.to_json()
        digest = hashlib.sha256(document.encode("utf-8")).hexdigest()
        payload = json.dumps({"sha256": digest, "artifact": document},
                             indent=2)
        path = series / f"v{version:04d}.json"
        tmp = series / f".v{version:04d}.json.tmp"
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return RegistryEntry(processor_model=artifact.processor_model,
                             workload=workload, version=version,
                             path=path, digest=digest)

    # -- load ----------------------------------------------------------

    def latest(self, processor_model: str,
               workload: str) -> "RegistryEntry | None":
        """The newest published entry of a series, or ``None``."""
        versions = self.versions(processor_model, workload)
        if not versions:
            return None
        return self.entry(processor_model, workload, versions[-1])

    def entry(self, processor_model: str, workload: str,
              version: int) -> RegistryEntry:
        """The entry for one explicit version (digest read, not checked)."""
        path = self._series_dir(processor_model,
                                workload) / f"v{version:04d}.json"
        if not path.is_file():
            raise FileNotFoundError(
                f"no artifact v{version:04d} for "
                f"({processor_model}, {workload}) under {self.root}")
        wrapper = json.loads(path.read_text(encoding="utf-8"))
        return RegistryEntry(processor_model=processor_model,
                             workload=workload, version=version,
                             path=path, digest=wrapper.get("sha256", ""))

    def load(self, processor_model: str, workload: str,
             version: "int | None" = None) -> DeploymentArtifact:
        """Load (and verify) an artifact; the latest version by default.

        Raises :class:`RegistryIntegrityError` when the stored document
        no longer matches its digest, and
        :class:`ArtifactCompatibilityError` when the artifact was built
        for a different processor than the series it sits in — both
        before any tenant could be provisioned from it.
        """
        if version is None:
            versions = self.versions(processor_model, workload)
            if not versions:
                raise FileNotFoundError(
                    f"no artifacts published for "
                    f"({processor_model}, {workload}) under {self.root}")
            version = versions[-1]
        entry = self.entry(processor_model, workload, version)
        wrapper = json.loads(entry.path.read_text(encoding="utf-8"))
        document = wrapper.get("artifact", "")
        digest = hashlib.sha256(document.encode("utf-8")).hexdigest()
        if digest != wrapper.get("sha256"):
            raise RegistryIntegrityError(
                f"artifact {entry.path} failed its digest check; "
                f"refusing to deploy a possibly-corrupt calibration")
        artifact = DeploymentArtifact.from_json(document)
        check_compatible(artifact, processor_model)
        return artifact


def check_compatible(artifact: DeploymentArtifact,
                     processor_model: str) -> None:
    """Verify ``artifact`` can calibrate obfuscators on this host.

    The event catalog differs per processor, so an artifact profiled on
    another model would rank the wrong events and mis-convert noise
    counts to gadget repetitions — a silent privacy failure. The
    reference event must also exist in the host catalog.
    """
    if artifact.processor_model != processor_model:
        raise ArtifactCompatibilityError(
            f"artifact was profiled on {artifact.processor_model!r} but "
            f"this fleet runs {processor_model!r}")
    catalog = processor_catalog(processor_model)
    try:
        catalog.index_of(artifact.reference_event)
    except (KeyError, ValueError) as exc:
        raise ArtifactCompatibilityError(
            f"reference event {artifact.reference_event!r} is not in "
            f"the {processor_model!r} catalog") from exc


def default_artifact(processor_model: str = "amd-epyc-7252",
                     epsilon: float = 1.0, sensitivity: float = 200.0,
                     clip_bound: float = 2000.0) -> DeploymentArtifact:
    """A synthetic artifact for demos and the ``fleet`` CLI.

    Stands in for a real offline stage: the default six-component
    noise profile, the paper's four monitored events, and an untouched
    budget. Real deployments publish campaign output instead.
    """
    from repro.attacks.collector import DEFAULT_ATTACK_EVENTS
    events = list(DEFAULT_ATTACK_EVENTS)
    return DeploymentArtifact(
        processor_model=processor_model,
        vulnerable_events=events,
        mutual_information_bits=[0.0] * len(events),
        covering_gadgets=[f"default-{i}" for i in range(6)],
        segment_signals=default_noise_components(),
        reference_event="RETIRED_UOPS",
        sensitivity=float(sensitivity),
        mechanism="laplace",
        epsilon=float(epsilon),
        clip_bound=float(clip_bound),
        accountant_state=None,
    )


def event_weight_matrix(artifact: DeploymentArtifact,
                        events: "list[str] | None" = None) -> np.ndarray:
    """The ``(NUM_SIGNALS, E)`` projection onto the monitored events.

    The fleet serves noised *HPC reads* — counts of the monitored
    events — so serving happens in this projected space rather than on
    full signal matrices.
    """
    catalog = processor_catalog(artifact.processor_model)
    names = events if events is not None else artifact.vulnerable_events
    rows = [catalog.weights[catalog.index_of(name)] for name in names]
    return np.stack(rows).T
