"""Admission control: quota and backpressure before a window is served.

Every serving request passes through here first. The controller answers
one question — *may this window be released?* — and fails closed on
every path:

- **Budget**: a window that would push the tenant's composed ε past its
  quota is rejected permanently (``budget-exhausted``), mirroring
  :class:`~repro.core.obfuscator.budget.BudgetExhausted`. The check
  uses the quota projection, so the rejected window spends nothing.
- **Backpressure**: a window larger than the tenant's live precomputed
  noise triggers an on-demand refill; if provisioning is stalled
  (``fleet.provision`` faults past the retry budget) the window is
  rejected as retryable — the caller may re-submit once the
  provisioner recovers. No partial windows, ever.
- **Faults**: the ``fleet.admit`` point models a wedged admission
  service itself; an injected fault rejects the window (retryable)
  rather than letting it bypass the checks.
- **Quarantine**: with a defense policy armed
  (:class:`~repro.fleet.policy.DefensePolicyEngine`), a tenant the
  policy holds in QUARANTINED is denied outright (``quarantined``,
  retryable once it de-escalates); the withheld window is counted
  under ``privacy.stalled_slices`` and spends nothing.

A rejected window consumes *no* noise draws and *no* budget, so
rejection is invisible to every other tenant's sequence — the property
the tenant-isolation tests pin down bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.obfuscator.noise import NoiseExhausted
from repro.fleet.ledger import FleetLedger
from repro.fleet.provisioner import NoiseProvisioner
from repro.resilience import runtime as resilience
from repro.resilience.faults import InjectedFault, stable_key
from repro.telemetry import runtime as telemetry


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer for one window."""

    tenant_id: str
    slices: int
    admitted: bool
    reason: str
    retryable: bool = False

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Gates windows on per-tenant ε-quota and noise availability."""

    def __init__(self, ledger: FleetLedger,
                 provisioner: NoiseProvisioner,
                 policy=None) -> None:
        self.ledger = ledger
        self.provisioner = provisioner
        self.policy = policy
        self.admitted_windows = 0
        self.rejected_windows = 0

    def admit(self, tenant_id: str, slices: int) -> AdmissionDecision:
        """Decide one window. Never raises for policy outcomes —
        callers branch on the decision; infrastructure bugs (unknown
        tenant, oversized window) still raise."""
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        accountant = self.ledger.accountant(tenant_id)
        try:
            resilience.check("fleet.admit",
                             key=stable_key(tenant_id) & 0xFFFF)
        except InjectedFault:
            return self._reject(tenant_id, slices, "admission-fault",
                                retryable=True)
        if self.policy is not None:
            denial = self.policy.deny_reason(tenant_id)
            if denial is not None:
                self.ledger.record_stall(tenant_id, slices)
                return self._reject(tenant_id, slices, denial,
                                    retryable=True)
        if accountant.would_exceed(slices):
            return self._reject(tenant_id, slices, "budget-exhausted",
                                retryable=False)
        buffer = self.provisioner.buffer(tenant_id)
        if slices > buffer.available:
            try:
                self.provisioner.refill(buffer)
            except NoiseExhausted:
                self.ledger.record_stall(tenant_id, slices)
                return self._reject(tenant_id, slices, "backpressure",
                                    retryable=True)
            if slices > buffer.available:
                self.ledger.record_stall(tenant_id, slices)
                return self._reject(tenant_id, slices, "backpressure",
                                    retryable=True)
        self.admitted_windows += 1
        return AdmissionDecision(tenant_id=tenant_id, slices=slices,
                                 admitted=True, reason="ok")

    def _reject(self, tenant_id: str, slices: int, reason: str,
                retryable: bool) -> AdmissionDecision:
        self.rejected_windows += 1
        self.ledger.record_rejection(tenant_id)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fleet.rejected_windows").inc()
            registry.counter(f"fleet.rejected.{reason}").inc()
        return AdmissionDecision(tenant_id=tenant_id, slices=slices,
                                 admitted=False, reason=reason,
                                 retryable=retryable)
