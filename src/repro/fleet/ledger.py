"""The fleet's central ε-ledger: one accountant per tenant.

Multi-tenancy must not pool privacy budget: each tenant's guarantee is
its own, so the ledger keeps one capped
:class:`~repro.core.obfuscator.budget.PrivacyAccountant` per tenant and
mirrors every tenant's composed guarantee into telemetry
(``privacy.tenant.<id>.*`` gauges via
:meth:`~repro.telemetry.ledger.PrivacyLedger.sync_tenant`). Accounting
is fail-closed end to end: a release that would exceed the tenant's
quota raises :class:`~repro.core.obfuscator.budget.BudgetExhausted`
*before* any state changes, and a stalled (withheld) window is counted
but spends nothing.

Tenant isolation is structural — there is no cross-tenant state here
beyond the dict itself, so exhausting tenant A cannot perturb a single
record of tenant B.

The adaptive defense plane (:mod:`repro.fleet.policy`) reallocates a
suspect tenant's per-slice ε *downward* mid-run. The ledger's
accountants are therefore :class:`ReallocatableAccountant` — a
multi-rate extension of the paper's accountant that composes each
constant-ε segment exactly (basic composed ε = Σᵢ εᵢ·nᵢ) so the cap
check stays valid across rate changes: reallocation is restricted to
ε ≤ base ε, every segment spends no faster than the registered rate,
hence composed ε under any escalation schedule is bounded by the same
cap the static policy registered.
"""

from __future__ import annotations

import math

from repro.core.obfuscator.budget import (
    PrivacyAccountant,
    advanced_composition,
)
from repro.telemetry import runtime as telemetry


class UnknownTenant(KeyError):
    """An operation referenced a tenant id never registered."""


class ReallocatableAccountant(PrivacyAccountant):
    """A :class:`PrivacyAccountant` whose per-slice ε may be lowered.

    Until the first :meth:`reallocate` every query defers to the base
    class — bit-for-bit, so a fleet that never escalates snapshots
    (and digests) exactly as before. After a reallocation the
    accountant becomes multi-rate: closed segments' spend is frozen
    into ``_closed_epsilon`` and the live segment composes at the
    current rate, giving exact basic composition Σᵢ εᵢ·nᵢ. The
    advanced bound falls back to composing every release at
    ``base_epsilon`` (the maximum any segment ever used — reallocation
    is downward-only), which keeps it a valid, if conservative, bound.

    Checkpoints (:meth:`to_dict`) capture the *current* rate and total
    releases; segment history is run-local, like the defense state
    itself.
    """

    def __init__(self, per_slice_epsilon: float, delta: float = 1e-6,
                 epsilon_cap: float = math.inf) -> None:
        super().__init__(per_slice_epsilon=per_slice_epsilon,
                         delta=delta, epsilon_cap=epsilon_cap)
        self.base_epsilon = float(per_slice_epsilon)
        self.reallocations = 0
        self._closed_epsilon = 0.0
        self._segment_start = 0

    def reallocate(self, per_slice_epsilon: float) -> bool:
        """Switch the live release rate; returns whether it changed.

        Only rates in ``(0, base_epsilon]`` are accepted: the defense
        plane tightens guarantees (or restores the registered rate),
        it can never loosen past what admission promised.
        """
        new_eps = float(per_slice_epsilon)
        if not 0.0 < new_eps <= self.base_epsilon:
            raise ValueError(
                f"reallocated eps must be in (0, {self.base_epsilon:g}] "
                f"(downward-only), got {new_eps:g}")
        if new_eps == self.per_slice_epsilon:
            return False
        self._closed_epsilon += self.per_slice_epsilon * (
            self.releases - self._segment_start)
        self._segment_start = self.releases
        self.per_slice_epsilon = new_eps
        self.reallocations += 1
        return True

    @property
    def basic_epsilon(self) -> float:
        if self.reallocations == 0:
            return super().basic_epsilon
        return self._closed_epsilon + self.per_slice_epsilon * (
            self.releases - self._segment_start)

    @property
    def advanced_epsilon(self) -> float:
        if self.reallocations == 0:
            return super().advanced_epsilon
        if self.releases == 0:
            return 0.0
        return advanced_composition(self.base_epsilon, self.releases,
                                    self.delta)

    def would_exceed(self, slices: int = 1) -> bool:
        if self.reallocations == 0:
            return super().would_exceed(slices)
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        if math.isinf(self.epsilon_cap):
            return False
        projected = self.basic_epsilon + self.per_slice_epsilon * slices
        return projected > self.epsilon_cap

    @property
    def remaining_slices(self) -> "int | None":
        if self.reallocations == 0:
            return super().remaining_slices
        if math.isinf(self.epsilon_cap):
            return None
        left = self.epsilon_cap - self.basic_epsilon
        return max(0, int(math.floor(left / self.per_slice_epsilon
                                     + 1e-9)))


class FleetLedger:
    """Per-tenant privacy accounting for one fleet."""

    def __init__(self) -> None:
        self._accountants: dict[str, PrivacyAccountant] = {}
        self._stalls: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._accountants

    @property
    def tenant_ids(self) -> list[str]:
        return sorted(self._accountants)

    def register(self, tenant_id: str, per_slice_epsilon: float,
                 delta: float = 1e-6,
                 epsilon_cap: float = math.inf,
                 state: "dict | None" = None) -> PrivacyAccountant:
        """Create (or restore) tenant ``tenant_id``'s accountant.

        ``state`` restores a checkpointed accountant (e.g. carried in a
        deployment artifact); its ε-per-slice must match the fleet's
        mechanism, exactly as
        :class:`~repro.core.obfuscator.EventObfuscator` enforces.
        """
        if tenant_id in self._accountants:
            raise ValueError(f"tenant {tenant_id!r} already registered")
        if state is not None:
            restored = PrivacyAccountant.from_dict(state)
            if restored.per_slice_epsilon != per_slice_epsilon:
                raise ValueError(
                    f"restored accountant for {tenant_id!r} was calibrated "
                    f"for eps={restored.per_slice_epsilon:g} per slice, "
                    f"but the fleet releases at eps={per_slice_epsilon:g}")
            accountant = ReallocatableAccountant(
                per_slice_epsilon=restored.per_slice_epsilon,
                delta=restored.delta,
                epsilon_cap=(float(epsilon_cap)
                             if not math.isinf(epsilon_cap)
                             else restored.epsilon_cap))
            # The restored slices were already accounted (and ledgered)
            # by the run that checkpointed them.
            accountant.releases = restored.releases
        else:
            accountant = ReallocatableAccountant(
                per_slice_epsilon=per_slice_epsilon, delta=delta,
                epsilon_cap=epsilon_cap)
        self._accountants[tenant_id] = accountant
        self._stalls[tenant_id] = 0
        self._rejected[tenant_id] = 0
        telemetry.ledger().sync_tenant(tenant_id, accountant)
        return accountant

    def accountant(self, tenant_id: str) -> PrivacyAccountant:
        try:
            return self._accountants[tenant_id]
        except KeyError as exc:
            raise UnknownTenant(f"no such tenant {tenant_id!r}") from exc

    def would_exceed(self, tenant_id: str, slices: int) -> bool:
        """Whether releasing ``slices`` would break the tenant's quota."""
        return self.accountant(tenant_id).would_exceed(slices)

    def account(self, tenant_id: str, slices: int) -> None:
        """Record ``slices`` released for one tenant (raises past quota)."""
        accountant = self.accountant(tenant_id)
        accountant.record(slices)
        telemetry.ledger().sync_tenant(tenant_id, accountant)

    def reallocate(self, tenant_id: str,
                   per_slice_epsilon: float) -> bool:
        """Retarget one tenant's live release rate (downward only).

        The defense plane's ε action. Returns whether the rate
        actually changed; a change re-syncs the tenant's telemetry
        gauges so dashboards see the tightened guarantee immediately.
        """
        accountant = self.accountant(tenant_id)
        changed = accountant.reallocate(per_slice_epsilon)
        if changed:
            telemetry.ledger().sync_tenant(tenant_id, accountant)
        return changed

    def record_stall(self, tenant_id: str, slices: int) -> None:
        """A withheld window: counted, but no budget spent."""
        self.accountant(tenant_id)  # validate the id
        self._stalls[tenant_id] += slices
        telemetry.ledger().record_stall(slices)

    def record_rejection(self, tenant_id: str) -> None:
        """One admission rejection (no noise drawn, no budget spent)."""
        self.accountant(tenant_id)
        self._rejected[tenant_id] += 1

    def snapshot(self) -> dict:
        """JSON-ready per-tenant budget state, tenant ids sorted."""
        out = {}
        for tenant_id in self.tenant_ids:
            accountant = self._accountants[tenant_id]
            out[tenant_id] = {
                "releases": accountant.releases,
                "per_slice_epsilon": accountant.per_slice_epsilon,
                "base_epsilon": getattr(accountant, "base_epsilon",
                                        accountant.per_slice_epsilon),
                "reallocations": getattr(accountant, "reallocations", 0),
                "epsilon_spent": accountant.tightest_epsilon,
                "epsilon_basic": accountant.basic_epsilon,
                "epsilon_cap": (None if math.isinf(accountant.epsilon_cap)
                                else accountant.epsilon_cap),
                "remaining_slices": accountant.remaining_slices,
                "exhausted": accountant.exhausted,
                "stalled_slices": self._stalls[tenant_id],
                "rejected_windows": self._rejected[tenant_id],
            }
        return out
