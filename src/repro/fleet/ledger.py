"""The fleet's central ε-ledger: one accountant per tenant.

Multi-tenancy must not pool privacy budget: each tenant's guarantee is
its own, so the ledger keeps one capped
:class:`~repro.core.obfuscator.budget.PrivacyAccountant` per tenant and
mirrors every tenant's composed guarantee into telemetry
(``privacy.tenant.<id>.*`` gauges via
:meth:`~repro.telemetry.ledger.PrivacyLedger.sync_tenant`). Accounting
is fail-closed end to end: a release that would exceed the tenant's
quota raises :class:`~repro.core.obfuscator.budget.BudgetExhausted`
*before* any state changes, and a stalled (withheld) window is counted
but spends nothing.

Tenant isolation is structural — there is no cross-tenant state here
beyond the dict itself, so exhausting tenant A cannot perturb a single
record of tenant B.
"""

from __future__ import annotations

import math

from repro.core.obfuscator.budget import PrivacyAccountant
from repro.telemetry import runtime as telemetry


class UnknownTenant(KeyError):
    """An operation referenced a tenant id never registered."""


class FleetLedger:
    """Per-tenant privacy accounting for one fleet."""

    def __init__(self) -> None:
        self._accountants: dict[str, PrivacyAccountant] = {}
        self._stalls: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._accountants

    @property
    def tenant_ids(self) -> list[str]:
        return sorted(self._accountants)

    def register(self, tenant_id: str, per_slice_epsilon: float,
                 delta: float = 1e-6,
                 epsilon_cap: float = math.inf,
                 state: "dict | None" = None) -> PrivacyAccountant:
        """Create (or restore) tenant ``tenant_id``'s accountant.

        ``state`` restores a checkpointed accountant (e.g. carried in a
        deployment artifact); its ε-per-slice must match the fleet's
        mechanism, exactly as
        :class:`~repro.core.obfuscator.EventObfuscator` enforces.
        """
        if tenant_id in self._accountants:
            raise ValueError(f"tenant {tenant_id!r} already registered")
        if state is not None:
            accountant = PrivacyAccountant.from_dict(state)
            if accountant.per_slice_epsilon != per_slice_epsilon:
                raise ValueError(
                    f"restored accountant for {tenant_id!r} was calibrated "
                    f"for eps={accountant.per_slice_epsilon:g} per slice, "
                    f"but the fleet releases at eps={per_slice_epsilon:g}")
            if not math.isinf(epsilon_cap):
                accountant.epsilon_cap = float(epsilon_cap)
        else:
            accountant = PrivacyAccountant(
                per_slice_epsilon=per_slice_epsilon, delta=delta,
                epsilon_cap=epsilon_cap)
        self._accountants[tenant_id] = accountant
        self._stalls[tenant_id] = 0
        self._rejected[tenant_id] = 0
        telemetry.ledger().sync_tenant(tenant_id, accountant)
        return accountant

    def accountant(self, tenant_id: str) -> PrivacyAccountant:
        try:
            return self._accountants[tenant_id]
        except KeyError as exc:
            raise UnknownTenant(f"no such tenant {tenant_id!r}") from exc

    def would_exceed(self, tenant_id: str, slices: int) -> bool:
        """Whether releasing ``slices`` would break the tenant's quota."""
        return self.accountant(tenant_id).would_exceed(slices)

    def account(self, tenant_id: str, slices: int) -> None:
        """Record ``slices`` released for one tenant (raises past quota)."""
        accountant = self.accountant(tenant_id)
        accountant.record(slices)
        telemetry.ledger().sync_tenant(tenant_id, accountant)

    def record_stall(self, tenant_id: str, slices: int) -> None:
        """A withheld window: counted, but no budget spent."""
        self.accountant(tenant_id)  # validate the id
        self._stalls[tenant_id] += slices
        telemetry.ledger().record_stall(slices)

    def record_rejection(self, tenant_id: str) -> None:
        """One admission rejection (no noise drawn, no budget spent)."""
        self.accountant(tenant_id)
        self._rejected[tenant_id] += 1

    def snapshot(self) -> dict:
        """JSON-ready per-tenant budget state, tenant ids sorted."""
        out = {}
        for tenant_id in self.tenant_ids:
            accountant = self._accountants[tenant_id]
            out[tenant_id] = {
                "releases": accountant.releases,
                "per_slice_epsilon": accountant.per_slice_epsilon,
                "epsilon_spent": accountant.tightest_epsilon,
                "epsilon_basic": accountant.basic_epsilon,
                "epsilon_cap": (None if math.isinf(accountant.epsilon_cap)
                                else accountant.epsilon_cap),
                "remaining_slices": accountant.remaining_slices,
                "exhausted": accountant.exhausted,
                "stalled_slices": self._stalls[tenant_id],
                "rejected_windows": self._rejected[tenant_id],
            }
        return out
