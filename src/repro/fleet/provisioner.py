"""Batched noise provisioning for a fleet of Event Obfuscators.

The paper's daemon precomputes Laplace draws because drawing at release
time is too slow; a fleet takes the same idea one level up. For the
Laplace mechanism the *entire injection plan* is value-independent:
noise draw, Dirichlet component mix, and per-component gadget
repetitions ``rint(clip(noise) · mix / counts_per_rep)`` depend only on
the RNG stream — never on the guest's HPC values. So the provisioner
precomputes, per tenant and in large vectorized batches, both the raw
draws (to back a stock daemon's calculator via its ``supplier`` hook)
and the finished per-component repetition plan (for the control
plane's batched serving path). Serving a slice then costs one matmul
row and an add.

Every tenant's sequence comes from one seeded RNG tree
(:func:`repro.utils.rng.derive_stream` with the tenant id as the spawn
key), with *separate* noise and mix child streams, which buys two
reproducibility guarantees:

- any tenant's sequence can be regenerated in isolation — no other
  tenant, and no particular admission order, needs to exist;
- the sequence is invariant to batch sizes: drawing 2×4096 or 1×8192
  consumes the streams identically.

Refills are watermark-driven and guarded by the ``fleet.provision``
fault point, checked *before* any stream is touched: a fault absorbed
by the bounded retry loop leaves every tenant's noise sequence
bit-identical to a fault-free run. When retries are exhausted the
provisioner fails closed with
:class:`~repro.core.obfuscator.noise.NoiseExhausted` — mirroring the
single-daemon refill contract — and admission turns that into
backpressure, never an un-noised read.
"""

from __future__ import annotations

import math
import os
import secrets
from multiprocessing import shared_memory

import numpy as np

from repro.core.obfuscator.dp import dstar_parent, laplace_sample
from repro.core.obfuscator.noise import NoiseExhausted
from repro.resilience import runtime as resilience
from repro.resilience.faults import InjectedFault
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream

#: Modes a tenant's precomputed plan can be tagged with. ``laplace``
#: is the paper's per-slice mechanism; ``dstar`` serves the cumulative
#: d*-tree noise ``c[t] = c[parent(t)] + r_t`` — still value-independent
#: (the additive noise telescopes to a pure path-sum of tree draws), so
#: the escalated plan precomputes and replays exactly like the default.
PLAN_MODES = ("laplace", "dstar")

#: Default per-tenant buffer capacity (slices). Three paper windows.
DEFAULT_CAPACITY = 12288

#: Default refill watermark: top up once fewer slices remain.
DEFAULT_WATERMARK = 4096

#: Shared-memory segment name prefix; names embed the creating pid so a
#: supervisor can sweep a crashed worker's leaked segments.
SEGMENT_PREFIX = "repro-plan"


class SharedPlanSegment:
    """A ``multiprocessing.shared_memory`` block holding one tenant's
    noise plan: ``capacity`` raw draws followed by the ``(capacity, K)``
    per-component repetition plan, both as float64 numpy views.

    This is the zero-copy handoff between the provisioner and the
    serving path: the provisioner draws straight into the segment, the
    serving matmul reads views of the same pages, and any process that
    knows ``(name, capacity, k)`` can :meth:`attach` the identical
    buffers without a byte copied or pickled.
    """

    ITEMSIZE = np.dtype(np.float64).itemsize

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 num_components: int, owner: bool) -> None:
        self.capacity = int(capacity)
        self.num_components = int(num_components)
        self.owner = owner
        self._shm = shm
        split = self.capacity * self.ITEMSIZE
        self.noise = np.ndarray((self.capacity,), dtype=np.float64,
                                buffer=shm.buf, offset=0)
        self.per_comp = np.ndarray((self.capacity, self.num_components),
                                   dtype=np.float64, buffer=shm.buf,
                                   offset=split)

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def nbytes(cls, capacity: int, num_components: int) -> int:
        return capacity * (1 + num_components) * cls.ITEMSIZE

    @classmethod
    def create(cls, tenant_id: str, capacity: int,
               num_components: int) -> "SharedPlanSegment":
        """Allocate a fresh segment (name unique per process + tenant)."""
        name = (f"{SEGMENT_PREFIX}-{os.getpid()}-"
                f"{secrets.token_hex(4)}-{tenant_id}"[:30])
        shm = shared_memory.SharedMemory(
            name=name, create=True,
            size=cls.nbytes(capacity, num_components))
        return cls(shm, capacity, num_components, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int,
               num_components: int) -> "SharedPlanSegment":
        """Map an existing segment by name (the cross-process side)."""
        shm = shared_memory.SharedMemory(name=name, create=False)
        return cls(shm, capacity, num_components, owner=False)

    def close(self, unlink: "bool | None" = None) -> None:
        """Drop the views and unmap; owners also unlink by default."""
        self.noise = None
        self.per_comp = None
        self._shm.close()
        if self.owner if unlink is None else unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def describe(self) -> dict:
        return {"name": self.name, "capacity": self.capacity,
                "num_components": self.num_components}


class TenantNoiseBuffer:
    """One tenant's precomputed noise: raw draws + injection plan.

    Rows ``[cursor, fill)`` of ``noise`` (raw Laplace draws) and
    ``per_comp`` (per-component repetitions, ``(capacity, K)``) are
    live and correspond one-to-one; consumption advances the shared
    cursor so the supplier path and the batched serving path can never
    double-spend a draw.

    With ``segment`` the arrays are views over a
    :class:`SharedPlanSegment` instead of private heap allocations —
    same semantics, but the plan is mappable from other processes and
    the provisioner→serving handoff is guaranteed zero-copy.
    """

    def __init__(self, tenant_id: str, capacity: int, watermark: int,
                 num_components: int,
                 noise_rng: np.random.Generator,
                 mix_rng: np.random.Generator,
                 segment: "SharedPlanSegment | None" = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 <= watermark <= capacity:
            raise ValueError(
                f"watermark must be in [0, {capacity}], got {watermark}")
        self.tenant_id = tenant_id
        self.capacity = capacity
        self.watermark = watermark
        self.segment = segment
        if segment is not None:
            if (segment.capacity != capacity
                    or segment.num_components != num_components):
                raise ValueError(
                    f"segment geometry ({segment.capacity}, "
                    f"{segment.num_components}) does not match buffer "
                    f"({capacity}, {num_components})")
            self.noise = segment.noise
            self.per_comp = segment.per_comp
        else:
            self.noise = np.empty(capacity)
            self.per_comp = np.empty((capacity, num_components))
        self.cursor = 0
        self.fill = 0
        self.refills = 0
        self.stalls = 0
        self.mode = "laplace"
        self.scale_factor = 1.0
        self.flushed_slices = 0
        self.dstar_t = 0
        self._dstar_cum = {0: 0.0}
        self._noise_rng = noise_rng
        self._mix_rng = mix_rng

    def release(self) -> None:
        """Drop array references (and the shared segment, if any)."""
        self.noise = None
        self.per_comp = None
        if self.segment is not None:
            self.segment.close()
            self.segment = None

    @property
    def available(self) -> int:
        """Live precomputed slices."""
        return self.fill - self.cursor

    @property
    def below_watermark(self) -> bool:
        return self.available < self.watermark

    def compact(self) -> None:
        """Move the unconsumed tail to the front to make refill room."""
        if self.cursor == 0:
            return
        live = self.available
        if live:
            self.noise[:live] = self.noise[self.cursor:self.fill]
            self.per_comp[:live] = self.per_comp[self.cursor:self.fill]
        self.cursor = 0
        self.fill = live

    def consume(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the next ``count`` plan rows and raw draws.

        The views alias buffer storage and stay valid until the next
        :meth:`compact` (i.e. the next refill) — callers use them
        within the serving tick, which is exactly their lifetime.
        """
        if count > self.available:
            raise NoiseExhausted(
                f"tenant {self.tenant_id!r} buffer has {self.available} "
                f"precomputed slices, needs {count}")
        lo = self.cursor
        self.cursor += count
        return (self.per_comp[lo:self.cursor], self.noise[lo:self.cursor])


class NoiseProvisioner:
    """Precomputes per-tenant noise buffers from one seeded RNG tree.

    Parameters
    ----------
    entropy:
        Root seed of the fleet's RNG tree.
    scale:
        Laplace scale b = Δ/ε of the mechanism being served.
    components:
        ``(K, NUM_SIGNALS)`` per-repetition gadget-group profiles.
    reference_weights:
        The reference event's catalog weight row; fixes the
        counts-per-repetition conversion, as in the stock injector.
    clip_bound:
        B_u applied to the noise counts before planning repetitions.
    shared_plans:
        Back every tenant buffer with a :class:`SharedPlanSegment`
        (zero-copy, cross-process mappable) instead of private heap
        arrays. Callers that enable this own calling :meth:`close`.

    Reshard invariance: ``entropy`` must be the *fleet root* seed, not
    anything shard-local. Tenant streams derive as ``(entropy, "noise"
    | "mix", tenant_id)``, so two provisioners on different shards —
    or one fleet resharded from 1 to 4 workers — produce bit-identical
    plans for the same tenant.
    """

    def __init__(self, entropy: int, scale: float,
                 components: np.ndarray, reference_weights: np.ndarray,
                 clip_bound: float = np.inf,
                 capacity: int = DEFAULT_CAPACITY,
                 watermark: int = DEFAULT_WATERMARK,
                 refill_retries: int = 4,
                 shared_plans: bool = False,
                 fault_attempt_bias: int = 0) -> None:
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        if refill_retries < 0:
            raise ValueError(
                f"refill_retries must be >= 0, got {refill_retries}")
        if fault_attempt_bias < 0:
            raise ValueError(
                f"fault_attempt_bias must be >= 0, got "
                f"{fault_attempt_bias}")
        components = np.asarray(components, dtype=np.float64)
        if components.ndim == 1:
            components = components[None, :]
        counts = components @ np.asarray(reference_weights,
                                         dtype=np.float64)
        if np.any(counts <= 0):
            raise ValueError(
                "a gadget component does not move the reference event")
        self.entropy = int(entropy)
        self.scale = float(scale)
        self.components = components
        self.clip_bound = float(clip_bound)
        self.capacity = capacity
        self.watermark = watermark
        self.refill_retries = refill_retries
        self.shared_plans = bool(shared_plans)
        # A replacement shard worker passes its recovery generation so
        # replayed refill attempts land past fault budgets an earlier
        # generation already consumed (see FaultInjector.attempt_bias).
        self.fault_attempt_bias = int(fault_attempt_bias)
        self._inv_counts = 1.0 / counts
        self.buffers: dict[str, TenantNoiseBuffer] = {}

    @property
    def num_components(self) -> int:
        return len(self.components)

    # -- tenant lifecycle ---------------------------------------------

    def create_buffer(self, tenant_id: str) -> TenantNoiseBuffer:
        """Allocate tenant ``tenant_id``'s buffer (streams derived,
        nothing drawn yet)."""
        if tenant_id in self.buffers:
            raise ValueError(
                f"tenant {tenant_id!r} already has a noise buffer")
        segment = None
        if self.shared_plans:
            segment = SharedPlanSegment.create(
                tenant_id, self.capacity, self.num_components)
        buffer = TenantNoiseBuffer(
            tenant_id, self.capacity, self.watermark,
            self.num_components,
            noise_rng=derive_stream(self.entropy, "noise", tenant_id),
            mix_rng=derive_stream(self.entropy, "mix", tenant_id),
            segment=segment)
        self.buffers[tenant_id] = buffer
        return buffer

    def close(self) -> None:
        """Release every buffer (unlinks shared segments). Idempotent."""
        for buffer in self.buffers.values():
            buffer.release()
        self.buffers.clear()

    def plan_segments(self) -> dict:
        """``{tenant_id: segment description}`` for shared-plan fleets."""
        return {tenant_id: buffer.segment.describe()
                for tenant_id, buffer in sorted(self.buffers.items())
                if buffer.segment is not None}

    def buffer(self, tenant_id: str) -> TenantNoiseBuffer:
        try:
            return self.buffers[tenant_id]
        except KeyError as exc:
            raise KeyError(f"no noise buffer for tenant "
                           f"{tenant_id!r}") from exc

    # -- plan profile (defense-plane escalation) -----------------------

    def set_profile(self, tenant_id: str, mode: str = "laplace",
                    scale_factor: float = 1.0) -> int:
        """Retag one tenant's plan ``(mode, scale factor)``; returns
        the live slices flushed.

        The defense plane's noise action. An unchanged profile is a
        no-op. A change flushes the unconsumed precomputed tail —
        those rows were drawn under the old profile and serving them
        would leak the weaker guarantee — so the next refill draws
        under the new one. ``scale_factor`` multiplies the Laplace
        scale b = Δ/ε: a tenant reallocated to ε·f serves at factor
        1/f ≥ 1 (escalation only ever adds noise). Entering ``dstar``
        restarts the tenant's d* tree at t=0: each escalation episode
        is a fresh, deterministic cumulative sequence.
        """
        if mode not in PLAN_MODES:
            raise ValueError(f"mode must be one of {PLAN_MODES}, got "
                             f"{mode!r}")
        if scale_factor < 1.0:
            raise ValueError(
                f"scale_factor must be >= 1.0 (escalation only adds "
                f"noise), got {scale_factor:g}")
        buffer = self.buffer(tenant_id)
        if mode == buffer.mode and scale_factor == buffer.scale_factor:
            return 0
        flushed = buffer.available
        buffer.cursor = buffer.fill
        buffer.flushed_slices += flushed
        if mode == "dstar" and buffer.mode != "dstar":
            buffer.dstar_t = 0
            buffer._dstar_cum = {0: 0.0}
        buffer.mode = mode
        buffer.scale_factor = float(scale_factor)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fleet.plan_retags").inc()
            if flushed:
                registry.counter("fleet.flushed_slices").inc(flushed)
        return flushed

    # -- refill --------------------------------------------------------

    def refill(self, buffer: TenantNoiseBuffer) -> int:
        """Top ``buffer`` up to capacity; returns slices provisioned.

        The ``fleet.provision`` fault point is consulted *before* the
        RNG streams are touched, so a retry-absorbed fault leaves the
        tenant's sequence bit-identical; exhausted retries fail closed
        with :class:`NoiseExhausted` after recording the stall.
        """
        need = buffer.capacity - buffer.available
        if need <= 0:
            return 0
        buffer.compact()
        last_fault: "InjectedFault | None" = None
        with telemetry.tracer().span("fleet.provision",
                                     tenant=buffer.tenant_id,
                                     slices=need):
            for attempt in range(self.refill_retries + 1):
                try:
                    resilience.check(
                        "fleet.provision", key=buffer.refills,
                        attempt=self.fault_attempt_bias + attempt)
                except InjectedFault as exc:
                    last_fault = exc
                    buffer.stalls += 1
                    telemetry.metrics().counter(
                        "fleet.provision_stalls").inc()
                    continue
                self._draw_into(buffer, need)
                buffer.refills += 1
                registry = telemetry.metrics()
                if registry.enabled:
                    registry.counter("fleet.refills").inc()
                    registry.counter("fleet.provisioned_slices").inc(need)
                return need
        raise NoiseExhausted(
            f"provisioning for tenant {buffer.tenant_id!r} failed "
            f"{self.refill_retries + 1} times; buffer stays at "
            f"{buffer.available} slices (fail closed)") from last_fault

    def _draw_into(self, buffer: TenantNoiseBuffer, count: int) -> None:
        """Draw ``count`` slices of noise + finished injection plan.

        Consumes exactly ``count`` draws from each stream in row-major
        order, which is what makes the sequence independent of how
        refills are batched. Both plan modes consume exactly one noise
        draw per slice, so mode history never desynchronizes the
        stream: in ``laplace`` mode the draw *is* the slice's noise
        (at the profile-scaled b); in ``dstar`` mode unit-scale draws
        become the tree residuals r_t and each slice serves the
        cumulative path-sum ``c[t] = c[parent(t)] + r_t`` at the
        slice-dependent d* scale.
        """
        lo = buffer.fill
        hi = lo + count
        if buffer.mode == "dstar":
            unit = np.asarray(laplace_sample(1.0, buffer._noise_rng,
                                             size=count))
            base_scale = self.scale * buffer.scale_factor
            draws = np.empty(count)
            cum = buffer._dstar_cum
            for i in range(count):
                t = buffer.dstar_t + 1 + i
                mult = 1.0 if t == (t & -t) else float(
                    math.floor(math.log2(t)))
                cum[t] = cum[dstar_parent(t)] + \
                    unit[i] * base_scale * mult
                draws[i] = cum[t]
            buffer.dstar_t += count
        else:
            draws = np.asarray(laplace_sample(
                self.scale * buffer.scale_factor, buffer._noise_rng,
                size=count))
        buffer.noise[lo:hi] = draws
        k = self.num_components
        plan = buffer.per_comp[lo:hi]
        if k == 1:
            mix = np.ones((count, 1))
        else:
            # Dirichlet(1, ..., 1) via normalized exponentials, drawn
            # from the dedicated mix stream so plan shapes never
            # perturb the noise draws.
            mix = buffer._mix_rng.standard_exponential((count, k))
            mix /= mix.sum(axis=1, keepdims=True)
        np.multiply(mix, self._inv_counts, out=plan)
        clipped = np.clip(draws, 0.0, self.clip_bound)
        np.multiply(plan, clipped[:, None], out=plan)
        np.rint(plan, out=plan)
        buffer.fill = hi

    # -- consumption ---------------------------------------------------

    def take(self, tenant_id: str,
             count: int) -> tuple[np.ndarray, np.ndarray]:
        """``count`` (plan rows, raw draws) for one tenant, refilling
        on demand; raises :class:`NoiseExhausted` when refill fails."""
        buffer = self.buffer(tenant_id)
        if count > buffer.available:
            if count > buffer.capacity:
                raise ValueError(
                    f"window of {count} slices exceeds the buffer "
                    f"capacity {buffer.capacity}")
            self.refill(buffer)
        return buffer.consume(count)

    def supplier(self, tenant_id: str):
        """A ``supplier(count) -> ndarray`` backing a stock daemon.

        Hands out copies of the tenant's raw draws so a
        :class:`~repro.core.obfuscator.noise.NoiseCalculator` can own
        its buffer; the shared cursor still advances, keeping the
        supplier and plan paths mutually exclusive per draw.
        """
        def pull(count: int) -> np.ndarray:
            _, noise = self.take(tenant_id, count)
            return noise.copy()
        return pull

    def top_up(self, only: "list[str] | None" = None) -> int:
        """Refill buffers below their watermark; returns slices
        provisioned. ``only`` restricts the sweep to the named tenants
        (the event-driven scheduler passes the tick's due set so the
        cost is O(due), not O(fleet)); ``None`` sweeps everyone.
        Tenants are visited in sorted order so the schedule is
        deterministic.

        Best-effort: a tenant whose refill stays stalled past its
        retries is skipped (the stall is already counted) — the next
        serving attempt fails closed at admission as backpressure.
        A wedged provisioner must never take the scheduler down with
        it."""
        tenant_ids = sorted(self.buffers) if only is None \
            else sorted(set(only) & self.buffers.keys())
        provisioned = 0
        for tenant_id in tenant_ids:
            buffer = self.buffers[tenant_id]
            if buffer.below_watermark:
                try:
                    provisioned += self.refill(buffer)
                except NoiseExhausted:
                    continue
        return provisioned
