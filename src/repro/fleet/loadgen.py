"""Trace-replay load generation for the fleet control plane.

Records one guest workload trace per tenant — the raw monitored-event
counts the hypervisor would read, before obfuscation — and replays the
recorded windows against the control plane at configurable concurrency.
Because the traces are recorded up front from per-tenant derived RNG
streams, a replay is a *closed* workload: the exact same reads arrive
in the exact same order on every run, which is what lets the replay
report state bit-identity (per-tenant SHA-256 digests of every noised
read, plus the final ε-ledger) instead of eyeballing statistics.

The generator doubles as the fleet benchmark driver: it counts served
slices and wall-clock so the throughput CI gate and the ``aegis fleet``
CLI share one code path.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.controlplane import FleetControlPlane, TenantSpec
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream
from repro.workloads import (
    DnnWorkload,
    KeystrokeWorkload,
    RsaSignWorkload,
    WebsiteWorkload,
    Workload,
)

#: Workload names the load generator can instantiate.
WORKLOAD_FACTORIES = {
    "website": WebsiteWorkload,
    "keystroke": KeystrokeWorkload,
    "dnn": DnnWorkload,
    "rsa": RsaSignWorkload,
}

#: Attacker trace kinds the load generator can inject.
ATTACKER_KINDS = ("single-step", "burst-poll")


@dataclass(frozen=True)
class AttackerProfile:
    """A host-side read-attack trace injected against one tenant.

    ``single-step`` replays the SEV-Step signature: one register read
    per instruction step at an exactly periodic ``cadence``.
    ``burst-poll`` replays a profiling burst: reads rotating across
    every programmed register with seeded jittered intervals drawn
    uniformly from ``jitter``. Both issue their reads through the
    hypervisor's legitimate HPC read path — an attacker needs nothing
    else — and their logical timestamps derive from the *window index*,
    so the injected stream (and therefore every detector alert) is
    identical at any load-generator concurrency.
    """

    kind: str
    reads_per_window: int = 64
    cadence: float = 1e-3
    slot: int = 0
    jitter: tuple = (2e-4, 2e-3)

    def __post_init__(self) -> None:
        if self.kind not in ATTACKER_KINDS:
            raise ValueError(f"unknown attacker kind {self.kind!r}; "
                             f"choose from {sorted(ATTACKER_KINDS)}")
        if self.reads_per_window < 1:
            raise ValueError("reads_per_window must be >= 1, got "
                             f"{self.reads_per_window}")


def make_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOAD_FACTORIES)}") from exc
    return factory()


def record_trace(plane: FleetControlPlane, spec: TenantSpec,
                 slices: int, slice_s: float = 1e-3) -> np.ndarray:
    """One recorded ``(T, E)`` raw monitored-event window for a tenant.

    Deterministic in (fleet seed, tenant id): the workload runs under
    the tenant's own derived stream, so the recorded trace — like the
    tenant's noise — is reproducible with no other tenant present.
    """
    workload = make_workload(spec.workload)
    secret = spec.secret if spec.secret is not None \
        else workload.secrets[0]
    rng = derive_stream(plane.seed, "workload", spec.tenant_id)
    blocks, _ = workload.generate_blocks_with_phases(
        secret, rng, slices * slice_s, slice_s)
    signals = np.stack([b.signals for b in blocks])[:slices]
    return signals @ plane.event_weights


@dataclass
class ReplayReport:
    """What one replay run produced, digests first."""

    windows: int
    slices_per_window: int
    tenants: list[str]
    served_windows: int
    rejected_windows: int
    served_slices: int
    elapsed_s: float
    read_digests: dict[str, str]
    budget_digest: str
    budgets: dict = field(default_factory=dict)
    rejections: dict = field(default_factory=dict)

    @property
    def slices_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.served_slices / self.elapsed_s

    def fingerprint(self) -> dict:
        """The replay's determinism-relevant state, for comparison."""
        return {"read_digests": dict(self.read_digests),
                "budget_digest": self.budget_digest}

    def to_dict(self) -> dict:
        return {
            "windows": self.windows,
            "slices_per_window": self.slices_per_window,
            "tenants": list(self.tenants),
            "served_windows": self.served_windows,
            "rejected_windows": self.rejected_windows,
            "served_slices": self.served_slices,
            "elapsed_s": self.elapsed_s,
            "slices_per_second": self.slices_per_second,
            "read_digests": dict(self.read_digests),
            "budget_digest": self.budget_digest,
            "budgets": self.budgets,
            "rejections": self.rejections,
        }


class LoadGenerator:
    """Replays recorded tenant traces against a control plane.

    Parameters
    ----------
    plane:
        The fleet under load. Tenants from ``specs`` not yet admitted
        are admitted by :meth:`run`.
    specs:
        The tenants to drive, one recorded trace each.
    windows / slices_per_window:
        Replay volume: every tenant submits ``windows`` windows of
        ``slices_per_window`` slices (its recorded trace, repeated).
    concurrency:
        Tenants interleaved per scheduling round. ``None`` means all —
        full multiplexing; ``1`` degenerates to serving tenants
        strictly one after another.
    ticks_per_round:
        Control-plane ticks (watchdog polls, HPC reads, watermark
        refills) interleaved after each scheduling round.
    attackers:
        Optional ``{tenant_id: AttackerProfile}`` — after each listed
        tenant's window is served, its attack trace replays against
        that tenant's guest, exercising the observability plane's
        detectors under otherwise-normal fleet load.
    window_hook:
        Optional ``hook(window_index)`` called after each completed
        window (all tenants served, ticks run). Shard workers hang
        their ``fleet.shard`` crash fault point here, so a chaos plan
        can kill a shard *mid-replay* with progress already made.
    """

    def __init__(self, plane: FleetControlPlane, specs: list[TenantSpec],
                 windows: int = 4, slices_per_window: int = 3000,
                 concurrency: "int | None" = None,
                 ticks_per_round: int = 1,
                 slice_s: float = 1e-3,
                 attackers: "dict[str, AttackerProfile] | None" = None,
                 window_hook=None,
                 ) -> None:
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        if slices_per_window < 1:
            raise ValueError(
                f"slices_per_window must be >= 1, got {slices_per_window}")
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        self.plane = plane
        self.specs = sorted(specs, key=lambda s: s.tenant_id)
        self.windows = windows
        self.slices_per_window = slices_per_window
        self.concurrency = concurrency
        self.ticks_per_round = ticks_per_round
        self.slice_s = slice_s
        self.window_hook = window_hook
        self.attackers = dict(attackers) if attackers else {}
        known = {spec.tenant_id for spec in self.specs}
        unknown = sorted(set(self.attackers) - known)
        if unknown:
            raise ValueError(
                f"attacker profiles target unknown tenant(s): {unknown}")

    def _inject_attack(self, tenant_id: str, profile: AttackerProfile,
                       window: int) -> None:
        """Replay one window of ``profile`` against ``tenant_id``.

        Timestamps sit at ``window + 0.5`` plus sub-burst offsets —
        never near the scheduler ticks' 1/8-tick grid — so attack
        bursts and housekeeping reads cannot blur into one run.
        ``rdpmc`` is a pure read: injection perturbs no RNG stream and
        no noised value, which keeps replay digests bit-identical with
        and without an attacker present.
        """
        plane = self.plane
        runtime = plane.tenants[tenant_id]
        base = float(window) + 0.5
        if profile.kind == "single-step":
            for i in range(profile.reads_per_window):
                plane.hypervisor.read_vcpu_hpc(
                    runtime.guest_name, 0, profile.slot,
                    at=base + i * profile.cadence)
        else:  # burst-poll
            rng = derive_stream(plane.seed, "attacker", tenant_id,
                                window)
            lo, hi = profile.jitter
            intervals = rng.uniform(lo, hi, profile.reads_per_window)
            slots = len(plane.monitored_events)
            at = base
            for i in range(profile.reads_per_window):
                plane.hypervisor.read_vcpu_hpc(
                    runtime.guest_name, 0, i % slots, at=at)
                at += float(intervals[i])
        runtime.hpc_reads += profile.reads_per_window

    def run(self) -> ReplayReport:
        """Admit, record, replay; returns the digest-bearing report."""
        plane = self.plane
        for spec in self.specs:
            if spec.tenant_id not in plane.tenants:
                plane.admit_tenant(spec)
        traces = {spec.tenant_id: record_trace(plane, spec,
                                               self.slices_per_window,
                                               self.slice_s)
                  for spec in self.specs}
        digests = {spec.tenant_id: hashlib.sha256()
                   for spec in self.specs}
        tenant_ids = [spec.tenant_id for spec in self.specs]
        group = len(tenant_ids) if self.concurrency is None \
            else min(self.concurrency, len(tenant_ids))
        served_windows = 0
        rejected_windows = 0
        served_slices = 0
        rejections: dict[str, list[str]] = {}
        start = time.perf_counter()
        with telemetry.tracer().span("fleet.replay",
                                     tenants=len(tenant_ids),
                                     windows=self.windows):
            for window in range(self.windows):
                for lo in range(0, len(tenant_ids), group):
                    for tenant_id in tenant_ids[lo:lo + group]:
                        decision, noised = plane.serve_window(
                            tenant_id, traces[tenant_id])
                        if decision:
                            digests[tenant_id].update(noised.tobytes())
                            served_windows += 1
                            served_slices += decision.slices
                        else:
                            rejected_windows += 1
                            rejections.setdefault(tenant_id, []).append(
                                decision.reason)
                        profile = self.attackers.get(tenant_id)
                        if profile is not None:
                            self._inject_attack(tenant_id, profile,
                                                window)
                    for _ in range(self.ticks_per_round):
                        plane.tick()
                if self.window_hook is not None:
                    self.window_hook(window)
        elapsed = time.perf_counter() - start
        budgets = plane.ledger.snapshot()
        budget_digest = hashlib.sha256(
            json.dumps(budgets, sort_keys=True).encode("utf-8")).hexdigest()
        return ReplayReport(
            windows=self.windows,
            slices_per_window=self.slices_per_window,
            tenants=tenant_ids,
            served_windows=served_windows,
            rejected_windows=rejected_windows,
            served_slices=served_slices,
            elapsed_s=elapsed,
            read_digests={tid: digest.hexdigest()
                          for tid, digest in digests.items()},
            budget_digest=budget_digest,
            budgets=budgets,
            rejections=rejections)


def default_specs(num_tenants: int,
                  workload: str = "website",
                  epsilon_cap: float = float("inf")) -> list[TenantSpec]:
    """``num_tenants`` standard tenant specs (``t00`` .. ``tNN``)."""
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
    return [TenantSpec(tenant_id=f"t{i:02d}", workload=workload,
                       epsilon_cap=epsilon_cap)
            for i in range(num_tenants)]
