"""The multi-tenant fleet control plane.

Scales the Event Obfuscator from one protected VM to N SEV guests on a
host: a versioned artifact registry hands the offline stage's output to
every tenant, a provisioning service batch-precomputes each tenant's
value-independent injection plan from one seeded RNG tree, an admission
controller polices per-tenant ε-quotas and noise backpressure (fail
closed on both), and a scheduler multiplexes daemon heartbeats,
watchdog restarts, and host HPC reads across the fleet. A trace-replay
load generator drives it deterministically enough to assert
bit-identity across runs.

Beyond one process, a consistent-hash router shards the tenant set
across sacrificial worker processes (zero-copy shared-memory noise
plans, crash-and-replay recovery) while keeping every per-tenant
stream derived from the fleet root seed — so replay digests are
bit-identical at any shard count.

The adaptive defense plane (:mod:`repro.fleet.policy`) closes the
detection loop: detector alerts drive a deterministic per-tenant
escalation ladder — ε reallocation, Laplace→d* plan escalation,
fail-closed quarantine — that replays bit-identically at any shard
count.
"""

from repro.fleet.admission import AdmissionController, AdmissionDecision
from repro.fleet.controlplane import (
    FleetControlPlane,
    TenantRuntime,
    TenantSpec,
)
from repro.fleet.ledger import (
    FleetLedger,
    ReallocatableAccountant,
    UnknownTenant,
)
from repro.fleet.loadgen import (
    ATTACKER_KINDS,
    WORKLOAD_FACTORIES,
    AttackerProfile,
    LoadGenerator,
    ReplayReport,
    default_specs,
    make_workload,
    record_trace,
)
from repro.fleet.policy import (
    DEFENSE_STATES,
    ESCALATION_PROFILES,
    DefensePolicyEngine,
    EscalationProfile,
    resolve_profile,
)
from repro.fleet.provisioner import (
    DEFAULT_CAPACITY,
    DEFAULT_WATERMARK,
    PLAN_MODES,
    NoiseProvisioner,
    SharedPlanSegment,
    TenantNoiseBuffer,
)
from repro.fleet.router import DEFAULT_REPLICAS, FleetRouter
from repro.fleet.shard import (
    FleetShard,
    ShardCrashed,
    ShardedFleet,
    ShardedReplayReport,
    ShardReport,
)
from repro.fleet.statefile import read_json, sweep_stale_tmp, write_json_atomic
from repro.fleet.registry import (
    ArtifactCompatibilityError,
    ArtifactRegistry,
    RegistryEntry,
    RegistryIntegrityError,
    check_compatible,
    default_artifact,
    event_weight_matrix,
)

__all__ = [
    "ATTACKER_KINDS",
    "AdmissionController",
    "AdmissionDecision",
    "ArtifactCompatibilityError",
    "ArtifactRegistry",
    "AttackerProfile",
    "DEFAULT_CAPACITY",
    "DEFAULT_REPLICAS",
    "DEFAULT_WATERMARK",
    "DEFENSE_STATES",
    "DefensePolicyEngine",
    "ESCALATION_PROFILES",
    "EscalationProfile",
    "FleetControlPlane",
    "FleetLedger",
    "FleetRouter",
    "FleetShard",
    "LoadGenerator",
    "NoiseProvisioner",
    "PLAN_MODES",
    "ReallocatableAccountant",
    "RegistryEntry",
    "RegistryIntegrityError",
    "ReplayReport",
    "ShardCrashed",
    "ShardReport",
    "ShardedFleet",
    "ShardedReplayReport",
    "SharedPlanSegment",
    "TenantNoiseBuffer",
    "TenantRuntime",
    "TenantSpec",
    "UnknownTenant",
    "WORKLOAD_FACTORIES",
    "check_compatible",
    "default_artifact",
    "default_specs",
    "event_weight_matrix",
    "make_workload",
    "read_json",
    "record_trace",
    "resolve_profile",
    "sweep_stale_tmp",
    "write_json_atomic",
]
