"""Horizontally sharded fleet: shard workers + the sharding supervisor.

One :class:`~repro.fleet.controlplane.FleetControlPlane` tops out at a
process; six figures of tenants need many. The sharded fleet splits the
tenant set across worker processes with three invariants the tests pin
bit-for-bit:

1. **Reshard invariance.** Every shard's provisioner tree is seeded
   from the *fleet root* (tenant streams derive as ``(root, "noise" |
   "mix", tenant_id)`` — no shard label), and recorded workload traces
   derive from ``(root, "workload", tenant_id)``. A tenant's noised
   read stream is therefore byte-identical whether the fleet runs 1, 2
   or 4 shards — the property that makes SEV-Step/VIA-style per-tenant
   isolation auditable under horizontal scaling.
2. **Zero-copy plan handoff.** Shard planes run with
   ``shared_plans=True``: tenant noise plans live in
   ``multiprocessing.shared_memory`` segments
   (:class:`~repro.fleet.provisioner.SharedPlanSegment`), the serving
   matmul reads views of the provisioner's own pages, and any process
   holding the segment name can map the identical buffers.
3. **Reassign-and-replay recovery.** The ``fleet.shard`` fault point
   is checked after every window inside each worker (``kill`` mode
   really ``os._exit``'s the sacrificial worker). The supervisor
   detects the crash, removes the shard from the consistent-hash ring
   (moving *only* its tenants), and replays them on the survivors —
   because tenant streams are shard-independent, the recovered digests
   equal an uncrashed run's exactly.

Worker results return as small pickled :class:`ShardReport`\\ s
(digests, budgets, SLO window values); the heavy noised arrays never
cross the process boundary.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from pathlib import Path

from repro.fleet.controlplane import FleetControlPlane, TenantSpec
from repro.fleet.loadgen import LoadGenerator, ReplayReport
from repro.fleet.provisioner import (
    DEFAULT_CAPACITY,
    DEFAULT_WATERMARK,
    SEGMENT_PREFIX,
)
from repro.fleet.router import DEFAULT_REPLICAS, FleetRouter
from repro.observability import runtime as observability
from repro.observability.slo import merge_values
from repro.resilience import runtime as resilience
from repro.resilience.faults import KILL_EXIT_STATUS, InjectedFault

#: How a shard over its tenant cap handles the overflow.
OVERFLOW_POLICIES = ("queue", "drop")


class ShardCrashed(RuntimeError):
    """A shard worker failed for real (not an injected, recoverable
    crash): infrastructure error, or recovery generations exhausted."""


@dataclass
class ShardReport:
    """What one shard worker hands back to the supervisor."""

    shard_id: int
    generation: int
    pid: int
    replay: ReplayReport
    status: dict
    slo_values: "dict[str, list[float]]" = field(default_factory=dict)
    plan_segments: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def tenant_ids(self) -> list[str]:
        return list(self.replay.tenants)


@dataclass
class FleetShard:
    """One shard's replay assignment: a mini control plane over its
    tenants, run inline or inside a sacrificial worker process."""

    shard_id: int
    artifact: object
    seed: int
    specs: list
    windows: int
    slices_per_window: int
    capacity: int = DEFAULT_CAPACITY
    watermark: int = DEFAULT_WATERMARK
    housekeeping_interval: int = 1
    concurrency: "int | None" = None
    ticks_per_round: int = 1
    slice_s: float = 1e-3
    fault_plan: object = None
    generation: int = 0
    sacrificial: bool = False
    shared_plans: bool = True
    observe: bool = False
    defense_policy: object = None
    attackers: "dict | None" = None

    def _crash_check(self, window: int) -> None:
        """The ``fleet.shard`` fault point, hit once per window.

        ``attempt`` carries the shard's recovery generation, so a
        ``times: 1`` kill fault takes down the first run and lets the
        reassign-and-replay pass survive — deterministically, in any
        process.
        """
        resilience.check("fleet.shard", key=self.shard_id,
                         attempt=self.generation)

    def run(self) -> ShardReport:
        start = time.perf_counter()
        # The recovery generation biases implicitly-counted fault
        # points (admission, policy decisions): a replacement worker
        # replays the identical schedule, so without the bias a
        # ``times``-bounded fault an earlier generation absorbed would
        # re-fire forever and crash-loop the supervisor.
        with resilience.session(self.fault_plan,
                                sacrificial=self.sacrificial,
                                attempt_bias=self.generation):
            plane = FleetControlPlane(
                self.artifact, seed=self.seed,
                capacity=self.capacity, watermark=self.watermark,
                housekeeping_interval=self.housekeeping_interval,
                shared_plans=self.shared_plans,
                defense_policy=self.defense_policy,
                fault_generation=self.generation)
            try:
                # The defense plane decides on detector alerts, so a
                # policy-armed shard always runs under an observability
                # session (its alert stream is per-tenant deterministic
                # regardless of shard count).
                observe = self.observe or self.defense_policy is not None
                obs_scope = observability.session() if observe \
                    else nullcontext(None)
                with obs_scope as obs_runtime:
                    generator = LoadGenerator(
                        plane, list(self.specs), windows=self.windows,
                        slices_per_window=self.slices_per_window,
                        concurrency=self.concurrency,
                        ticks_per_round=self.ticks_per_round,
                        slice_s=self.slice_s,
                        attackers=self.attackers,
                        window_hook=self._crash_check)
                    replay = generator.run()
                    slo_values = (obs_runtime.slo.export_values()
                                  if obs_runtime is not None else {})
                status = plane.status()
                segments = plane.provisioner.plan_segments()
            finally:
                plane.close()
        return ShardReport(
            shard_id=self.shard_id, generation=self.generation,
            pid=os.getpid(), replay=replay, status=status,
            slo_values=slo_values, plan_segments=segments,
            elapsed_s=time.perf_counter() - start)


def _shard_worker(conn, shard: FleetShard) -> None:
    """Worker-process entry: run the shard, ship the report, die.

    An injected crash (``raise`` mode reaching here, or a ``kill``
    mode that ``os._exit``'s before we ever return) must look like a
    crash to the supervisor, never like a result; infrastructure
    errors are reported distinctly so they fail loudly instead of
    being silently retried as crashes.
    """
    try:
        report = shard.run()
    except InjectedFault as exc:
        conn.send(("crashed", str(exc)))
        conn.close()
        os._exit(KILL_EXIT_STATUS)
    except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        finally:
            os._exit(1)
    conn.send(("report", report))
    conn.close()


def sweep_worker_segments(pid: int) -> list[str]:
    """Best-effort unlink of a dead worker's shared-memory segments.

    A ``kill``-crashed worker exits without unlinking its plan
    segments — the torn state the fault models. Segment names embed
    the creating pid, so the supervisor can reclaim them directly from
    ``/dev/shm`` (no-op on hosts without one). Forked workers share
    the parent's resource-tracker process, so each swept name is also
    unregistered there — otherwise the tracker would warn about (and
    re-clean) the dead worker's registrations at shutdown."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    from multiprocessing import resource_tracker
    swept = []
    for path in sorted(shm_dir.glob(f"{SEGMENT_PREFIX}-{pid}-*")):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced another cleaner
            continue
        try:
            resource_tracker.unregister(f"/{path.name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass
        swept.append(path.name)
    return swept


@dataclass
class ShardedReplayReport:
    """The merged, digest-bearing result of one sharded fleet run."""

    shards: int
    mode: str
    windows: int
    slices_per_window: int
    tenants: list
    served_windows: int
    rejected_windows: int
    served_slices: int
    elapsed_s: float
    read_digests: dict
    budget_digest: str
    budgets: dict = field(default_factory=dict)
    rejections: dict = field(default_factory=dict)
    dropped_tenants: list = field(default_factory=list)
    queued_tenants: list = field(default_factory=list)
    crashes: list = field(default_factory=list)
    slo: dict = field(default_factory=dict)
    shard_reports: list = field(default_factory=list)

    @property
    def slices_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.served_slices / self.elapsed_s

    def fingerprint(self) -> dict:
        """Same shape as :meth:`ReplayReport.fingerprint`, so sharded
        and single-plane replays compare directly."""
        return {"read_digests": dict(self.read_digests),
                "budget_digest": self.budget_digest}

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "mode": self.mode,
            "windows": self.windows,
            "slices_per_window": self.slices_per_window,
            "tenants": list(self.tenants),
            "served_windows": self.served_windows,
            "rejected_windows": self.rejected_windows,
            "served_slices": self.served_slices,
            "elapsed_s": self.elapsed_s,
            "slices_per_second": self.slices_per_second,
            "read_digests": dict(self.read_digests),
            "budget_digest": self.budget_digest,
            "budgets": self.budgets,
            "rejections": self.rejections,
            "dropped_tenants": list(self.dropped_tenants),
            "queued_tenants": list(self.queued_tenants),
            "crashes": list(self.crashes),
            "slo": self.slo,
        }


class ShardedFleet:
    """Supervises N shard workers behind one consistent-hash router.

    Parameters
    ----------
    artifact / seed:
        The fleet calibration and root entropy — shared verbatim by
        every shard, which is what makes per-tenant streams
        shard-independent.
    shards:
        Worker count; the router places tenants over shard ids
        ``0..shards-1``.
    max_tenants_per_shard:
        Optional per-shard admission cap. Overflow tenants are either
        ``queue``\\ d (served in a follow-up wave on their own shard —
        delayed, never lost) or ``drop``\\ ped (not served, loudly
        counted) per ``overflow_policy``. Either way the counts land in
        the report so capacity truncation is never silent.
    fault_plan:
        Armed inside every shard (workers are *sacrificial*, so
        ``kill`` faults really kill). The supervisor's own process
        never arms it — a chaos plan cannot take down the supervisor.
    max_generations:
        Recovery budget: how many reassign-and-replay waves may follow
        injected crashes before the run fails for real.
    shared_plans:
        Back every shard's tenant plans with shared-memory segments
        (the zero-copy production shape). A ``kill``-crashed worker
        dies without unlinking its segments — exactly the torn state
        the fault models — so after a crash the supervisor best-effort
        sweeps the dead worker's segments from ``/dev/shm``.
    """

    def __init__(self, artifact, shards: int = 1, seed: int = 0,
                 replicas: int = DEFAULT_REPLICAS,
                 capacity: int = DEFAULT_CAPACITY,
                 watermark: int = DEFAULT_WATERMARK,
                 housekeeping_interval: int = 1,
                 fault_plan=None,
                 max_tenants_per_shard: "int | None" = None,
                 overflow_policy: str = "queue",
                 shard_timeout_s: float = 600.0,
                 max_generations: int = 3,
                 shared_plans: bool = True,
                 defense_policy=None) -> None:
        if max_tenants_per_shard is not None and max_tenants_per_shard < 1:
            raise ValueError(f"max_tenants_per_shard must be >= 1, got "
                             f"{max_tenants_per_shard}")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(f"overflow_policy must be one of "
                             f"{OVERFLOW_POLICIES}, got {overflow_policy!r}")
        self.artifact = artifact
        self.seed = int(seed)
        self.router = FleetRouter.for_shard_count(shards, replicas=replicas)
        self.capacity = capacity
        self.watermark = watermark
        self.housekeeping_interval = housekeeping_interval
        self.fault_plan = fault_plan
        self.max_tenants_per_shard = max_tenants_per_shard
        self.overflow_policy = overflow_policy
        self.shard_timeout_s = shard_timeout_s
        self.max_generations = max_generations
        self.shared_plans = shared_plans
        self.defense_policy = defense_policy

    @property
    def shard_count(self) -> int:
        return self.router.shard_count

    # -- one run -------------------------------------------------------

    def _build_shard(self, shard_id: int, specs: list, windows: int,
                     slices_per_window: int, generation: int,
                     sacrificial: bool, observe: bool,
                     concurrency, ticks_per_round: int,
                     slice_s: float,
                     attackers: "dict | None" = None) -> FleetShard:
        shard_attackers = None
        if attackers:
            shard_attackers = {
                spec.tenant_id: attackers[spec.tenant_id]
                for spec in specs if spec.tenant_id in attackers}
        return FleetShard(
            shard_id=shard_id, artifact=self.artifact, seed=self.seed,
            specs=specs, windows=windows,
            slices_per_window=slices_per_window,
            capacity=self.capacity, watermark=self.watermark,
            housekeeping_interval=self.housekeeping_interval,
            concurrency=concurrency, ticks_per_round=ticks_per_round,
            slice_s=slice_s, fault_plan=self.fault_plan,
            generation=generation, sacrificial=sacrificial,
            shared_plans=self.shared_plans, observe=observe,
            defense_policy=self.defense_policy,
            attackers=shard_attackers)

    def _run_batch(self, shards: "list[FleetShard]", mode: str
                   ) -> "dict[int, ShardReport | None]":
        """Run one wave of shards; ``None`` marks an injected crash."""
        if mode == "inline":
            results: "dict[int, ShardReport | None]" = {}
            for shard in shards:
                try:
                    results[shard.shard_id] = shard.run()
                except InjectedFault:
                    results[shard.shard_id] = None
            return results
        procs = []
        for shard in shards:
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            proc = multiprocessing.Process(
                target=_shard_worker, args=(child_conn, shard),
                daemon=True, name=f"fleet-shard-{shard.shard_id}")
            proc.start()
            child_conn.close()
            procs.append((shard, proc, parent_conn))
        results = {}
        for shard, proc, conn in procs:
            message = None
            try:
                if conn.poll(self.shard_timeout_s):
                    message = conn.recv()
            except (EOFError, OSError):
                message = None
            finally:
                conn.close()
            proc.join(self.shard_timeout_s)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
            if message is not None and message[0] == "report":
                results[shard.shard_id] = message[1]
            elif message is not None and message[0] == "error":
                raise ShardCrashed(
                    f"shard {shard.shard_id} failed: {message[1]}")
            else:
                results[shard.shard_id] = None
                if proc.pid is not None:
                    sweep_worker_segments(proc.pid)
        return results

    def run(self, specs: "list[TenantSpec]", windows: int = 4,
            slices_per_window: int = 3000, mode: str = "process",
            concurrency: "int | None" = None, ticks_per_round: int = 1,
            slice_s: float = 1e-3,
            observe: bool = False,
            attackers: "dict | None" = None) -> ShardedReplayReport:
        """Route, replay, recover, merge.

        ``mode="process"`` runs every shard in a forked sacrificial
        worker (the production shape); ``mode="inline"`` runs them
        sequentially in this process (kill faults demote to raises) —
        same digests, handy for tests and 1-shard baselines.
        """
        if mode not in ("process", "inline"):
            raise ValueError(f"mode must be 'process' or 'inline', "
                             f"got {mode!r}")
        spec_by_id: dict[str, TenantSpec] = {}
        for spec in specs:
            if spec.tenant_id in spec_by_id:
                raise ValueError(f"duplicate tenant {spec.tenant_id!r}")
            spec_by_id[spec.tenant_id] = spec
        if attackers:
            unknown = sorted(set(attackers) - set(spec_by_id))
            if unknown:
                raise ValueError(f"attacker profiles target unknown "
                                 f"tenant(s): {unknown}")

        start = time.perf_counter()
        assignments = self.router.assignments(spec_by_id)
        dropped: list[str] = []
        queued: "dict[int, list[str]]" = {}
        cap = self.max_tenants_per_shard
        if cap is not None:
            for shard_id, tenant_ids in assignments.items():
                overflow = tenant_ids[cap:]
                if not overflow:
                    continue
                assignments[shard_id] = tenant_ids[:cap]
                if self.overflow_policy == "drop":
                    dropped.extend(overflow)
                else:
                    queued[shard_id] = overflow

        waves: "list[dict[int, list[str]]]" = [
            {sid: tids for sid, tids in assignments.items() if tids}]
        if queued:
            waves.append(dict(queued))

        router = self.router
        generation = 0
        crash_log: list[dict] = []
        reports: list[ShardReport] = []
        sacrificial = mode == "process"
        for wave in waves:
            pending = wave
            while pending:
                if generation > self.max_generations:
                    raise ShardCrashed(
                        f"shards kept crashing past {self.max_generations} "
                        f"recovery generation(s); giving up on tenants "
                        f"{sorted(t for ts in pending.values() for t in ts)}")
                batch = [
                    self._build_shard(
                        shard_id, [spec_by_id[t] for t in tenant_ids],
                        windows, slices_per_window, generation,
                        sacrificial, observe, concurrency,
                        ticks_per_round, slice_s, attackers=attackers)
                    for shard_id, tenant_ids in sorted(pending.items())]
                results = self._run_batch(batch, mode)
                crashed = sorted(sid for sid, rep in results.items()
                                 if rep is None)
                reports.extend(rep for _, rep in sorted(results.items())
                               if rep is not None)
                if not crashed:
                    break
                lost = sorted(t for sid in crashed for t in pending[sid])
                survivors = [s for s in router.shard_ids
                             if s not in crashed]
                if survivors:
                    for sid in crashed:
                        router = router.without_shard(sid)
                reassigned = {
                    sid: tids for sid, tids
                    in router.assignments(lost).items() if tids}
                crash_log.append({
                    "generation": generation,
                    "crashed_shards": crashed,
                    "lost_tenants": lost,
                    "reassigned_to": sorted(reassigned),
                })
                pending = reassigned
                generation += 1
        elapsed = time.perf_counter() - start
        return self._merge(reports, mode=mode, windows=windows,
                           slices_per_window=slices_per_window,
                           elapsed_s=elapsed, dropped=sorted(dropped),
                           queued=sorted(t for ts in queued.values()
                                         for t in ts),
                           crashes=crash_log)

    # -- merging -------------------------------------------------------

    def _merge(self, reports: "list[ShardReport]", mode: str,
               windows: int, slices_per_window: int, elapsed_s: float,
               dropped: list, queued: list,
               crashes: list) -> ShardedReplayReport:
        read_digests: dict[str, str] = {}
        budgets: dict = {}
        rejections: dict = {}
        served_windows = rejected_windows = served_slices = 0
        for report in sorted(reports, key=lambda r: (r.shard_id,
                                                     r.generation)):
            replay = report.replay
            read_digests.update(replay.read_digests)
            budgets.update(replay.budgets)
            rejections.update(replay.rejections)
            served_windows += replay.served_windows
            rejected_windows += replay.rejected_windows
            served_slices += replay.served_slices
        read_digests = dict(sorted(read_digests.items()))
        budgets = dict(sorted(budgets.items()))
        budget_digest = hashlib.sha256(
            json.dumps(budgets, sort_keys=True).encode("utf-8")).hexdigest()
        slo = merge_values([r.slo_values for r in reports])
        return ShardedReplayReport(
            shards=self.shard_count, mode=mode, windows=windows,
            slices_per_window=slices_per_window,
            tenants=sorted(read_digests),
            served_windows=served_windows,
            rejected_windows=rejected_windows,
            served_slices=served_slices, elapsed_s=elapsed_s,
            read_digests=read_digests, budget_digest=budget_digest,
            budgets=budgets, rejections=rejections,
            dropped_tenants=dropped, queued_tenants=queued,
            crashes=crashes, slo=slo, shard_reports=reports)

    def status(self, report: ShardedReplayReport) -> dict:
        """A ``fleet status``-compatible snapshot of one sharded run.

        Top-level keys mirror :meth:`FleetControlPlane.status` so the
        ``fleet status`` renderer and its health gate work unchanged;
        the extra ``sharding`` block carries the per-shard breakdown.
        """
        shard_reports = report.shard_reports
        if not shard_reports:
            raise ValueError("cannot build a status from zero shards")
        first = shard_reports[0].status
        tenants: dict = {}
        reasons: list[str] = []
        ticks = 0
        for shard_report in shard_reports:
            status = shard_report.status
            tenants.update(status["tenants"])
            ticks += status["ticks"]
            for reason in status["health"]["reasons"]:
                reasons.append(f"shard {shard_report.shard_id}: {reason}")
        # Recovered crashes are *recorded* (sharding.crashes) but not
        # health-failing: every lost tenant was reassigned and replayed
        # to the same digests. Dropped tenants were never served — that
        # fails the gate.
        if report.dropped_tenants:
            reasons.append(f"{len(report.dropped_tenants)} tenant(s) "
                           f"dropped at shard capacity: "
                           f"{report.dropped_tenants}")
        per_shard = [{
            "shard_id": r.shard_id,
            "generation": r.generation,
            "pid": r.pid,
            "tenants": r.tenant_ids,
            "served_windows": r.replay.served_windows,
            "served_slices": r.replay.served_slices,
            "elapsed_s": r.elapsed_s,
            "plan_segments": len(r.plan_segments),
        } for r in sorted(shard_reports,
                          key=lambda r: (r.shard_id, r.generation))]
        payload = {
            "processor_model": first["processor_model"],
            "mechanism": first["mechanism"],
            "epsilon": first["epsilon"],
            "monitored_events": first["monitored_events"],
            "seed": self.seed,
            "ticks": ticks,
            "tenants": dict(sorted(tenants.items())),
            "admitted_windows": report.served_windows,
            "rejected_windows": report.rejected_windows,
            "budgets": report.budgets,
            "health": {"healthy": not reasons, "reasons": reasons},
            "sharding": {
                "shards": self.shard_count,
                "mode": report.mode,
                "router": self.router.describe(),
                "housekeeping_interval": self.housekeeping_interval,
                "per_shard": per_shard,
                "crashes": report.crashes,
                "dropped_tenants": report.dropped_tenants,
                "queued_tenants": report.queued_tenants,
                "slo": report.slo,
            },
        }
        # Merge the per-shard defense snapshots: tenant states union
        # (tenants never span shards), state counts and fault counters
        # sum, the profile is fleet-wide so any shard's copy serves.
        defense_blocks = [s.status["defense"] for s in shard_reports
                          if "defense" in s.status]
        if defense_blocks:
            states = {state: 0 for state in defense_blocks[0]["states"]}
            defense_tenants: dict = {}
            faults = 0
            for block in defense_blocks:
                for state, count in block["states"].items():
                    states[state] = states.get(state, 0) + count
                defense_tenants.update(block["tenants"])
                faults += block["policy_faults"]
            payload["defense"] = {
                "profile": defense_blocks[0]["profile"],
                "states": states,
                "policy_faults": faults,
                "tenants": dict(sorted(defense_tenants.items())),
            }
        return payload
