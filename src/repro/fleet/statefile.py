"""Crash-safe fleet state files.

``fleet status`` trusts whatever ``fleet-state/fleet-status.json``
holds; with shard workers (and their supervisor) all writing state, a
writer dying mid-write must never leave a truncated or interleaved
file for the reader to parse. The writer here is atomic in the
POSIX sense:

- the payload goes to a **uniquely named** temp file in the *same
  directory* (``mkstemp`` — two concurrent writers can never clobber
  each other's temp, unlike a fixed ``.tmp`` name);
- the temp file is flushed and ``fsync``'d before rename, so the
  rename can never promote a page-cache-only file that a host crash
  would truncate;
- ``os.replace`` swaps it in atomically (readers see the old complete
  file or the new complete file, nothing in between);
- the directory is fsync'd afterwards so the rename itself is durable.

A writer killed at any point leaves at worst an orphaned
``.fleet-*.tmp`` alongside a still-valid status file;
:func:`sweep_stale_tmp` reclaims those on the next write.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: Prefix of every temp file the atomic writer creates.
TMP_PREFIX = ".fleet-"
TMP_SUFFIX = ".tmp"


def sweep_stale_tmp(directory: "Path | str") -> int:
    """Remove orphaned temp files a crashed writer left; returns count."""
    directory = Path(directory)
    removed = 0
    for stale in directory.glob(f"{TMP_PREFIX}*{TMP_SUFFIX}"):
        try:
            stale.unlink()
            removed += 1
        except OSError:  # pragma: no cover - racing writer owns it
            continue
    return removed


def write_json_atomic(path: "Path | str", payload: dict) -> Path:
    """Atomically publish ``payload`` as JSON at ``path``.

    Crash-safe per the module docstring; returns the final path.
    """
    path = Path(path)
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    sweep_stale_tmp(directory)
    text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    fd, tmp_name = tempfile.mkstemp(prefix=TMP_PREFIX, suffix=TMP_SUFFIX,
                                    dir=directory)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def read_json(path: "Path | str") -> dict:
    """Load a state file written by :func:`write_json_atomic`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
