"""The fleet control plane: N obfuscated guests behind one scheduler.

This is the paper's deployment story at fleet scale: one host runs many
SEV guests, each with its own Event Obfuscator, and a single control
plane provisions their noise, polices their privacy quotas, and keeps
their daemons alive. The pieces:

- an :class:`~repro.fleet.registry.ArtifactRegistry` artifact fixes the
  calibration (components, reference event, ε, Δ, B_u) for every
  tenant — one offline stage, N online deployments;
- the :class:`~repro.fleet.provisioner.NoiseProvisioner` precomputes
  each tenant's value-independent injection plan in batches;
- the :class:`~repro.fleet.admission.AdmissionController` gates each
  window on the tenant's ε-quota and noise availability (fail closed);
- the scheduler (:meth:`FleetControlPlane.tick`) multiplexes the
  per-tenant housekeeping a real deployment spreads across threads:
  watermark refills, daemon heartbeat/watchdog polls, and the host's
  periodic HPC reads of every guest vCPU.

Serving happens at the observable boundary: the hypervisor only ever
sees the monitored events' counts, so the fleet serves noised *event*
reads — ``event_matrix + plan @ comp_event`` — instead of re-deriving
full signal matrices per tenant. ``comp_event`` (the gadget components
projected onto the monitored events) is computed once per fleet; a
served slice costs one small matmul row and an add.

Determinism: tenant RNG streams depend only on (fleet entropy, tenant
id); scheduler iteration is in sorted tenant order; guests are launched
in admission order. Replaying the same specs under the same seed
reproduces every tenant's noised reads and ε-ledger bit-for-bit —
including under retry-absorbed ``fleet.provision`` faults, because the
fault check precedes every stream draw.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.artifacts import DeploymentArtifact
from repro.core.obfuscator.daemon import UserspaceDaemon
from repro.core.obfuscator.dp import LaplaceMechanism
from repro.core.obfuscator.injector import NoiseInjector
from repro.core.obfuscator.noise import NoiseCalculator
from repro.cpu.events import processor_catalog
from repro.fleet.admission import AdmissionController, AdmissionDecision
from repro.fleet.ledger import FleetLedger
from repro.fleet.provisioner import (
    DEFAULT_CAPACITY,
    DEFAULT_WATERMARK,
    NoiseProvisioner,
)
from repro.fleet.policy import DefensePolicyEngine
from repro.fleet.registry import check_compatible
from repro.observability import runtime as observability
from repro.resilience.watchdog import DaemonWatchdog
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream
from repro.vm.hypervisor import Hypervisor


@dataclass(frozen=True)
class TenantSpec:
    """Everything the control plane needs to admit one tenant."""

    tenant_id: str
    workload: str = "website"
    secret: object = None
    epsilon_cap: float = math.inf
    accountant_state: "dict | None" = None


@dataclass
class TenantRuntime:
    """The per-tenant state the control plane schedules."""

    spec: TenantSpec
    guest_name: str
    daemon: UserspaceDaemon
    watchdog: DaemonWatchdog
    windows_served: int = 0
    slices_served: int = 0
    hpc_reads: int = 0
    _out: "np.ndarray | None" = field(default=None, repr=False)

    def out_buffer(self, slices: int, events: int) -> np.ndarray:
        """The tenant's reusable serving buffer, grown on demand."""
        if self._out is None or self._out.shape[0] < slices \
                or self._out.shape[1] != events:
            self._out = np.empty((slices, events))
        return self._out[:slices]


class FleetControlPlane:
    """Serves N tenants' noised HPC reads from one artifact.

    Parameters
    ----------
    artifact:
        The deployment artifact calibrating every tenant (Laplace
        mechanism required — d* needs live per-tenant values, which
        defeats batched provisioning).
    seed:
        Root entropy of the fleet RNG tree.
    monitored_events:
        Host-visible HPC events served to readers; defaults to the
        artifact's top four vulnerable events (the paper's count).
    housekeeping_interval:
        Ticks between one tenant's housekeeping visits (watchdog poll,
        host HPC reads, watermark check). ``1`` — the default — visits
        every tenant every tick, byte-for-byte the old full-sweep
        schedule; larger intervals make :meth:`tick` event-driven: a
        min-heap of ``(due_tick, tenant)`` is popped instead of
        sweeping the whole fleet, so a tick costs O(due log N) rather
        than O(N). Serving is unaffected either way — noised reads and
        ledgers are bit-identical across intervals.
    shared_plans:
        Back tenant noise plans with ``multiprocessing.shared_memory``
        segments (see :class:`~repro.fleet.provisioner
        .SharedPlanSegment`); shard workers enable this so the
        provisioner→serving handoff is zero-copy and parent-mappable.
    defense_policy:
        Arm the adaptive defense plane: an
        :class:`~repro.fleet.policy.EscalationProfile` (or a
        registered profile name). ``None`` — the default — leaves the
        fleet on the static policy, byte-identical to earlier
        releases. With a policy armed, detector alerts drive per-tenant
        ε reallocation, Laplace→d* plan escalation, and fail-closed
        quarantine (see :mod:`repro.fleet.policy`).
    fault_generation:
        A replacement shard worker's recovery generation; biases the
        implicit attempt counts of the plane's fault points
        (provisioning, policy decisions) past budgets an earlier
        generation consumed, so ``times``-bounded chaos faults do not
        re-fire on every replacement.
    """

    def __init__(self, artifact: DeploymentArtifact, seed: int = 0,
                 monitored_events: "list[str] | None" = None,
                 capacity: int = DEFAULT_CAPACITY,
                 watermark: int = DEFAULT_WATERMARK,
                 refill_retries: int = 4,
                 stale_polls: int = 2,
                 hypervisor: "Hypervisor | None" = None,
                 housekeeping_interval: int = 1,
                 shared_plans: bool = False,
                 defense_policy=None,
                 fault_generation: int = 0) -> None:
        if artifact.mechanism != "laplace":
            raise ValueError(
                "the fleet control plane precomputes value-independent "
                "injection plans, which only the Laplace mechanism "
                f"permits; artifact uses {artifact.mechanism!r}")
        check_compatible(artifact, artifact.processor_model)
        self.artifact = artifact
        self.seed = int(seed)
        self.catalog = processor_catalog(artifact.processor_model)
        events = (list(monitored_events) if monitored_events is not None
                  else list(artifact.vulnerable_events[:4]))
        if not events:
            raise ValueError("need at least one monitored event")
        self.monitored_events = events
        self._event_weights = np.stack(
            [self.catalog.weights[self.catalog.index_of(name)]
             for name in events]).T  # (NUM_SIGNALS, E)
        reference_weights = self.catalog.weights[
            self.catalog.index_of(artifact.reference_event)]
        scale = artifact.sensitivity / artifact.epsilon
        if housekeeping_interval < 1:
            raise ValueError(f"housekeeping_interval must be >= 1, "
                             f"got {housekeeping_interval}")
        self.housekeeping_interval = int(housekeeping_interval)
        self.provisioner = NoiseProvisioner(
            entropy=self.seed, scale=scale,
            components=artifact.segment_signals,
            reference_weights=reference_weights,
            clip_bound=artifact.clip_bound,
            capacity=capacity, watermark=watermark,
            refill_retries=refill_retries,
            shared_plans=shared_plans,
            fault_attempt_bias=fault_generation)
        # The serving projection: per-repetition monitored-event counts
        # of each gadget component, (K, E).
        self._comp_event = self.provisioner.components @ self._event_weights
        self.ledger = FleetLedger()
        self.policy = None
        if defense_policy is not None:
            self.policy = DefensePolicyEngine(
                defense_policy, ledger=self.ledger,
                provisioner=self.provisioner, seed=self.seed,
                base_epsilon=artifact.epsilon,
                fault_attempt_bias=fault_generation)
        self.admission = AdmissionController(self.ledger, self.provisioner,
                                             policy=self.policy)
        self.hypervisor = hypervisor if hypervisor is not None \
            else Hypervisor(processor_model=artifact.processor_model,
                            rng=derive_stream(self.seed, "hypervisor"))
        self.stale_polls = stale_polls
        self.tenants: dict[str, TenantRuntime] = {}
        self.ticks = 0
        self._guest_tenant: dict[str, str] = {}
        # Event-driven scheduling: (due_tick, tenant_id) min-heap. Ties
        # resolve by tenant id (tuple order), and the due set is sorted
        # before processing, so the visit order within a tick matches
        # the old sorted full sweep exactly.
        self._due: list[tuple[int, str]] = []
        self.hypervisor.install_read_tap(self._on_host_read)

    @property
    def event_weights(self) -> np.ndarray:
        """``(NUM_SIGNALS, E)`` projection onto the monitored events."""
        return self._event_weights

    # -- tenant lifecycle ---------------------------------------------

    def admit_tenant(self, spec: TenantSpec) -> TenantRuntime:
        """Launch a guest for ``spec`` and wire its obfuscator stack.

        The tenant gets a stock userspace daemon whose calculator pulls
        from the fleet provisioner (the ``supplier`` hook), so the
        single-VM fail-closed semantics are preserved verbatim; the
        batched serving path shares the same buffer cursor.
        """
        if spec.tenant_id in self.tenants:
            raise ValueError(f"tenant {spec.tenant_id!r} already admitted")
        artifact = self.artifact
        self.ledger.register(
            spec.tenant_id, per_slice_epsilon=artifact.epsilon,
            epsilon_cap=spec.epsilon_cap,
            state=spec.accountant_state)
        self.provisioner.create_buffer(spec.tenant_id)
        guest = self.hypervisor.launch_guest(
            f"tenant-{spec.tenant_id}", num_vcpus=1)
        guest.spawn_process(f"workload-{spec.workload}", vcpu_index=0)
        for slot, event in enumerate(self.monitored_events):
            self.hypervisor.program_vcpu_hpc(guest.name, 0, slot, event)
        mechanism = LaplaceMechanism(artifact.epsilon, artifact.sensitivity)
        injector = NoiseInjector(
            artifact.segment_signals,
            self.catalog.weights[
                self.catalog.index_of(artifact.reference_event)],
            clip_bound=artifact.clip_bound,
            rng=derive_stream(self.seed, "injector", spec.tenant_id))
        calculator = NoiseCalculator(
            mechanism.sensitivity / mechanism.epsilon,
            supplier=self.provisioner.supplier(spec.tenant_id))
        daemon = UserspaceDaemon(mechanism, injector,
                                 rng=derive_stream(self.seed, "daemon",
                                                   spec.tenant_id),
                                 calculator=calculator)
        runtime = TenantRuntime(
            spec=spec, guest_name=guest.name, daemon=daemon,
            watchdog=DaemonWatchdog(daemon, stale_polls=self.stale_polls))
        self.tenants[spec.tenant_id] = runtime
        self._guest_tenant[guest.name] = spec.tenant_id
        if self.policy is not None:
            self.policy.register_tenant(spec.tenant_id)
        heapq.heappush(self._due, (self.ticks + 1, spec.tenant_id))
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fleet.tenants_admitted").inc()
        return runtime

    def tenant(self, tenant_id: str) -> TenantRuntime:
        try:
            return self.tenants[tenant_id]
        except KeyError as exc:
            raise KeyError(f"no such tenant {tenant_id!r}") from exc

    # -- observability -------------------------------------------------

    def _on_host_read(self, guest_name: str, vcpu_index: int, slot: int,
                      at: "float | None") -> None:
        """Hypervisor read tap: feed the attack-signal extractor.

        Resolves the observability plane at call time so a plane
        configured after the fleet was built still sees every read;
        reads of guests the fleet does not own are ignored.
        """
        obs = observability.active()
        if not obs.enabled:
            return
        tenant_id = self._guest_tenant.get(guest_name)
        if tenant_id is None:
            return
        if at is None:
            at = float(self.ticks)
        obs.ingest_read(tenant_id, slot, at)

    # -- serving -------------------------------------------------------

    def serve_window(self, tenant_id: str, event_matrix: np.ndarray
                     ) -> tuple[AdmissionDecision, "np.ndarray | None"]:
        """SLO-timed wrapper around :meth:`_serve_window`.

        Only admitted windows count toward the latency objective — a
        rejection is an admission outcome, not a serving latency.
        """
        obs = observability.active()
        if not obs.enabled:
            return self._serve_window(tenant_id, event_matrix)
        start = time.perf_counter()
        decision, out = self._serve_window(tenant_id, event_matrix)
        if decision:
            obs.slo.observe("fleet.serve_window",
                            time.perf_counter() - start)
        return decision, out

    def _serve_window(self, tenant_id: str, event_matrix: np.ndarray
                      ) -> tuple[AdmissionDecision, "np.ndarray | None"]:
        """Serve one window of noised monitored-event reads.

        ``event_matrix`` is the guest's raw ``(T, E)`` counts for the
        monitored events; the return value adds the tenant's
        precomputed injection plan projected onto those events. The
        returned array is the tenant's reusable serving buffer — valid
        until this tenant's next window; copy to retain.

        A rejected window returns ``(decision, None)`` having consumed
        no noise and no budget.
        """
        runtime = self.tenant(tenant_id)
        event_matrix = np.asarray(event_matrix, dtype=np.float64)
        if event_matrix.ndim != 2 \
                or event_matrix.shape[1] != len(self.monitored_events):
            raise ValueError(
                f"event_matrix must be (T, {len(self.monitored_events)})")
        slices = len(event_matrix)
        decision = self.admission.admit(tenant_id, slices)
        if not decision:
            return decision, None
        plan, _ = self.provisioner.take(tenant_id, slices)
        out = runtime.out_buffer(slices, len(self.monitored_events))
        np.matmul(plan, self._comp_event, out=out)
        np.add(event_matrix, out, out=out)
        self.ledger.account(tenant_id, slices)
        runtime.daemon.heartbeat += 1
        runtime.windows_served += 1
        runtime.slices_served += slices
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fleet.windows_served").inc()
            registry.counter("fleet.slices_served").inc(slices)
        return decision, out

    # -- the scheduler tick -------------------------------------------

    def tick(self) -> dict:
        """SLO-timed wrapper around :meth:`_tick`."""
        obs = observability.active()
        if not obs.enabled:
            return self._tick()
        start = time.perf_counter()
        result = self._tick()
        obs.slo.observe("fleet.tick", time.perf_counter() - start)
        return result

    def _tick(self) -> dict:
        """One control-loop round over the tenants *due* this tick.

        Multiplexes the housekeeping a deployment runs continuously:
        watermark-driven provisioning, daemon watchdog polls, and one
        host-side HPC read per guest (the kernel-module/hypervisor
        read path the side channel rides on). Housekeeping reads carry
        tick-granular logical timestamps (slot reads spread at 1/8-tick
        offsets) so the signal extractor sees them on a coarser
        timebase than any polling burst — they reset runs, never
        extend them.

        Due tenants come off the ``(due_tick, tenant)`` min-heap and go
        back on at ``tick + housekeeping_interval``; with the default
        interval of 1 every tenant is due every tick and the schedule
        is identical to the old sorted full sweep. The heap is what
        makes a six-figure-tenant tick affordable: cost scales with the
        due set, never the fleet.
        """
        self.ticks += 1
        due: list[str] = []
        while self._due and self._due[0][0] <= self.ticks:
            due.append(heapq.heappop(self._due)[1])
        due.sort()
        with telemetry.tracer().span("fleet.tick", tick=self.ticks,
                                     due=len(due)):
            provisioned = self.provisioner.top_up(only=due)
            restarts = 0
            for tenant_id in due:
                runtime = self.tenants[tenant_id]
                if not runtime.watchdog.poll():
                    restarts += 1
                for slot in range(len(self.monitored_events)):
                    self.hypervisor.read_vcpu_hpc(
                        runtime.guest_name, 0, slot,
                        at=self.ticks + slot * 0.125)
                runtime.hpc_reads += len(self.monitored_events)
                heapq.heappush(
                    self._due,
                    (self.ticks + self.housekeeping_interval, tenant_id))
            # The defense plane decides after the tick's reads landed:
            # alerts raised up to and including this tick are consumed
            # in one deterministic batch, per tenant in sorted order.
            if self.policy is not None:
                self.policy.on_tick(self.ticks)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fleet.ticks").inc()
        return {"tick": self.ticks, "due_tenants": len(due),
                "provisioned_slices": provisioned,
                "daemon_restarts": restarts}

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release provisioner buffers (and any shared-memory
        segments backing them). The plane is unusable afterwards."""
        self.provisioner.close()

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        """Actionable fleet health: healthy flag plus why-not reasons.

        Degraded when any tenant's noise provisioning has stalled
        (fail-closed slices withheld — the fleet equivalent of a
        quarantined shard) or its daemon watchdog had to restart a
        stalled heartbeat. Budget exhaustion is *not* unhealthy: a
        tenant running out of ε-quota is admission control doing its
        job.
        """
        reasons: list[str] = []
        for tenant_id in sorted(self.tenants):
            runtime = self.tenants[tenant_id]
            stalls = self.provisioner.buffer(tenant_id).stalls
            if stalls:
                reasons.append(
                    f"tenant {tenant_id}: {stalls} provisioning "
                    f"stall(s) — noise refills failing, slices "
                    f"withheld fail-closed")
            restarts = runtime.watchdog.restarts
            if restarts:
                reasons.append(
                    f"tenant {tenant_id}: daemon heartbeat stalled, "
                    f"watchdog restarted it {restarts} time(s)")
        # Alert-driven escalation is the defense plane *working*; only
        # a faulted decision path (fail-closed quarantine forced by the
        # engine itself crashing) degrades health.
        if self.policy is not None:
            reasons.extend(self.policy.health_reasons())
        return {"healthy": not reasons, "reasons": reasons}

    def status(self) -> dict:
        """JSON-ready snapshot of the whole fleet."""
        buffers = {}
        for tenant_id in sorted(self.tenants):
            runtime = self.tenants[tenant_id]
            buffer = self.provisioner.buffer(tenant_id)
            buffers[tenant_id] = {
                "workload": runtime.spec.workload,
                "guest": runtime.guest_name,
                "buffer_available": buffer.available,
                "buffer_capacity": buffer.capacity,
                "watermark": buffer.watermark,
                "refills": buffer.refills,
                "provision_stalls": buffer.stalls,
                "windows_served": runtime.windows_served,
                "slices_served": runtime.slices_served,
                "daemon_heartbeat": runtime.daemon.heartbeat,
                "daemon_restarts": runtime.watchdog.restarts,
                "hpc_reads": runtime.hpc_reads,
            }
        payload = {
            "processor_model": self.artifact.processor_model,
            "mechanism": self.artifact.mechanism,
            "epsilon": self.artifact.epsilon,
            "monitored_events": list(self.monitored_events),
            "seed": self.seed,
            "ticks": self.ticks,
            "tenants": buffers,
            "admitted_windows": self.admission.admitted_windows,
            "rejected_windows": self.admission.rejected_windows,
            "budgets": self.ledger.snapshot(),
            "health": self.health(),
        }
        if self.policy is not None:
            payload["defense"] = self.policy.snapshot()
        obs = observability.active()
        if obs.enabled:
            payload["observability"] = obs.snapshot()
        return payload
