"""The adaptive defense plane: detection-driven escalation per tenant.

PR 7 gave the fleet eyes — host-read attack-signal detectors — but the
control plane kept serving every tenant the same static noise policy.
This module closes the loop, in the spirit of "Fight Hardware with
Hardware": a deterministic per-tenant state machine

    ``NORMAL -> SUSPECT -> ESCALATED -> QUARANTINED``

driven by :class:`~repro.observability.detectors.DetectorRegistry`
alerts, whose actions are

- **ε reallocation** (SUSPECT and above): the tenant's per-slice ε is
  reallocated *downward* through the
  :class:`~repro.fleet.ledger.FleetLedger` — more noise per released
  slice, slower budget burn — while the multi-rate accountant keeps
  proving composed ε ≤ the originally registered cap (reallocation is
  monotone-down, so an escalated run can never spend faster than the
  static policy it replaced);
- **noise-mode escalation** (ESCALATED): the tenant's precomputed plan
  switches Laplace → d* through the provisioner's mode-tagged buffers.
  The d* additive noise ``noisy[t] − x[t]`` telescopes to a pure
  path-sum of tree draws (paper Eq. 4/5), so the escalated plan is
  still value-independent and precomputable — escalation never touches
  a guest value and replays bit-identically;
- **quarantine** (fail closed): once escalation is exhausted, reads
  are denied at admission (``quarantined``), every withheld window
  counted under ``privacy.stalled_slices``; a quarantined tenant spends
  nothing and leaks nothing.

Every transition is a pure function of the tenant's own alert
subsequence and its seeded policy stream (``derive_stream(seed,
"policy", tenant_id)`` supplies the cooldown jitter) — no wall clock,
no global alert interleaving — so policy decisions are bit-identical
at any shard count, which the PR-8 digest machinery asserts.

Chaos: the ``fleet.policy`` fault point sits in the decision path.
A fault absorbed by the bounded retry budget leaves every decision
(and therefore every digest) bit-identical to a fault-free run; a
fault that exhausts retries — or a ``corrupt`` that damages the
decision payload — degrades the tenant to the *most* restrictive mode
(QUARANTINED), never the least. A crashed policy engine can only ever
withhold reads, not leak them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.observability import runtime as observability
from repro.observability.detectors import SEVERITY_RANK, Alert
from repro.resilience import runtime as resilience
from repro.resilience.faults import InjectedFault, corrupt_text, stable_key
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream

#: Defense states, least to most restrictive. List order is rank order.
DEFENSE_STATES = ("NORMAL", "SUSPECT", "ESCALATED", "QUARANTINED")

#: Numeric rank per state (``policy.tenant.<id>.state`` gauge values).
STATE_RANK = {state: rank for rank, state in enumerate(DEFENSE_STATES)}

#: Noise-plan modes a state may select (mirrors the provisioner's tags).
ESCALATED_MODES = ("laplace", "dstar")


@dataclass(frozen=True)
class EscalationProfile:
    """How aggressively alerts move a tenant up (and down) the ladder.

    Alert weight is severity-based: a ``critical`` alert counts
    ``critical_weight`` hits, anything else 1; alerts below
    ``min_severity`` are ignored entirely. A tenant whose accumulated
    hits reach ``suspect_after`` / ``escalate_after`` /
    ``quarantine_after`` moves to the matching state. Quiet tenants
    decay one level at a time after ``cooldown_ticks`` plus a seeded
    jitter draw (hysteresis: fresh alerts refresh the hold, and decay
    resets the hit count to the floor of the level decayed *to*, so a
    single stray alert cannot re-quarantine a recovered tenant).
    """

    name: str = "balanced"
    suspect_after: int = 1
    escalate_after: int = 2
    quarantine_after: int = 4
    critical_weight: int = 2
    min_severity: str = "medium"
    suspect_epsilon_factor: float = 0.5
    escalated_epsilon_factor: float = 0.25
    escalated_mode: str = "dstar"
    cooldown_ticks: int = 6
    cooldown_jitter: int = 3

    def __post_init__(self) -> None:
        if not (1 <= self.suspect_after <= self.escalate_after
                <= self.quarantine_after):
            raise ValueError(
                "need 1 <= suspect_after <= escalate_after <= "
                f"quarantine_after, got {self.suspect_after}/"
                f"{self.escalate_after}/{self.quarantine_after}")
        if self.critical_weight < 1:
            raise ValueError(f"critical_weight must be >= 1, got "
                             f"{self.critical_weight}")
        if self.min_severity not in SEVERITY_RANK:
            raise ValueError(f"unknown min_severity "
                             f"{self.min_severity!r}; choose from "
                             f"{sorted(SEVERITY_RANK)}")
        for label, factor in (
                ("suspect_epsilon_factor", self.suspect_epsilon_factor),
                ("escalated_epsilon_factor",
                 self.escalated_epsilon_factor)):
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"{label} must be in (0, 1] — ε only "
                                 f"reallocates downward, got {factor}")
        if self.escalated_epsilon_factor > self.suspect_epsilon_factor:
            raise ValueError("escalated_epsilon_factor must be <= "
                             "suspect_epsilon_factor (escalation "
                             "tightens, never loosens)")
        if self.escalated_mode not in ESCALATED_MODES:
            raise ValueError(f"escalated_mode must be one of "
                             f"{ESCALATED_MODES}, got "
                             f"{self.escalated_mode!r}")
        if self.cooldown_ticks < 1:
            raise ValueError(f"cooldown_ticks must be >= 1, got "
                             f"{self.cooldown_ticks}")
        if self.cooldown_jitter < 0:
            raise ValueError(f"cooldown_jitter must be >= 0, got "
                             f"{self.cooldown_jitter}")

    # -- per-state actions --------------------------------------------

    def epsilon_factor(self, state: str) -> float:
        """The per-slice ε multiplier this state serves at."""
        if state in ("ESCALATED", "QUARANTINED"):
            return self.escalated_epsilon_factor
        if state == "SUSPECT":
            return self.suspect_epsilon_factor
        return 1.0

    def plan_mode(self, state: str) -> str:
        """The provisioner plan mode this state serves with."""
        if state in ("ESCALATED", "QUARANTINED"):
            return self.escalated_mode
        return "laplace"

    def entry_hits(self, state: str) -> int:
        """The hit floor a tenant decaying *to* ``state`` keeps."""
        return {"NORMAL": 0, "SUSPECT": self.suspect_after,
                "ESCALATED": self.escalate_after,
                "QUARANTINED": self.quarantine_after}[state]

    def target_state(self, hits: int) -> str:
        """The state ``hits`` accumulated alert weight maps to."""
        if hits >= self.quarantine_after:
            return "QUARANTINED"
        if hits >= self.escalate_after:
            return "ESCALATED"
        if hits >= self.suspect_after:
            return "SUSPECT"
        return "NORMAL"

    # -- serialization (CLI --escalation-profile) ----------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EscalationProfile":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown escalation-profile field(s): "
                             f"{unknown}; choose from {sorted(known)}")
        return cls(**payload)

    @classmethod
    def parse(cls, source: str) -> "EscalationProfile":
        """Build a profile from a JSON file path or inline JSON."""
        text = source.strip()
        if not text.startswith("{"):
            path = Path(source)
            if not path.is_file():
                raise ValueError(
                    f"--escalation-profile expects a JSON object or a "
                    f"JSON file, got {source!r}")
            text = path.read_text(encoding="utf-8")
        try:
            return cls.from_dict(json.loads(text))
        except (TypeError, ValueError, KeyError) as exc:
            raise ValueError(f"invalid escalation profile: {exc}") from exc


#: The named profiles ``--defense-policy`` accepts.
ESCALATION_PROFILES = {
    "balanced": EscalationProfile(),
    "aggressive": EscalationProfile(
        name="aggressive", suspect_after=1, escalate_after=1,
        quarantine_after=3, suspect_epsilon_factor=0.5,
        escalated_epsilon_factor=0.2, cooldown_ticks=10),
    "conservative": EscalationProfile(
        name="conservative", suspect_after=2, escalate_after=4,
        quarantine_after=8, min_severity="high",
        suspect_epsilon_factor=0.75, escalated_epsilon_factor=0.5,
        cooldown_ticks=4),
}


def resolve_profile(policy) -> "EscalationProfile | None":
    """``None``/named-profile/instance → an :class:`EscalationProfile`.

    The single resolution point the control plane, shard workers and
    CLI share, so ``--defense-policy balanced`` means the same machine
    everywhere.
    """
    if policy is None:
        return None
    if isinstance(policy, EscalationProfile):
        return policy
    try:
        return ESCALATION_PROFILES[policy]
    except KeyError as exc:
        raise ValueError(
            f"unknown defense policy {policy!r}; choose from "
            f"{sorted(ESCALATION_PROFILES)} or pass an "
            f"EscalationProfile") from exc


@dataclass
class TenantDefenseState:
    """One tenant's position on the escalation ladder."""

    tenant_id: str
    state: str = "NORMAL"
    hits: int = 0
    alerts_seen: int = 0
    decay_at: "int | None" = None
    transitions: list = field(default_factory=list)
    quarantined_windows: int = 0
    fault_forced: bool = False

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "hits": self.hits,
            "alerts_seen": self.alerts_seen,
            "decay_at": self.decay_at,
            "transitions": [dict(t) for t in self.transitions],
            "quarantined_windows": self.quarantined_windows,
            "fault_forced": self.fault_forced,
        }


class DefensePolicyEngine:
    """Per-tenant defense state machine over the fleet's alert stream.

    Parameters
    ----------
    profile:
        The :class:`EscalationProfile` (or registered name) governing
        thresholds, ε factors and cooldowns.
    ledger / provisioner:
        The fleet's accounting and provisioning planes the engine's
        actions apply to.
    seed:
        The *fleet root* seed. Cooldown jitter derives per tenant as
        ``derive_stream(seed, "policy", tenant_id)`` — never anything
        shard-local — which is what keeps decisions reshard-invariant.
    base_epsilon:
        The artifact's per-slice ε every factor multiplies.
    fault_retries / fault_attempt_bias:
        The ``fleet.policy`` retry budget, and the shard recovery
        generation added to every explicit attempt so a replayed
        worker does not re-fire an already-absorbed fault.
    """

    def __init__(self, profile, ledger, provisioner, seed: int,
                 base_epsilon: float, fault_retries: int = 4,
                 fault_attempt_bias: int = 0) -> None:
        resolved = resolve_profile(profile)
        if resolved is None:
            raise ValueError("DefensePolicyEngine needs a profile; got "
                             "None (leave the plane's policy unset "
                             "instead)")
        if fault_retries < 0:
            raise ValueError(
                f"fault_retries must be >= 0, got {fault_retries}")
        self.profile = resolved
        self.ledger = ledger
        self.provisioner = provisioner
        self.seed = int(seed)
        self.base_epsilon = float(base_epsilon)
        self.fault_retries = int(fault_retries)
        self.fault_attempt_bias = int(fault_attempt_bias)
        self.min_rank = SEVERITY_RANK[resolved.min_severity]
        self.tenants: dict[str, TenantDefenseState] = {}
        self.policy_faults = 0
        self._rngs: dict = {}
        self._consumed_alerts = 0

    # -- tenant lifecycle ---------------------------------------------

    def register_tenant(self, tenant_id: str) -> TenantDefenseState:
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id!r} already registered "
                             f"with the policy engine")
        state = TenantDefenseState(tenant_id=tenant_id)
        self.tenants[tenant_id] = state
        self._rngs[tenant_id] = derive_stream(self.seed, "policy",
                                              tenant_id)
        self._sync_gauge(state)
        return state

    def state_of(self, tenant_id: str) -> str:
        return self.tenants[tenant_id].state

    # -- admission hook -----------------------------------------------

    def deny_reason(self, tenant_id: str) -> "str | None":
        """Why this tenant's window must be withheld, or ``None``.

        Quarantine is the only denying state: SUSPECT/ESCALATED serve
        (at tighter ε / d* plans); QUARANTINED fails closed.
        """
        tenant = self.tenants.get(tenant_id)
        if tenant is None or tenant.state != "QUARANTINED":
            return None
        tenant.quarantined_windows += 1
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("policy.quarantined_windows").inc()
        return "quarantined"

    # -- the decision tick --------------------------------------------

    def on_tick(self, tick: int,
                alerts: "list[Alert] | None" = None) -> list[dict]:
        """Consume new alerts and run every pending decision.

        ``alerts=None`` pulls the fresh tail of the active
        observability plane's registry (the control plane's path);
        tests pass explicit alert lists. Returns the transitions made
        this tick (also recorded per tenant).
        """
        if alerts is None:
            alerts = self._pull_alerts()
        fresh: dict[str, list[Alert]] = {}
        for alert in alerts:
            if alert.tenant_id not in self.tenants:
                continue
            if SEVERITY_RANK.get(alert.severity, -1) < self.min_rank:
                continue
            fresh.setdefault(alert.tenant_id, []).append(alert)
        transitions: list[dict] = []
        for tenant_id in sorted(self.tenants):
            tenant = self.tenants[tenant_id]
            new_alerts = fresh.get(tenant_id, [])
            decay_due = (tenant.decay_at is not None
                         and tick >= tenant.decay_at
                         and tenant.state != "NORMAL")
            if not new_alerts and not decay_due:
                continue
            if not self._guard_decision(tenant, tick):
                transitions.extend(tenant.transitions[-1:])
                continue
            made = self._decide(tenant, new_alerts, tick)
            transitions.extend(made)
        return transitions

    def _pull_alerts(self) -> "list[Alert]":
        obs = observability.active()
        if not obs.enabled or obs.detectors is None:
            return []
        stream = obs.detectors.alerts()
        fresh = stream[self._consumed_alerts:]
        self._consumed_alerts = len(stream)
        return fresh

    def _guard_decision(self, tenant: TenantDefenseState,
                        tick: int) -> bool:
        """Hit the ``fleet.policy`` fault point for one pending
        decision; ``False`` means the engine failed closed (the tenant
        is already quarantined).

        ``raise``/demoted-``kill`` faults are retried up to the
        budget; a retry-absorbed fault changes nothing downstream. A
        ``corrupt`` fault damages the serialized decision input — the
        engine detects the damage instead of acting on garbage. Both
        exhausted retries and corruption degrade to QUARANTINED: a
        crashed policy engine may only ever *withhold* reads.
        """
        key = stable_key(tenant.tenant_id) & 0xFFFF
        for attempt in range(self.fault_retries + 1):
            try:
                spec = resilience.check(
                    "fleet.policy", key=key,
                    attempt=self.fault_attempt_bias + attempt)
            except InjectedFault:
                self.policy_faults += 1
                registry = telemetry.metrics()
                if registry.enabled:
                    registry.counter("policy.faults").inc()
                continue
            if spec is not None and spec.mode == "corrupt":
                payload = json.dumps({"tenant": tenant.tenant_id,
                                      "state": tenant.state,
                                      "hits": tenant.hits})
                try:
                    json.loads(corrupt_text(payload, seed=self.seed,
                                            key=key))
                except json.JSONDecodeError:
                    self.policy_faults += 1
                    self._force_quarantine(tenant, tick,
                                           reason="policy-corrupt")
                    return False
            return True
        self._force_quarantine(tenant, tick, reason="policy-fault")
        return False

    def _decide(self, tenant: TenantDefenseState,
                new_alerts: "list[Alert]", tick: int) -> list[dict]:
        transitions: list[dict] = []
        if new_alerts:
            weight = sum(
                self.profile.critical_weight
                if alert.severity == "critical" else 1
                for alert in new_alerts)
            tenant.hits += weight
            tenant.alerts_seen += len(new_alerts)
            target = self.profile.target_state(tenant.hits)
            if STATE_RANK[target] > STATE_RANK[tenant.state]:
                transitions.append(self._transition(
                    tenant, target, tick,
                    reason=f"{len(new_alerts)} alert(s), weight "
                           f"{weight}, hits {tenant.hits}"))
            elif tenant.state != "NORMAL":
                # Hysteresis: activity at (or below) the current level
                # refreshes the hold instead of thrashing the ladder.
                tenant.decay_at = self._hold_until(tenant, tick)
            return transitions
        # Quiet past the hold: decay exactly one level.
        lower = DEFENSE_STATES[STATE_RANK[tenant.state] - 1]
        tenant.hits = self.profile.entry_hits(lower)
        transitions.append(self._transition(
            tenant, lower, tick, reason="cooldown"))
        return transitions

    def _hold_until(self, tenant: TenantDefenseState, tick: int) -> int:
        jitter = 0
        if self.profile.cooldown_jitter:
            jitter = int(self._rngs[tenant.tenant_id].integers(
                0, self.profile.cooldown_jitter + 1))
        return tick + self.profile.cooldown_ticks + jitter

    def _transition(self, tenant: TenantDefenseState, to_state: str,
                    tick: int, reason: str) -> dict:
        from_state = tenant.state
        tenant.state = to_state
        tenant.decay_at = (None if to_state == "NORMAL"
                           else self._hold_until(tenant, tick))
        self._apply_actions(tenant)
        record = {"tick": tick, "from": from_state, "to": to_state,
                  "reason": reason}
        tenant.transitions.append(record)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("policy.transitions").inc()
            if STATE_RANK[to_state] > STATE_RANK[from_state]:
                registry.counter("policy.escalations").inc()
            if to_state == "QUARANTINED":
                registry.counter("policy.quarantines").inc()
        self._sync_gauge(tenant)
        return record

    def _force_quarantine(self, tenant: TenantDefenseState, tick: int,
                          reason: str) -> None:
        """Fail closed: a faulted decision path degrades to the most
        restrictive mode, never the least."""
        tenant.fault_forced = True
        tenant.hits = max(tenant.hits, self.profile.quarantine_after)
        if tenant.state != "QUARANTINED":
            self._transition(tenant, "QUARANTINED", tick, reason=reason)
        else:
            tenant.decay_at = self._hold_until(tenant, tick)

    def _apply_actions(self, tenant: TenantDefenseState) -> None:
        """Reallocate ε and retag the noise plan for the new state."""
        factor = self.profile.epsilon_factor(tenant.state)
        self.ledger.reallocate(tenant.tenant_id,
                               self.base_epsilon * factor)
        # Tighter ε means a larger Laplace scale b = Δ/ε: factor f on ε
        # is 1/f on scale. The provisioner flushes the stale plan tail
        # and draws the next refill under the new (mode, scale).
        self.provisioner.set_profile(
            tenant.tenant_id, mode=self.profile.plan_mode(tenant.state),
            scale_factor=1.0 / factor)

    def _sync_gauge(self, tenant: TenantDefenseState) -> None:
        registry = telemetry.metrics()
        if registry.enabled:
            registry.gauge(
                f"policy.tenant.{tenant.tenant_id}.state").set(
                STATE_RANK[tenant.state])

    # -- introspection -------------------------------------------------

    def health_reasons(self) -> list[str]:
        """Fault-forced quarantines are degraded health (the engine
        itself crashed); alert-driven escalation is the plane working."""
        reasons = []
        for tenant_id in sorted(self.tenants):
            tenant = self.tenants[tenant_id]
            if tenant.fault_forced:
                reasons.append(
                    f"tenant {tenant_id}: policy decision path faulted "
                    f"past retries — failed closed to QUARANTINED")
        return reasons

    def snapshot(self) -> dict:
        """JSON-ready view for ``fleet status`` / the status file."""
        counts = {state: 0 for state in DEFENSE_STATES}
        for tenant in self.tenants.values():
            counts[tenant.state] += 1
        return {
            "profile": self.profile.to_dict(),
            "states": counts,
            "policy_faults": self.policy_faults,
            "tenants": {tenant_id: self.tenants[tenant_id].snapshot()
                        for tenant_id in sorted(self.tenants)},
        }


def profile_with(name: str, **overrides) -> EscalationProfile:
    """A named profile with field overrides (bench/test convenience)."""
    return replace(resolve_profile(name), **overrides)
