"""Consistent-hash tenant routing for the sharded control plane.

The sharded fleet needs one answer to one question — *which shard owns
tenant T?* — and the answer has to be stable in exactly the way
horizontal scaling stresses it:

- **deterministic across processes**: every shard worker, the parent
  supervisor, and a replay next week must agree without coordination,
  so placement hashes through SHA-256 (via
  :func:`repro.utils.rng.stream_key`), never Python's per-process
  string hash;
- **minimally disruptive under resharding**: growing the fleet from N
  to N+1 shards must move only the tenants the *new* shard takes over
  (~1/(N+1) of them), and removing a crashed shard must move only the
  crashed shard's tenants — every other tenant stays put, which is
  what keeps reassign-and-replay recovery O(crashed tenants) instead
  of O(fleet).

Both properties fall out of a classic consistent-hash ring: each shard
projects ``replicas`` virtual points onto a 64-bit ring, a tenant maps
to the first shard point at or after its own hash (wrapping), and
adding or removing a shard only edits that shard's points. The
property tests in ``tests/test_fleet_sharding.py`` pin the exact
only-to-the-new-shard / only-from-the-removed-shard guarantees, not
just the statistical ~1/N movement.

Note what the router deliberately does *not* influence: per-tenant
noise streams. Those derive from ``(root seed, "noise"/"mix",
tenant_id)`` with no shard label, so a tenant's injection plan — and
therefore its noised-read digest — is bit-identical no matter which
shard serves it. The router decides *where* work runs, never *what*
the tenant observes.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.utils.rng import stream_key

#: Virtual ring points per shard. 64 keeps the max/min tenant-load
#: ratio near 1 for fleets of tens of shards while the ring stays a
#: few-KB sorted list.
DEFAULT_REPLICAS = 64

#: The ring is a 64-bit space (matches ``stream_key``'s output width).
RING_BITS = 64


def _ring_point(shard_id: int, replica: int) -> int:
    """The ring position of one virtual node, stable across processes."""
    return stream_key(f"fleet-shard:{shard_id}:replica:{replica}")


def _tenant_point(tenant_id: str) -> int:
    return stream_key(f"fleet-tenant:{tenant_id}")


class FleetRouter:
    """Maps tenant ids onto a fixed set of shard ids.

    Parameters
    ----------
    shard_ids:
        The live shards, by integer id. Ids need not be contiguous —
        after a crash the survivors keep their ids, which is what keeps
        their tenants pinned in place.
    replicas:
        Virtual points per shard on the ring.
    """

    def __init__(self, shard_ids, replicas: int = DEFAULT_REPLICAS) -> None:
        ids = tuple(int(s) for s in shard_ids)
        if not ids:
            raise ValueError("a router needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shard_ids = tuple(sorted(ids))
        self.replicas = int(replicas)
        ring = []
        for shard_id in self.shard_ids:
            for replica in range(self.replicas):
                ring.append((_ring_point(shard_id, replica), shard_id))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    @classmethod
    def for_shard_count(cls, shards: int,
                        replicas: int = DEFAULT_REPLICAS) -> "FleetRouter":
        """A router over shard ids ``0 .. shards-1``."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return cls(range(shards), replicas=replicas)

    @property
    def shard_count(self) -> int:
        return len(self.shard_ids)

    def assign(self, tenant_id: str) -> int:
        """The shard owning ``tenant_id``: first ring point clockwise."""
        index = bisect_left(self._points, _tenant_point(tenant_id))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def assignments(self, tenant_ids) -> "dict[int, list[str]]":
        """Tenants grouped by owning shard.

        Every live shard appears (possibly with an empty list) and each
        shard's tenants come back sorted, so iteration order — and
        therefore every shard's admission order — is deterministic.
        """
        grouped: dict[int, list[str]] = {s: [] for s in self.shard_ids}
        for tenant_id in sorted(set(tenant_ids)):
            grouped[self.assign(tenant_id)].append(tenant_id)
        return grouped

    def without_shard(self, shard_id: int) -> "FleetRouter":
        """The router after ``shard_id`` leaves (crash reassignment).

        Surviving shards keep their ring points, so only the departed
        shard's tenants get new owners.
        """
        shard_id = int(shard_id)
        if shard_id not in self.shard_ids:
            raise ValueError(f"no such shard {shard_id}")
        survivors = tuple(s for s in self.shard_ids if s != shard_id)
        if not survivors:
            raise ValueError(
                f"removing shard {shard_id} would leave an empty fleet")
        return FleetRouter(survivors, replicas=self.replicas)

    def with_shard(self, shard_id: int) -> "FleetRouter":
        """The router after ``shard_id`` joins (fleet growth)."""
        shard_id = int(shard_id)
        if shard_id in self.shard_ids:
            raise ValueError(f"shard {shard_id} already routed")
        return FleetRouter(self.shard_ids + (shard_id,),
                           replicas=self.replicas)

    def describe(self) -> dict:
        """JSON-ready summary for status outputs."""
        return {"shard_ids": list(self.shard_ids),
                "replicas": self.replicas,
                "ring_points": len(self._points)}
