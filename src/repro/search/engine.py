"""The coverage-guided search loop: plan, evaluate, reduce, repeat.

Structure mirrors the sharded screening campaign: each round plans a
batch of *evaluation tasks* (grammar samples for exploration, mutants
of scheduled corpus seeds for exploitation), evaluates them in
fixed-size chunks — in-process or across a worker pool, with identical
chunk boundaries either way — and reduces the outcomes sequentially in
plan order.  Every random draw comes from a ``derive_stream`` leaf
keyed on stable labels (sample index, or (round, parent digest, child
index)), and the reduction is a pure fold over outcomes sorted by
evaluation index, so the corpus, coverage map, and responder pool are
bit-identical for any worker count.  Grammar-sample tasks reuse the
exact per-gadget streams of blind screening (``gadget_stream``), so
the built-in blind baseline *is* the screening campaign's behavior.

Checkpoints (one JSON statefile per round, written atomically) carry
the whole search state — coverage map, scheduler energies, corpus
entries, responder pool — so a killed search resumes into the same
trajectory it would have taken uninterrupted.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.cache.fingerprint import config_digest
from repro.core.fuzzer.campaign import default_cleanup, gadget_stream
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import Gadget, GadgetGrammar
from repro.cpu import batch
from repro.cpu.core import Core
from repro.fleet.statefile import read_json, write_json_atomic
from repro.resilience import runtime as resilience
from repro.search.corpus import (Corpus, CorpusEntry, build_name_index,
                                 gadget_digest)
from repro.search.coverage import CoverageExtractor, CoverageMap
from repro.search.mutators import GadgetMutator
from repro.search.scheduler import FrontierScheduler
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream

logger = logging.getLogger(__name__)

#: Search checkpoint schema version.
SEARCH_CHECKPOINT_VERSION = 1

#: Evaluations per worker chunk.  Purely an execution granularity —
#: chunk boundaries are a function of the round plan, never of the
#: worker count, so results are chunk-partition-invariant by the same
#: argument as shard partitioning.
DEFAULT_CHUNK_SIZE = 64

#: Statefile name inside the checkpoint directory.
SEARCH_STATE_FILE = "search-state.json"


class SearchError(ValueError):
    """Invalid search configuration or unusable checkpoint state."""


@dataclass(frozen=True)
class SearchConfig:
    """Everything a search worker needs, in plain picklable types.

    The screening fields (entropy, unroll, sequence length, thresholds)
    mean exactly what they mean in ``ShardConfig`` — sample tasks
    reproduce blind screening bit for bit.
    """

    processor_model: str
    microarch: str
    entropy: int
    unroll: int
    sequence_length: int
    empty_reset_prob: float
    event_indices: tuple[int, ...]
    thresholds: tuple[float, ...]
    max_sequence_length: int = 3
    bootstrap: int = 64
    parents_per_round: int = 8
    children_per_parent: int = 8
    explore_fraction: float = 0.25
    probes_per_round: int = 16
    chunk_size: int = DEFAULT_CHUNK_SIZE


@dataclass(frozen=True)
class SearchTask:
    """One planned evaluation.

    ``sample`` draws from the grammar under blind screening's exact
    per-gadget stream; ``mutate`` applies one seeded mutation to the
    parent carried in ``parent_reset``/``parent_trigger``; ``probe``
    evaluates the literal gadget in those fields — the directed sweep
    of instructions the search has not tried yet.
    """

    eval_index: int
    kind: str  # "sample" | "mutate" | "probe"
    round_index: int
    sample_index: int = 0
    parent_digest: str = ""
    parent_reset: tuple[str, ...] = ()
    parent_trigger: tuple[str, ...] = ()
    child: int = 0


@dataclass(frozen=True)
class SearchOutcome:
    """One evaluated task: the gadget (by names) and its coverage."""

    eval_index: int
    kind: str
    parent_digest: str
    reset: tuple[str, ...]
    trigger: tuple[str, ...]
    digest: str
    features: tuple[int, ...]
    responses: tuple[tuple[int, float], ...]
    near: tuple[int, ...]


def mutation_stream(entropy: int, round_index: int, parent_digest: str,
                    child: int) -> np.random.Generator:
    """The RNG leaf owned by one (round, parent, child) mutation."""
    return derive_stream(entropy, "mutate", round_index, parent_digest,
                         child)


def evaluate_search_chunk(config: SearchConfig, tasks, cold=()) -> list:
    """Evaluate one chunk of search tasks.  Pure in (config, tasks, cold).

    Mirrors ``screen_shard``'s per-gadget discipline: each task gets
    its own RNG stream, a reset-then-warmed core, and a batched
    screening measurement, so the outcome is identical no matter which
    process evaluates the chunk.
    """
    legal = default_cleanup(config.microarch).legal
    by_name = build_name_index(legal)
    core = Core(config.processor_model, rng=0)
    harness = ExecutionHarness(core, unroll=config.unroll, rng=0)
    # Archetype memo scoped to one chunk, exactly as screening scopes
    # it to one shard: measurements become a pure function of the
    # chunk, invariant to worker count and process history.
    batch.clear_memo()
    grammar = GadgetGrammar(legal, sequence_length=config.sequence_length,
                            empty_reset_prob=config.empty_reset_prob, rng=0)
    mutator = GadgetMutator(legal,
                            max_sequence_length=config.max_sequence_length)
    extractor = CoverageExtractor(core.catalog, config.event_indices,
                                  config.thresholds)
    cold_specs = tuple(by_name[name] for name in cold if name in by_name)
    events = np.asarray(config.event_indices, dtype=int)
    outcomes = []
    for task in tasks:
        if task.kind == "sample":
            stream = gadget_stream(config.entropy, task.sample_index)
            gadget = grammar.sample(rng=stream)
        elif task.kind == "probe":
            gadget = Gadget(
                reset=tuple(by_name[n] for n in task.parent_reset),
                trigger=tuple(by_name[n] for n in task.parent_trigger))
            stream = derive_stream(config.entropy, "probe",
                                   task.parent_trigger[0])
        else:
            parent = Gadget(
                reset=tuple(by_name[n] for n in task.parent_reset),
                trigger=tuple(by_name[n] for n in task.parent_trigger))
            stream = mutation_stream(config.entropy, task.round_index,
                                     task.parent_digest, task.child)
            gadget = mutator.mutate(parent, stream, cold=cold_specs)
        core.reset_microarch_state()
        harness.warm_measurement_state()
        harness.set_rng(stream)
        measured = harness.screen_measure(gadget, events)
        sample = extractor.extract(measured.signals, measured.deltas)
        reset = tuple(s.name for s in gadget.reset)
        trigger = tuple(s.name for s in gadget.trigger)
        outcomes.append(SearchOutcome(
            eval_index=task.eval_index, kind=task.kind,
            parent_digest=task.parent_digest, reset=reset, trigger=trigger,
            digest=gadget_digest(reset, trigger),
            features=sample.features, responses=sample.responses,
            near=sample.near))
    return outcomes


def evaluate_search_chunk_traced(config: SearchConfig, tasks, cold=(),
                                 trace_dir: "str | None" = None,
                                 label: str = "") -> list:
    """Chunk evaluation under an isolated per-chunk telemetry session.

    With a ``trace_dir``, the chunk's ``batch.*`` counters land in
    per-chunk files named after the (round, chunk) label — the same
    files whether the chunk runs in-process or on a pool worker — so
    merged telemetry stays invariant to worker count, exactly like
    per-shard screening sessions.
    """
    if trace_dir is None:
        return evaluate_search_chunk(config, tasks, cold)
    with telemetry.session(trace_dir=trace_dir,
                           process=f"search-{label}"):
        return evaluate_search_chunk(config, tasks, cold)


def evals_to_cover(first_cover: dict, count: int) -> "int | None":
    """Evaluations spent when the ``count``-th event was first covered.

    ``first_cover`` maps event index to the cumulative evaluation count
    at its first threshold crossing.  Returns ``None`` if fewer than
    ``count`` events were ever covered.
    """
    if count <= 0:
        return 0
    marks = sorted(first_cover.values())
    if len(marks) < count:
        return None
    return int(marks[count - 1])


@dataclass
class SearchResult:
    """Everything one coverage-guided (or blind) search produced."""

    evals: int
    rounds: int
    covered_events: tuple[int, ...]
    first_cover: dict[int, int]
    responders: dict[int, list[tuple[int, float]]]
    gadgets: dict[int, Gadget]
    corpus_size: int
    corpus_replay_digest: str
    coverage_digest: str
    coverage_features: int
    minimize_evals: int = 0
    corpus_misses: int = 0
    elapsed_seconds: float = 0.0

    @property
    def covered_count(self) -> int:
        return len(self.covered_events)

    def evals_to_cover(self, count: int) -> "int | None":
        return evals_to_cover(self.first_cover, count)


class CoverageSearch:
    """Drives the coverage-guided search loop.

    Parameters
    ----------
    config:
        The plain-type search configuration workers receive.
    max_evals:
        Evaluation budget (counts bootstrap samples, mutants, explore
        samples, and minimization measurements alike — the same unit
        blind sampling spends).
    workers:
        Worker processes for chunk evaluation (1 = in-process).
    corpus_dir:
        Optional directory mirroring corpus admissions on disk.
    checkpoint_dir / resume:
        Round-granular checkpointing; a resumed search continues the
        exact trajectory of the interrupted one.
    target_events:
        Optional early stop once this many catalog events are covered.
    minimize:
        Greedy one-pass seed minimization at admission time (drops
        instructions that don't contribute the admitted coverage).
    fault_plan:
        Optional chaos plan armed for the duration of the search.
    """

    def __init__(self, config: SearchConfig, max_evals: int,
                 workers: int = 1,
                 corpus_dir: "str | Path | None" = None,
                 checkpoint_dir: "str | Path | None" = None,
                 resume: bool = False,
                 target_events: "int | None" = None,
                 minimize: bool = True,
                 fault_plan=None) -> None:
        if max_evals < 1:
            raise SearchError(f"max_evals must be >= 1, got {max_evals}")
        if workers < 1:
            raise SearchError(f"workers must be >= 1, got {workers}")
        if config.chunk_size < 1:
            raise SearchError(
                f"chunk_size must be >= 1, got {config.chunk_size}")
        self.config = config
        self.max_evals = max_evals
        self.workers = workers
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = resume
        self.target_events = target_events
        self.minimize = minimize
        self.fault_plan = fault_plan

        self.corpus = Corpus(self.corpus_dir)
        self.coverage = CoverageMap()
        self.scheduler = FrontierScheduler()
        self.responders: dict[int, list[tuple[int, float]]] = {}
        self.first_cover: dict[int, int] = {}
        self.gadgets: dict[int, Gadget] = {}
        self._gadget_names: dict[int, tuple[tuple, tuple]] = {}
        self._tried: set[str] = set()
        self._round_parents: tuple[str, ...] = ()
        self._eval_cursor = 0
        self._sample_cursor = 0
        self._round = 0
        self.minimize_evals = 0

        self._legal = None
        self._by_name = None
        self._harness = None
        self._core = None
        self._extractor = None
        self._probe_queue: "tuple[str, ...] | None" = None
        self._probe_cursor = 0

    # -- deterministic identity ----------------------------------------

    def fingerprint(self) -> str:
        """Digest tying checkpoints to one search configuration."""
        return config_digest({"config": asdict(self.config),
                              "max_evals": self.max_evals,
                              "version": SEARCH_CHECKPOINT_VERSION})

    # -- lazy parent-side evaluation machinery -------------------------

    def _ensure_local(self) -> None:
        if self._harness is not None:
            return
        self._legal = default_cleanup(self.config.microarch).legal
        self._by_name = build_name_index(self._legal)
        self._core = Core(self.config.processor_model, rng=0)
        self._harness = ExecutionHarness(self._core,
                                         unroll=self.config.unroll, rng=0)
        self._extractor = CoverageExtractor(self._core.catalog,
                                            self.config.event_indices,
                                            self.config.thresholds)
        # Probe order: rarest instruction class first.  Blind sampling
        # is a coupon collector over ~3.4k variants — events gated on a
        # 10-instruction class (prefetch, clflush) take thousands of
        # draws to reach by chance; the directed sweep reaches every
        # member of the small classes within the first few rounds.
        class_sizes: dict = {}
        for spec in self._legal:
            class_sizes[spec.iclass] = class_sizes.get(spec.iclass, 0) + 1
        self._probe_queue = tuple(spec.name for spec in sorted(
            self._legal,
            key=lambda s: (class_sizes[s.iclass], s.iclass.value, s.name)))

    def _measure_local(self, gadget: Gadget, stream):
        """One parent-side measurement (minimization trials)."""
        self._ensure_local()
        events = np.asarray(self.config.event_indices, dtype=int)
        self._core.reset_microarch_state()
        self._harness.warm_measurement_state()
        self._harness.set_rng(stream)
        measured = self._harness.screen_measure(gadget, events)
        return self._extractor.extract(measured.signals, measured.deltas)

    # -- planning ------------------------------------------------------

    def _plan_round(self, remaining: int) -> "tuple[list, tuple]":
        """Plan one round of tasks plus the round's cold-instruction pool."""
        self._ensure_local()
        cold = tuple(sorted(
            name for name in self._by_name if name not in self._tried))
        tasks: list[SearchTask] = []

        def sample_task() -> SearchTask:
            task = SearchTask(eval_index=self._eval_cursor + len(tasks),
                              kind="sample", round_index=self._round,
                              sample_index=self._sample_cursor)
            self._sample_cursor += 1
            return task

        def probe_tasks() -> None:
            count = 0
            while (self._probe_cursor < len(self._probe_queue)
                   and count < self.config.probes_per_round):
                name = self._probe_queue[self._probe_cursor]
                self._probe_cursor += 1
                if name in self._tried:
                    continue
                # Probes amplify: max_sequence_length copies of the
                # instruction roughly multiply its per-iteration delta,
                # so any event the instruction perturbs at all tends to
                # cross its screening threshold in the probe itself.
                repeat = (name,) * self.config.max_sequence_length
                tasks.append(SearchTask(
                    eval_index=self._eval_cursor + len(tasks),
                    kind="probe", round_index=self._round,
                    parent_reset=(), parent_trigger=repeat))
                count += 1

        if not self.scheduler.seeds:
            for _ in range(min(remaining, self.config.bootstrap)):
                tasks.append(sample_task())
            probe_tasks()
            return tasks[:remaining], cold

        uncovered = tuple(e for e in self.config.event_indices
                          if e not in self.first_cover)
        parents = self.scheduler.select(self.config.parents_per_round,
                                        self.coverage, uncovered)
        self._round_parents = tuple(p.digest for p in parents)
        for parent in parents:
            entry = self.corpus.entries[parent.digest]
            for child in range(self.config.children_per_parent):
                tasks.append(SearchTask(
                    eval_index=self._eval_cursor + len(tasks),
                    kind="mutate", round_index=self._round,
                    parent_digest=parent.digest,
                    parent_reset=entry.reset,
                    parent_trigger=entry.trigger,
                    child=child))
        probe_tasks()
        explore = max(1, int(self.config.explore_fraction
                             * max(1, len(tasks))))
        for _ in range(explore):
            tasks.append(sample_task())
        if len(tasks) > remaining:
            dropped = tasks[remaining:]
            self._sample_cursor -= sum(1 for t in dropped
                                       if t.kind == "sample")
            tasks = tasks[:remaining]
        return tasks, cold

    # -- evaluation ----------------------------------------------------

    def _evaluate(self, tasks, cold, executor) -> list:
        chunk_size = self.config.chunk_size
        chunks = [tasks[i:i + chunk_size]
                  for i in range(0, len(tasks), chunk_size)]
        trace_dir = telemetry.trace_dir()
        trace = str(trace_dir) if trace_dir is not None else None
        labels = [f"{self._round:04d}-{i:03d}" for i in range(len(chunks))]
        if executor is None or len(chunks) == 1:
            results = [evaluate_search_chunk_traced(self.config, chunk,
                                                    cold, trace, label)
                       for chunk, label in zip(chunks, labels)]
        else:
            futures = [executor.submit(evaluate_search_chunk_traced,
                                       self.config, chunk, cold, trace,
                                       label)
                       for chunk, label in zip(chunks, labels)]
            results = [future.result() for future in futures]
        outcomes = [outcome for chunk in results for outcome in chunk]
        outcomes.sort(key=lambda o: o.eval_index)
        return outcomes

    # -- reduction -----------------------------------------------------

    def _minimize_entry(self, gadget: Gadget, required: set
                        ) -> "tuple[Gadget, object] | None":
        """Greedy one-pass minimization preserving the admitted features.

        Tries dropping each instruction once (front to back, reset
        first); a drop survives if the trimmed gadget still produces
        every feature in ``required``.  Returns the trimmed gadget and
        its coverage sample, or ``None`` if nothing could be dropped.
        """
        trimmed = gadget
        best_sample = None
        trial = 0
        changed = True
        while changed and trimmed.instruction_count > 2:
            changed = False
            sequences = (list(trimmed.reset), list(trimmed.trigger))
            for side in (0, 1):
                seq = sequences[side]
                limit = len(seq) if side == 0 else len(seq) - 1
                for position in range(limit):
                    candidate_sides = (sequences[0][:], sequences[1][:])
                    del candidate_sides[side][position]
                    candidate = Gadget(reset=tuple(candidate_sides[0]),
                                       trigger=tuple(candidate_sides[1]))
                    names = (tuple(s.name for s in candidate.reset),
                             tuple(s.name for s in candidate.trigger))
                    stream = derive_stream(
                        self.config.entropy, "minimize",
                        gadget_digest(names[0], names[1]), trial)
                    trial += 1
                    sample = self._measure_local(candidate, stream)
                    self._eval_cursor += 1
                    self.minimize_evals += 1
                    if required <= set(sample.features):
                        trimmed = candidate
                        best_sample = sample
                        sequences = (list(trimmed.reset),
                                     list(trimmed.trigger))
                        changed = True
                        break
                if changed:
                    break
        if best_sample is None:
            return None
        return trimmed, best_sample

    def _reduce(self, outcomes) -> None:
        admitted_by_parent: dict[str, int] = {}
        for outcome in outcomes:
            self._tried.update(outcome.reset)
            self._tried.update(outcome.trigger)
            for event, delta in outcome.responses:
                self.responders.setdefault(event, []).append(
                    (outcome.eval_index, delta))
                if event not in self.first_cover:
                    self.first_cover[event] = outcome.eval_index + 1
            if outcome.responses:
                self._register_gadget(outcome)
            new = self.coverage.new_features(outcome.features)
            if not new or outcome.digest in self.corpus:
                continue
            reset, trigger = outcome.reset, outcome.trigger
            features = outcome.features
            responses = outcome.responses
            near = outcome.near
            if (self.minimize and outcome.kind == "mutate"
                    and len(reset) + len(trigger) > 2):
                self._ensure_local()
                gadget = Gadget(
                    reset=tuple(self._by_name[n] for n in reset),
                    trigger=tuple(self._by_name[n] for n in trigger))
                shrunk = self._minimize_entry(gadget, set(new))
                if shrunk is not None:
                    gadget, sample = shrunk
                    reset = tuple(s.name for s in gadget.reset)
                    trigger = tuple(s.name for s in gadget.trigger)
                    features = sample.features
                    responses = sample.responses
                    near = sample.near
            digest = gadget_digest(reset, trigger)
            if digest in self.corpus:
                continue
            entry = CorpusEntry(digest=digest, reset=reset, trigger=trigger,
                                features=features, responses=responses,
                                near=near, parent=outcome.parent_digest,
                                round_index=self._round,
                                eval_index=outcome.eval_index)
            self.coverage.observe(features)
            self.corpus.add(entry)
            self.scheduler.admit(digest, features, near,
                                 new_features=len(new))
            if outcome.parent_digest:
                admitted_by_parent[outcome.parent_digest] = (
                    admitted_by_parent.get(outcome.parent_digest, 0) + 1)
        for parent_digest in self._round_parents:
            self.scheduler.credit(parent_digest,
                                  admitted_by_parent.get(parent_digest, 0))
        self._round_parents = ()

    def _register_gadget(self, outcome) -> None:
        """Record a responding gadget for confirmation-stage replay."""
        if outcome.eval_index in self.gadgets:
            return
        self._ensure_local()
        self._gadget_names[outcome.eval_index] = (outcome.reset,
                                                  outcome.trigger)
        self.gadgets[outcome.eval_index] = Gadget(
            reset=tuple(self._by_name[n] for n in outcome.reset),
            trigger=tuple(self._by_name[n] for n in outcome.trigger))

    # -- checkpointing -------------------------------------------------

    def _state_path(self) -> "Path | None":
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / SEARCH_STATE_FILE

    def _save_checkpoint(self) -> None:
        path = self._state_path()
        if path is None:
            return
        payload = {
            "version": SEARCH_CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint(),
            "round": self._round,
            "eval_cursor": self._eval_cursor,
            "sample_cursor": self._sample_cursor,
            "probe_cursor": self._probe_cursor,
            "minimize_evals": self.minimize_evals,
            "tried": sorted(self._tried),
            "first_cover": {str(e): n
                            for e, n in sorted(self.first_cover.items())},
            "responders": {str(e): [[i, d] for i, d in pairs]
                           for e, pairs in sorted(self.responders.items())},
            "gadget_names": {str(i): [list(r), list(t)]
                             for i, (r, t)
                             in sorted(self._gadget_names.items())},
            "coverage": self.coverage.to_payload(),
            "scheduler": self.scheduler.to_payload(),
            "corpus": self.corpus.to_payload(),
        }
        write_json_atomic(path, payload)

    def _load_checkpoint(self) -> bool:
        path = self._state_path()
        if path is None or not path.exists():
            return False
        try:
            payload = read_json(path)
        except (OSError, ValueError):
            logger.warning("unreadable search checkpoint at %s; "
                           "starting fresh", path)
            return False
        if payload.get("fingerprint") != self.fingerprint():
            raise SearchError(
                f"checkpoint at {path} belongs to a different search "
                f"configuration; use a fresh --checkpoint-dir or delete it")
        self._round = int(payload["round"])
        self._eval_cursor = int(payload["eval_cursor"])
        self._sample_cursor = int(payload["sample_cursor"])
        self._probe_cursor = int(payload.get("probe_cursor", 0))
        self.minimize_evals = int(payload.get("minimize_evals", 0))
        self._tried = set(payload.get("tried", ()))
        self.first_cover = {int(e): int(n)
                            for e, n in payload["first_cover"].items()}
        self.responders = {int(e): [(int(i), float(d)) for i, d in pairs]
                           for e, pairs in payload["responders"].items()}
        self.coverage = CoverageMap.from_payload(payload["coverage"])
        self.scheduler = FrontierScheduler()
        self.scheduler.restore(payload["scheduler"])
        restored = Corpus.from_payload(payload["corpus"])
        self.corpus.entries = restored.entries
        self._ensure_local()
        for raw_index, (reset, trigger) in payload["gadget_names"].items():
            index = int(raw_index)
            names = (tuple(reset), tuple(trigger))
            self._gadget_names[index] = names
            self.gadgets[index] = Gadget(
                reset=tuple(self._by_name[n] for n in names[0]),
                trigger=tuple(self._by_name[n] for n in names[1]))
        # Count (and skip) damaged on-disk corpus entries: a torn entry
        # is a miss, never a crash.
        self.corpus.load()
        return True

    # -- the loop ------------------------------------------------------

    def _target_reached(self) -> bool:
        return (self.target_events is not None
                and len(self.first_cover) >= self.target_events)

    def run(self) -> SearchResult:
        """Run (or resume) the search to budget/target exhaustion."""
        needs_faults = (self.fault_plan is not None
                        and not resilience.armed())
        with (resilience.session(self.fault_plan)
              if needs_faults else nullcontext()):
            return self._run()

    def _run(self) -> SearchResult:
        started = time.perf_counter()
        if self.resume:
            self._load_checkpoint()
        registry = telemetry.metrics()
        executor = None
        try:
            if self.workers > 1:
                executor = ProcessPoolExecutor(max_workers=self.workers)
            with telemetry.tracer().span("search.run",
                                         max_evals=self.max_evals,
                                         workers=self.workers):
                while (self._eval_cursor < self.max_evals
                       and not self._target_reached()):
                    remaining = self.max_evals - self._eval_cursor
                    tasks, cold = self._plan_round(remaining)
                    if not tasks:
                        break
                    self._eval_cursor += len(tasks)
                    outcomes = self._evaluate(tasks, cold, executor)
                    self._reduce(outcomes)
                    self._round += 1
                    if registry.enabled:
                        registry.counter("search.evals").inc(len(tasks))
                        registry.counter("search.rounds").inc()
                        registry.gauge("search.covered_events").set(
                            len(self.first_cover))
                        registry.gauge("search.corpus.size").set(
                            len(self.corpus))
                    self._save_checkpoint()
        finally:
            if executor is not None:
                executor.shutdown()
        return SearchResult(
            evals=self._eval_cursor,
            rounds=self._round,
            covered_events=tuple(sorted(self.first_cover)),
            first_cover=dict(self.first_cover),
            responders={e: list(pairs)
                        for e, pairs in self.responders.items()},
            gadgets=dict(self.gadgets),
            corpus_size=len(self.corpus),
            corpus_replay_digest=self.corpus.replay_digest(),
            coverage_digest=self.coverage.digest(),
            coverage_features=len(self.coverage),
            minimize_evals=self.minimize_evals,
            corpus_misses=self.corpus.misses,
            elapsed_seconds=time.perf_counter() - started,
        )


def blind_search(config: SearchConfig, max_evals: int,
                 chunk_size: "int | None" = None) -> SearchResult:
    """Blind grammar sampling measured in the search's own currency.

    Evaluates ``max_evals`` grammar samples under the exact per-gadget
    streams of campaign screening (``gadget_stream``) and records the
    same first-cover curve a :class:`CoverageSearch` records — the
    baseline the coverage bench compares against.
    """
    if max_evals < 1:
        raise SearchError(f"max_evals must be >= 1, got {max_evals}")
    size = chunk_size or config.chunk_size
    first_cover: dict[int, int] = {}
    responders: dict[int, list[tuple[int, float]]] = {}
    covered_features = CoverageMap()
    for start in range(0, max_evals, size):
        count = min(size, max_evals - start)
        tasks = [SearchTask(eval_index=start + i, kind="sample",
                            round_index=0, sample_index=start + i)
                 for i in range(count)]
        for outcome in evaluate_search_chunk(config, tasks):
            covered_features.observe(outcome.features)
            for event, delta in outcome.responses:
                responders.setdefault(event, []).append(
                    (outcome.eval_index, delta))
                if event not in first_cover:
                    first_cover[event] = outcome.eval_index + 1
    return SearchResult(
        evals=max_evals,
        rounds=0,
        covered_events=tuple(sorted(first_cover)),
        first_cover=first_cover,
        responders=responders,
        gadgets={},
        corpus_size=0,
        corpus_replay_digest="",
        coverage_digest=covered_features.digest(),
        coverage_features=len(covered_features),
    )
