"""Deterministic coverage map for gadget search.

A gadget's *coverage signature* is a set of integer feature ids over

    (event row, microarchitectural unit, response-sign bucket)

extracted from one batched screening measurement: the event rows whose
measured delta clears the screening threshold, crossed with the
microarchitectural units the gadget's signal vector actually exercised,
bucketed by response sign and log-magnitude.  A second family of
*frontier* features records which units a gadget touches at all —
independent of any event responding — so the corpus retains gadgets
that exercise rare units (crypto, cache-control, x87) before a
threshold crossing confirms them.

Feature ids are the first 8 bytes of a SHA-256 over the textual
``event|unit|bucket`` triple — never Python ``hash()`` — so maps built
in different processes, in different orders, by different worker
counts, are bit-identical.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.cpu.signals import Signal

#: Microarchitectural unit of each of the 40 simulator signals.  Units
#: partition the signal space coarsely enough that one gadget touches a
#: handful, finely enough that "new unit" is a meaningful frontier.
UNIT_OF_SIGNAL: dict[Signal, str] = {
    Signal.CYCLES: "pipeline",
    Signal.INSTRUCTIONS: "pipeline",
    Signal.UOPS: "pipeline",
    Signal.NOP_OPS: "pipeline",
    Signal.LOADS: "l1d",
    Signal.STORES: "l1d",
    Signal.L1D_ACCESS: "l1d",
    Signal.L1D_MISS: "l1d",
    Signal.MAB_ALLOC: "l1d",
    Signal.L1I_MISS: "frontend",
    Signal.L2_ACCESS: "l2",
    Signal.L2_MISS: "l2",
    Signal.LLC_ACCESS: "memory",
    Signal.LLC_MISS: "memory",
    Signal.MEM_READS: "memory",
    Signal.MEM_WRITES: "memory",
    Signal.BRANCHES: "branch",
    Signal.BRANCH_MISS: "branch",
    Signal.COND_BRANCHES: "branch",
    Signal.CALLS: "branch",
    Signal.RETURNS: "branch",
    Signal.ITLB_MISS: "tlb",
    Signal.DTLB_MISS: "tlb",
    Signal.TLB_FLUSHES: "tlb",
    Signal.FP_OPS: "fp",
    Signal.X87_OPS: "fp",
    Signal.MUL_OPS: "fp",
    Signal.DIV_OPS: "fp",
    Signal.SIMD_OPS: "simd",
    Signal.BIT_OPS: "simd",
    Signal.CRYPTO_OPS: "crypto",
    Signal.STACK_OPS: "stack",
    Signal.PREFETCHES: "cache-control",
    Signal.CACHE_FLUSHES: "cache-control",
    Signal.SERIALIZING: "serialize",
    Signal.PAGE_FAULTS: "host",
    Signal.SYSCALLS: "host",
    Signal.CONTEXT_SWITCHES: "host",
    Signal.INTERRUPTS: "host",
    Signal.IO_OPS: "host",
}

#: Sentinel event id for unit-frontier features (no specific event).
FRONTIER_EVENT = -1

#: Near-miss threshold fraction: an event whose *expected* (noise-free)
#: response exceeds this fraction of its screening threshold without
#: the measured delta clearing it is recorded as a near miss.
NEAR_MISS_FRACTION = 0.25

#: Magnitude buckets cap (log4 of delta/threshold, clamped).
MAX_MAGNITUDE_BUCKET = 3


def feature_id(event: int, unit: str, bucket: int) -> int:
    """Stable 64-bit id for one (event, unit, bucket) coverage triple."""
    digest = hashlib.sha256(f"{event}|{unit}|{bucket}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _magnitude_bucket(delta: float, threshold: float) -> int:
    """1 + floor(log4(delta / threshold)), clamped to the bucket cap."""
    if threshold <= 0.0:
        return 1
    ratio = max(1.0, delta / threshold)
    return 1 + min(MAX_MAGNITUDE_BUCKET, int(math.log2(ratio)) // 2)


@dataclass(frozen=True)
class CoverageSample:
    """One gadget's extracted coverage: the unit of corpus feedback.

    ``features`` are sorted feature ids; ``responses`` are
    ``(catalog event index, measured delta)`` pairs for every event
    that cleared its screening threshold; ``near`` are catalog event
    indices whose noise-free response came within
    :data:`NEAR_MISS_FRACTION` of the threshold without clearing it —
    the scheduler's set-cover hints.
    """

    features: tuple[int, ...]
    responses: tuple[tuple[int, float], ...]
    near: tuple[int, ...]


class CoverageExtractor:
    """Extracts :class:`CoverageSample` from screening measurements.

    Built once per (catalog, event subset, thresholds); extraction is a
    pure function of the measured ``(signals, deltas)`` pair, so the
    same gadget evaluated in any worker yields the same sample.
    """

    def __init__(self, catalog, event_indices, thresholds) -> None:
        self.event_indices = np.asarray(event_indices, dtype=np.int64)
        self.thresholds = np.asarray(thresholds, dtype=np.float64)
        if self.thresholds.shape != self.event_indices.shape:
            raise ValueError("thresholds must align with event_indices")
        self.weights = np.asarray(
            catalog.weights[self.event_indices], dtype=np.float64)
        self._unit_of = tuple(UNIT_OF_SIGNAL[Signal(s)]
                              for s in range(self.weights.shape[1]))

    def extract(self, signals, deltas) -> CoverageSample:
        """Coverage of one measurement.

        ``signals`` is the gadget's raw program signal vector;
        ``deltas`` the measured per-event screening deltas (aligned
        with ``event_indices``).
        """
        signals = np.asarray(signals, dtype=np.float64)
        deltas = np.asarray(deltas, dtype=np.float64)
        features: set[int] = set()

        # Unit frontier: which units does this gadget exercise at all?
        active_units = {self._unit_of[s] for s in np.flatnonzero(signals)}
        for unit in active_units:
            features.add(feature_id(FRONTIER_EVENT, unit, 0))

        # Noise-free expected response carries the sign (weights may be
        # negative); measured deltas decide *whether* an event responded,
        # with exact parity to campaign screening.
        expected = self.weights @ signals
        responding = np.flatnonzero(deltas > self.thresholds)
        responses = []
        for j in responding:
            event = int(self.event_indices[j])
            responses.append((event, float(deltas[j])))
            sign = 1 if expected[j] >= 0.0 else -1
            bucket = sign * _magnitude_bucket(float(deltas[j]),
                                              float(self.thresholds[j]))
            touched = np.flatnonzero(self.weights[j] * signals)
            for s in touched:
                features.add(feature_id(event, self._unit_of[s], bucket))

        near_mask = ((deltas <= self.thresholds)
                     & (np.abs(expected) > NEAR_MISS_FRACTION
                        * np.maximum(self.thresholds, 1e-12)))
        near = tuple(int(self.event_indices[j])
                     for j in np.flatnonzero(near_mask))
        return CoverageSample(features=tuple(sorted(features)),
                              responses=tuple(responses), near=near)


class CoverageMap:
    """Order-invariant multiset of observed coverage features.

    The map records how many corpus-admitted samples hit each feature;
    rarity (inverse hit count) feeds scheduler energies.  Its digest is
    a SHA-256 over the sorted feature ids, so two runs that observed
    the same feature *set* — in any order, from any worker partition —
    have equal digests.
    """

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, fid: int) -> bool:
        return fid in self._counts

    def count(self, fid: int) -> int:
        return self._counts.get(fid, 0)

    def new_features(self, features) -> tuple[int, ...]:
        """The subset of ``features`` not yet in the map (sorted)."""
        return tuple(sorted(f for f in set(features)
                            if f not in self._counts))

    def observe(self, features) -> int:
        """Record one sample's features; returns how many were new."""
        new = 0
        for fid in set(features):
            if fid not in self._counts:
                new += 1
            self._counts[fid] = self._counts.get(fid, 0) + 1
        return new

    def rarity(self, features) -> float:
        """Mean inverse hit count over ``features`` (0 for empty)."""
        fids = set(features)
        if not fids:
            return 0.0
        return sum(1.0 / self._counts.get(fid, 1) for fid in fids) / len(fids)

    def digest(self) -> str:
        """SHA-256 hex digest of the sorted covered-feature set."""
        h = hashlib.sha256()
        for fid in sorted(self._counts):
            h.update(fid.to_bytes(8, "big"))
        return h.hexdigest()

    def to_payload(self) -> dict:
        return {"counts": {str(fid): count
                           for fid, count in sorted(self._counts.items())}}

    @classmethod
    def from_payload(cls, payload: dict) -> "CoverageMap":
        cmap = cls()
        for fid, count in payload.get("counts", {}).items():
            cmap._counts[int(fid)] = int(count)
        return cmap
