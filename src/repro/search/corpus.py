"""Persistent, content-addressed corpus of coverage-expanding gadgets.

Each corpus entry is one minimized gadget plus the coverage signature
that earned its admission.  Entries are content-addressed by a
``cache/fingerprint``-style digest over the gadget's instruction-variant
names (unique per :class:`~repro.isa.spec.InstructionSpec`), written
atomically via ``fleet/statefile.write_json_atomic`` so a crashed
campaign never leaves a torn entry, and re-loaded on resume.  Damaged
or unparseable entries are treated as misses — counted, skipped, never
fatal — matching the measurement cache's corrupt-object policy.  The
``search.corpus.write`` fault point covers the write path for chaos
runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.cache.fingerprint import config_digest
from repro.core.fuzzer.grammar import Gadget
from repro.fleet.statefile import read_json, write_json_atomic
from repro.resilience import runtime as resilience
from repro.resilience.faults import InjectedFault, corrupt_text, stable_key
from repro.telemetry import runtime as telemetry

CORPUS_ENTRY_VERSION = 1


def gadget_digest(reset, trigger) -> str:
    """Content address of a gadget: digest over its variant names."""
    return config_digest({"reset": list(reset), "trigger": list(trigger)})


def build_name_index(legal) -> dict:
    """Variant-name -> spec map for materializing corpus entries."""
    return {spec.name: spec for spec in legal}


@dataclass(frozen=True)
class CorpusEntry:
    """One admitted seed: gadget (by variant names) + coverage record."""

    digest: str
    reset: tuple[str, ...]
    trigger: tuple[str, ...]
    features: tuple[int, ...]
    responses: tuple[tuple[int, float], ...]
    near: tuple[int, ...]
    parent: str = ""
    round_index: int = 0
    eval_index: int = 0

    def to_payload(self) -> dict:
        return {
            "version": CORPUS_ENTRY_VERSION,
            "digest": self.digest,
            "reset": list(self.reset),
            "trigger": list(self.trigger),
            "features": list(self.features),
            "responses": [[event, delta] for event, delta in self.responses],
            "near": list(self.near),
            "parent": self.parent,
            "round_index": self.round_index,
            "eval_index": self.eval_index,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CorpusEntry":
        return cls(
            digest=str(payload["digest"]),
            reset=tuple(str(n) for n in payload["reset"]),
            trigger=tuple(str(n) for n in payload["trigger"]),
            features=tuple(int(f) for f in payload["features"]),
            responses=tuple((int(e), float(d))
                            for e, d in payload["responses"]),
            near=tuple(int(e) for e in payload["near"]),
            parent=str(payload.get("parent", "")),
            round_index=int(payload.get("round_index", 0)),
            eval_index=int(payload.get("eval_index", 0)),
        )

    def materialize(self, by_name: dict) -> Gadget:
        """Rebuild the gadget from a :func:`build_name_index` map."""
        return Gadget(reset=tuple(by_name[n] for n in self.reset),
                      trigger=tuple(by_name[n] for n in self.trigger))


class Corpus:
    """In-memory corpus, optionally mirrored to a directory on disk.

    With ``directory=None`` the corpus is purely in-memory (tests,
    throwaway searches).  With a directory, every admission writes
    ``<digest>.json`` atomically and :meth:`load` restores surviving
    entries; a damaged entry is a miss (counted in ``misses`` and the
    ``search.corpus.miss`` telemetry counter), never an error.
    """

    def __init__(self, directory: "str | Path | None" = None) -> None:
        self.directory = Path(directory) if directory else None
        self.entries: dict[str, CorpusEntry] = {}
        self.misses = 0
        self.write_failures = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self.entries

    def get(self, digest: str) -> "CorpusEntry | None":
        return self.entries.get(digest)

    # -- persistence ---------------------------------------------------

    def _entry_path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{digest}.json"

    def _persist(self, entry: CorpusEntry) -> None:
        """Write one entry, honoring the ``search.corpus.write`` fault.

        ``corrupt`` mode damages the payload before an otherwise-normal
        atomic write (the on-disk entry is torn; the loader will treat
        it as a miss).  ``raise``/demoted-``kill`` faults are absorbed:
        the in-memory entry survives and the campaign continues.
        """
        path = self._entry_path(entry.digest)
        payload = entry.to_payload()
        try:
            key = stable_key(entry.digest)
            spec = resilience.check("search.corpus.write", key=key)
            if spec is not None and spec.mode == "corrupt":
                text = corrupt_text(json.dumps(payload, sort_keys=True),
                                    key=key)
                tmp = path.with_suffix(".json.tmp")
                tmp.write_text(text, encoding="utf-8")
                tmp.replace(path)
            else:
                write_json_atomic(path, payload)
        except InjectedFault:
            self.write_failures += 1
            registry = telemetry.metrics()
            if registry.enabled:
                registry.counter("search.corpus.write_failed").inc()

    def add(self, entry: CorpusEntry) -> bool:
        """Admit one entry; returns False if the digest already exists."""
        if entry.digest in self.entries:
            return False
        self.entries[entry.digest] = entry
        if self.directory is not None:
            self._persist(entry)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("search.corpus.admitted").inc()
        return True

    def load(self) -> int:
        """Restore entries from disk; returns how many were loaded.

        Every malformed file — invalid JSON, missing fields, or a
        digest that does not match the entry's own content — counts as
        a miss and is skipped.
        """
        if self.directory is None:
            return 0
        loaded = 0
        for path in sorted(self.directory.glob("*.json")):
            entry = self._load_entry(path)
            if entry is None:
                self.misses += 1
                registry = telemetry.metrics()
                if registry.enabled:
                    registry.counter("search.corpus.miss").inc()
                continue
            if entry.digest not in self.entries:
                self.entries[entry.digest] = entry
                loaded += 1
        return loaded

    def _load_entry(self, path: Path) -> "CorpusEntry | None":
        try:
            payload = read_json(path)
            entry = CorpusEntry.from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if path.stem != entry.digest:
            return None
        if gadget_digest(entry.reset, entry.trigger) != entry.digest:
            return None
        return entry

    # -- identity ------------------------------------------------------

    def replay_digest(self) -> str:
        """SHA-256 over the canonical serialization of all entries.

        Two corpora built by runs with different worker counts (or one
        resumed run) match iff they admitted exactly the same entries —
        the bit-identity gate CI compares across 1 and 4 workers.
        """
        h = hashlib.sha256()
        for digest in sorted(self.entries):
            payload = self.entries[digest].to_payload()
            h.update(json.dumps(payload, sort_keys=True,
                                separators=(",", ":")).encode())
        return h.hexdigest()

    def to_payload(self) -> dict:
        return {"entries": [self.entries[d].to_payload()
                            for d in sorted(self.entries)]}

    @classmethod
    def from_payload(cls, payload: dict,
                     directory: "str | Path | None" = None) -> "Corpus":
        corpus = cls(directory=None)
        for raw in payload.get("entries", ()):
            entry = CorpusEntry.from_payload(raw)
            corpus.entries[entry.digest] = entry
        corpus.directory = Path(directory) if directory else None
        if corpus.directory is not None:
            corpus.directory.mkdir(parents=True, exist_ok=True)
        return corpus
