"""Seeded mutation operators over gadget reset/trigger sequences.

Every operator draws exclusively from the RNG it is handed — typically
a ``derive_stream`` leaf keyed on (entropy, round, parent digest, child
index) — so the same stream produces the same mutant in any process.
Operators draw replacement instructions only from the post-cleanup
legal list, so mutants satisfy ``repro.isa.legality`` by construction,
and every fallback path preserves the :class:`Gadget` invariants
(non-empty trigger, sequence lengths within the configured cap).
"""

from __future__ import annotations

from repro.core.fuzzer.grammar import Gadget
from repro.isa.spec import InstructionSpec

#: Operator names in draw order.  ``havoc`` stacks 2-4 of the others.
MUTATION_OPERATORS = ("swap", "insert", "delete", "substitute", "splice",
                      "duplicate", "havoc")

#: Probability that a replacement draw comes from the cold pool (the
#: instructions the search has not yet tried) when one is supplied.
COLD_POOL_BIAS = 0.5


class GadgetMutator:
    """Applies seeded mutation operators to gadgets.

    Parameters
    ----------
    legal:
        The post-cleanup legal instruction variants (the only source of
        replacement instructions).
    max_sequence_length:
        Upper bound on reset and trigger lengths after mutation.
    """

    def __init__(self, legal, max_sequence_length: int = 3) -> None:
        self.legal = tuple(legal)
        if not self.legal:
            raise ValueError("mutator needs a non-empty legal list")
        if max_sequence_length < 1:
            raise ValueError("max_sequence_length must be >= 1")
        self.max_sequence_length = max_sequence_length
        by_extension: dict = {}
        for spec in self.legal:
            by_extension.setdefault(spec.extension, []).append(spec)
        self._by_extension = {ext: tuple(specs)
                              for ext, specs in by_extension.items()}

    # -- instruction draws ---------------------------------------------

    def _pick_spec(self, rng, cold) -> InstructionSpec:
        """One replacement instruction, biased toward the cold pool."""
        if cold and float(rng.random()) < COLD_POOL_BIAS:
            return cold[int(rng.integers(len(cold)))]
        return self.legal[int(rng.integers(len(self.legal)))]

    # -- operators -----------------------------------------------------

    def _swap(self, reset: list, trigger: list, rng, cold) -> None:
        """Replace one instruction at a uniformly chosen position."""
        total = len(reset) + len(trigger)
        index = int(rng.integers(total))
        spec = self._pick_spec(rng, cold)
        if index < len(reset):
            reset[index] = spec
        else:
            trigger[index - len(reset)] = spec

    def _insert(self, reset: list, trigger: list, rng, cold) -> None:
        cap = self.max_sequence_length
        sides = [seq for seq in (reset, trigger) if len(seq) < cap]
        if not sides:
            self._swap(reset, trigger, rng, cold)
            return
        side = sides[int(rng.integers(len(sides)))]
        position = int(rng.integers(len(side) + 1))
        side.insert(position, self._pick_spec(rng, cold))

    def _delete(self, reset: list, trigger: list, rng, cold) -> None:
        # Any reset slot may go; the trigger must keep one instruction.
        deletable = len(reset) + max(0, len(trigger) - 1)
        if deletable == 0:
            self._swap(reset, trigger, rng, cold)
            return
        index = int(rng.integers(deletable))
        if index < len(reset):
            del reset[index]
        else:
            del trigger[index - len(reset)]

    def _substitute(self, reset: list, trigger: list, rng, cold) -> None:
        """Extension-preserving substitution at a chosen position."""
        total = len(reset) + len(trigger)
        index = int(rng.integers(total))
        side, offset = ((reset, index) if index < len(reset)
                        else (trigger, index - len(reset)))
        current = side[offset]
        group = [spec for spec in self._by_extension[current.extension]
                 if spec.name != current.name]
        if not group:
            self._swap(reset, trigger, rng, cold)
            return
        side[offset] = group[int(rng.integers(len(group)))]

    def _splice(self, reset: list, trigger: list, rng, cold) -> None:
        """Exchange reset and trigger roles, or split a long trigger."""
        if reset:
            reset[:], trigger[:] = list(trigger), list(reset)
        elif len(trigger) > 1:
            cut = 1 + int(rng.integers(len(trigger) - 1))
            reset[:], trigger[:] = trigger[:cut], trigger[cut:]
        else:
            self._swap(reset, trigger, rng, cold)

    def _duplicate(self, reset: list, trigger: list, rng, cold) -> None:
        """Duplicate one instruction in place — response amplification.

        A trigger whose response sits just under the screening
        threshold (a scheduler near-miss) roughly doubles its delta
        when the instruction executes twice per iteration.
        """
        total = len(reset) + len(trigger)
        index = int(rng.integers(total))
        side, offset = ((reset, index) if index < len(reset)
                        else (trigger, index - len(reset)))
        if len(side) >= self.max_sequence_length:
            self._swap(reset, trigger, rng, cold)
            return
        side.insert(offset, side[offset])

    # -- entry point ---------------------------------------------------

    def mutate(self, gadget: Gadget, rng, cold=()) -> Gadget:
        """One mutated gadget, fully determined by ``rng`` draws.

        ``cold`` optionally supplies instruction specs the search has
        not evaluated yet; replacement draws prefer it with probability
        :data:`COLD_POOL_BIAS`.
        """
        reset = list(gadget.reset)
        trigger = list(gadget.trigger)
        operators = (self._swap, self._insert, self._delete,
                     self._substitute, self._splice, self._duplicate)
        choice = int(rng.integers(len(MUTATION_OPERATORS)))
        if MUTATION_OPERATORS[choice] == "havoc":
            stack = 2 + int(rng.integers(3))
            for _ in range(stack):
                operators[int(rng.integers(len(operators)))](
                    reset, trigger, rng, cold)
        else:
            operators[choice](reset, trigger, rng, cold)
        return Gadget(reset=tuple(reset), trigger=tuple(trigger))
