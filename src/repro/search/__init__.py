"""Coverage-guided gadget search.

Replaces blind grammar sampling with a feedback loop: every evaluated
gadget is reduced to a deterministic *coverage signature* over
(event row x microarchitectural unit x response-sign bucket), novel
gadgets are kept in a persistent content-addressed corpus, seeded
mutation operators expand them, and an energy-based frontier scheduler
decides which seeds to mutate next — biased toward uncovered catalog
rows.  Every random draw comes from ``derive_stream`` trees keyed on
stable labels, so a search is bit-reproducible across worker counts.

See DESIGN.md §14 for semantics and the energy rules.
"""

from repro.search.corpus import Corpus, CorpusEntry, gadget_digest
from repro.search.coverage import (CoverageExtractor, CoverageMap,
                                   CoverageSample, UNIT_OF_SIGNAL,
                                   feature_id)
from repro.search.engine import (CoverageSearch, SearchConfig, SearchError,
                                 SearchResult, blind_search, evals_to_cover)
from repro.search.mutators import MUTATION_OPERATORS, GadgetMutator
from repro.search.scheduler import FrontierScheduler, SeedState

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageExtractor",
    "CoverageMap",
    "CoverageSample",
    "CoverageSearch",
    "FrontierScheduler",
    "GadgetMutator",
    "MUTATION_OPERATORS",
    "SearchConfig",
    "SearchError",
    "SearchResult",
    "SeedState",
    "UNIT_OF_SIGNAL",
    "blind_search",
    "evals_to_cover",
    "feature_id",
    "gadget_digest",
]
