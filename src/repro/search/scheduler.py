"""Energy-based frontier scheduler for the coverage search.

Each corpus seed carries an *energy* set at admission from how much
coverage it added, multiplied up when its children keep finding new
features and decayed when a round of mutation yields nothing.  The
effective priority additionally weighs the rarity of the seed's own
features (seeds in sparsely-covered regions stay interesting) and a
set-cover bonus for seeds whose recorded *near-miss* events are still
uncovered — those are one mutation away from covering a new catalog
row.  Selection sorts by ``(-priority, digest)``: fully deterministic,
no tie depends on insertion order or worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

DEFAULT_DECAY = 0.5
DEFAULT_MIN_ENERGY = 0.05
DEFAULT_MAX_ENERGY = 16.0
DEFAULT_COVER_WEIGHT = 4.0
DEFAULT_RARITY_WEIGHT = 1.0
#: Energy multiplier when a seed's children expanded coverage.
REWARD_FACTOR = 1.5


@dataclass
class SeedState:
    """Scheduler bookkeeping for one corpus seed."""

    digest: str
    features: tuple[int, ...]
    near: tuple[int, ...]
    energy: float
    picks: int = 0
    admitted_children: int = 0

    def to_payload(self) -> dict:
        return {"digest": self.digest, "features": list(self.features),
                "near": list(self.near), "energy": self.energy,
                "picks": self.picks,
                "admitted_children": self.admitted_children}

    @classmethod
    def from_payload(cls, payload: dict) -> "SeedState":
        return cls(digest=str(payload["digest"]),
                   features=tuple(int(f) for f in payload["features"]),
                   near=tuple(int(e) for e in payload["near"]),
                   energy=float(payload["energy"]),
                   picks=int(payload.get("picks", 0)),
                   admitted_children=int(payload.get(
                       "admitted_children", 0)))


@dataclass
class FrontierScheduler:
    """Deterministic seed selection over the corpus frontier."""

    decay: float = DEFAULT_DECAY
    min_energy: float = DEFAULT_MIN_ENERGY
    max_energy: float = DEFAULT_MAX_ENERGY
    cover_weight: float = DEFAULT_COVER_WEIGHT
    rarity_weight: float = DEFAULT_RARITY_WEIGHT
    seeds: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {self.decay}")

    def admit(self, digest: str, features, near,
              new_features: int) -> SeedState:
        """Register a newly admitted corpus seed.

        Initial energy grows with the log of how many coverage features
        the seed added — a seed opening a whole unit outranks one that
        refined a magnitude bucket.
        """
        state = SeedState(digest=digest, features=tuple(features),
                          near=tuple(near),
                          energy=min(self.max_energy,
                                     1.0 + math.log1p(new_features)))
        self.seeds[digest] = state
        return state

    def credit(self, digest: str, admitted_children: int) -> None:
        """Feed back one round's outcome for a selected seed."""
        state = self.seeds.get(digest)
        if state is None:
            return
        state.picks += 1
        if admitted_children > 0:
            state.admitted_children += admitted_children
            state.energy = min(self.max_energy,
                               state.energy * REWARD_FACTOR
                               + 0.5 * admitted_children)
        else:
            state.energy = max(self.min_energy, state.energy * self.decay)

    def priority(self, state: SeedState, coverage_map,
                 uncovered_events) -> float:
        """Effective energy of one seed against the current map."""
        rarity = coverage_map.rarity(state.features)
        near_bonus = self.cover_weight * len(
            set(state.near) & set(uncovered_events))
        return state.energy * (1.0 + self.rarity_weight * rarity) + near_bonus

    def select(self, count: int, coverage_map,
               uncovered_events) -> "list[SeedState]":
        """The ``count`` highest-priority seeds, deterministically.

        Ties break on digest, so the same corpus + map always yields
        the same frontier regardless of admission order.
        """
        uncovered = set(uncovered_events)
        ranked = sorted(
            self.seeds.values(),
            key=lambda s: (-self.priority(s, coverage_map, uncovered),
                           s.digest))
        return ranked[:count]

    def to_payload(self) -> dict:
        return {"seeds": [self.seeds[d].to_payload()
                          for d in sorted(self.seeds)]}

    def restore(self, payload: dict) -> None:
        for raw in payload.get("seeds", ()):
            state = SeedState.from_payload(raw)
            self.seeds[state.digest] = state
