"""Shared utilities: RNG handling, validation helpers, simulated clock."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.clock import SimClock
from repro.utils.validation import require

__all__ = ["ensure_rng", "spawn_rng", "SimClock", "require"]
