"""The process-global runtime slot shared by every subsystem.

Telemetry, the measurement cache, fault injection, and the fleet
control plane all follow the same pattern: hot-path code never owns
the subsystem object, it asks a module-level accessor for the
process-global one, and until something is configured the accessor
hands back a shared no-op default so the disabled path costs one
function call and an attribute read.

This module is that pattern, written once. Each subsystem's
``runtime`` module owns one :class:`ProcessGlobal` and keeps its
public ``configure`` / ``disable`` / ``enabled`` / ``active`` /
``session`` API as thin wrappers, so call sites (and tests) see no
difference from the previous per-module implementations.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class ProcessGlobal(Generic[T]):
    """One process-global slot with a shared no-op default.

    Parameters
    ----------
    default:
        The disabled-state object handed back until :meth:`install` is
        called. Identity against this object is what :meth:`enabled`
        reports, so the default should be a shared singleton.
    """

    def __init__(self, default: T) -> None:
        self._default = default
        self._active = default

    @property
    def default(self) -> T:
        return self._default

    def install(self, value: T) -> T:
        """Make ``value`` the process-global instance; returns it."""
        self._active = value
        return value

    def reset(self) -> None:
        """Restore the no-op default."""
        self._active = self._default

    def enabled(self) -> bool:
        """Whether something other than the default is installed."""
        return self._active is not self._default

    def active(self) -> T:
        return self._active

    @contextmanager
    def scoped(self, value: T,
               on_exit: "Callable[[T], object] | None" = None):
        """Install ``value`` for the duration of a ``with`` block.

        The previously active instance — the default, or an outer
        scope's — is restored on exit. ``on_exit`` runs first (even
        when the body raises), which is where the telemetry runtime
        hangs its flush-on-close behaviour.
        """
        previous = self._active
        self._active = value
        try:
            yield value
        finally:
            if on_exit is not None:
                on_exit(value)
            self._active = previous
