"""A simulated wall clock counted in CPU cycles.

The simulator never consults the host's real time; everything that looks
like "seconds" is derived from an accumulated cycle count and a nominal
core frequency. This keeps every experiment deterministic.
"""

from __future__ import annotations


class SimClock:
    """Cycle-accumulating clock with a nominal frequency.

    Parameters
    ----------
    frequency_hz:
        Nominal core frequency used to convert cycles to seconds.
    """

    def __init__(self, frequency_hz: float = 3.1e9) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        self.frequency_hz = float(frequency_hz)
        self._cycles = 0

    @property
    def cycles(self) -> int:
        """Total cycles elapsed since construction or the last reset."""
        return self._cycles

    @property
    def seconds(self) -> float:
        """Elapsed simulated time in seconds."""
        return self._cycles / self.frequency_hz

    def advance(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self._cycles += int(cycles)

    def reset(self) -> None:
        """Reset the clock to zero cycles."""
        self._cycles = 0

    def __repr__(self) -> str:
        return f"SimClock(cycles={self._cycles}, seconds={self.seconds:.6f})"
