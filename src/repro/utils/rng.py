"""Deterministic random-number handling.

Every stochastic component in the simulator accepts either a seed or a
``numpy.random.Generator``. Components that own long-lived state spawn
independent child generators so that adding randomness in one module does
not perturb another module's stream.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
