"""Deterministic random-number handling.

Every stochastic component in the simulator accepts either a seed or a
``numpy.random.Generator``. Components that own long-lived state spawn
independent child generators so that adding randomness in one module does
not perturb another module's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = "int | np.random.Generator | None"


def stream_key(label: "int | str") -> int:
    """A deterministic non-negative integer key for a stream label.

    Integers pass through unchanged; strings (tenant ids, stage names)
    hash through SHA-256 so the key does not depend on Python's
    per-process string-hash seed.
    """
    if isinstance(label, int):
        return label
    digest = hashlib.sha256(str(label).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_stream(entropy: int, *labels: "int | str"
                  ) -> np.random.Generator:
    """The RNG stream owned by ``labels`` under root ``entropy``.

    Derived with the labels as a ``SeedSequence`` spawn key:
    statistically independent across label tuples, and — unlike
    drawing per-owner seeds from one sequential stream — independent
    of how many other streams exist or in which order they are
    created. This is what lets a fuzzing campaign re-derive gadget
    *i*'s stream regardless of sharding, and the fleet provisioner
    reproduce tenant T's noise sequence with no other tenant present.
    """
    if not labels:
        raise ValueError("derive_stream needs at least one label")
    key = tuple(stream_key(label) for label in labels)
    seq = np.random.SeedSequence(entropy=entropy, spawn_key=key)
    return np.random.default_rng(seq)


def ensure_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
