"""Logging configuration for the CLI and library loggers.

Library modules log through module-level loggers under the ``repro``
namespace and never print; the CLI installs one stdout handler on the
``repro`` root so ``-v``/``-q`` control everything — user-facing
summaries (INFO), shard-level progress (DEBUG), and warnings — from
one place.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: Namespace root every repro logger hangs off.
ROOT_LOGGER = "repro"


class _StdoutHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stdout`` at emit time.

    Binding stdout at construction leaves the handler pointing at a
    dead stream once stdout is swapped (pytest capture, notebook
    re-execution); every later library warning then raises
    "I/O operation on closed file" instead of printing.
    """

    def __init__(self) -> None:
        super().__init__(sys.stdout)

    @property
    def stream(self) -> "IO[str]":
        return sys.stdout

    @stream.setter
    def stream(self, value: "IO[str]") -> None:
        pass  # the base __init__ assigns; stdout is always live-resolved


def configure_cli_logging(verbose: int = 0, quiet: bool = False,
                          stream: "IO[str] | None" = None
                          ) -> logging.Logger:
    """Install a fresh stdout handler on the ``repro`` root logger.

    ``quiet`` raises the threshold to WARNING (summaries suppressed),
    ``verbose`` lowers it to DEBUG and switches to an annotated format.
    Reconfiguring replaces the previous handler, so repeated in-process
    invocations (tests, notebooks) never double-log and always write to
    the *current* ``sys.stdout``.
    """
    if quiet:
        level = logging.WARNING
    elif verbose:
        level = logging.DEBUG
    else:
        level = logging.INFO
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = (logging.StreamHandler(stream) if stream is not None
               else _StdoutHandler())
    pattern = ("%(levelname).1s %(name)s: %(message)s" if verbose
               else "%(message)s")
    handler.setFormatter(logging.Formatter(pattern))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
