"""Small validation helpers used across the library."""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)
