"""Aegis: protecting confidential VMs from HPC side channels.

A full reproduction of "Protecting Confidential Virtual Machines from
Hardware Performance Counter Side Channels" (DSN 2024) on a simulated
substrate: a microarchitectural CPU model with per-processor HPC event
catalogs, an SEV-style guest/hypervisor boundary, synthetic victim
workloads, numpy attack models, and the paper's three-module defense —
Application Profiler, Event Fuzzer and Event Obfuscator.

Quickstart::

    from repro import Aegis, WebsiteWorkload, TraceCollector
    from repro import WebsiteFingerprintingAttack

    workload = WebsiteWorkload()
    aegis = Aegis(workload, epsilon=1.0, rng=0)
    deployment = aegis.deploy(secrets=workload.secrets[:10])

    collector = TraceCollector(workload, obfuscator=deployment.obfuscator)
    dataset = collector.collect(runs_per_secret=20,
                                secrets=workload.secrets[:10])
    attack = WebsiteFingerprintingAttack(num_sites=10)
    print(attack.run(dataset).test_accuracy)  # ~random guess
"""

from repro.core import (
    Aegis,
    AegisDeployment,
    ApplicationProfiler,
    DstarMechanism,
    EventFuzzer,
    EventObfuscator,
    FuzzingReport,
    Gadget,
    LaplaceMechanism,
    ProfilerReport,
)
from repro.attacks import (
    DEFAULT_ATTACK_EVENTS,
    KeystrokeSniffingAttack,
    ModelExtractionAttack,
    TraceCollector,
    TraceDataset,
    WebsiteFingerprintingAttack,
)
from repro.cpu import Core, processor_catalog
from repro.vm import GuestVM, Hypervisor, PerfEventMonitor
from repro.workloads import (
    ALEXA_SITES,
    DNN_MODELS,
    DnnWorkload,
    KeystrokeWorkload,
    WebsiteWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "ALEXA_SITES",
    "Aegis",
    "AegisDeployment",
    "ApplicationProfiler",
    "Core",
    "DEFAULT_ATTACK_EVENTS",
    "DNN_MODELS",
    "DnnWorkload",
    "DstarMechanism",
    "EventFuzzer",
    "EventObfuscator",
    "FuzzingReport",
    "Gadget",
    "GuestVM",
    "Hypervisor",
    "KeystrokeSniffingAttack",
    "KeystrokeWorkload",
    "LaplaceMechanism",
    "ModelExtractionAttack",
    "PerfEventMonitor",
    "ProfilerReport",
    "TraceCollector",
    "TraceDataset",
    "WebsiteFingerprintingAttack",
    "WebsiteWorkload",
    "__version__",
    "processor_catalog",
]
