"""Flat simulated memory map with named pages.

The fuzzer's measurement harness places gadget code "in a dedicated page
... between a special prolog and epilog" and points all memory operands
at "a pre-allocated writable data page". This module provides those
pages, address allocation, and bounds checks.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SIZE = 4096


@dataclass(frozen=True)
class Page:
    """One mapped page: base address, size and protection."""

    name: str
    base: int
    size: int = PAGE_SIZE
    writable: bool = True
    executable: bool = False

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size


class MemoryMap:
    """Allocates non-overlapping pages in a flat address space."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._pages: dict[str, Page] = {}

    def map_page(self, name: str, size: int = PAGE_SIZE, writable: bool = True,
                 executable: bool = False) -> Page:
        """Map a new page; size is rounded up to a page multiple."""
        if name in self._pages:
            raise ValueError(f"page {name!r} already mapped")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        size = ((size + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
        page = Page(name=name, base=self._next, size=size,
                    writable=writable, executable=executable)
        self._pages[name] = page
        self._next += size + PAGE_SIZE  # guard gap between pages
        return page

    def page(self, name: str) -> Page:
        """Look up a mapped page by name."""
        try:
            return self._pages[name]
        except KeyError as exc:
            raise KeyError(f"page {name!r} is not mapped") from exc

    def page_of(self, address: int) -> Page | None:
        """The page containing ``address``, or None if unmapped."""
        for page in self._pages.values():
            if page.contains(address):
                return page
        return None

    def check_write(self, address: int) -> None:
        """Raise ``PermissionError`` unless ``address`` is writable."""
        page = self.page_of(address)
        if page is None:
            raise PermissionError(f"write to unmapped address {address:#x}")
        if not page.writable:
            raise PermissionError(
                f"write to read-only page {page.name!r} at {address:#x}")

    @property
    def pages(self) -> list[Page]:
        return list(self._pages.values())
