"""HPC event model and per-processor event catalogs.

A processor exposes thousands of monitorable events (paper Table I:
6166 on the Intel Xeon E5-1650, 1903 on the AMD EPYC 7252), split across
types (Table II): Hardware (H), Software (S), Hardware-Cache (HC),
Tracepoint (T), Raw CPU (R) and Other (O). Only a small subset responds
to activity *inside* a guest VM — mostly H/HC and raw events — which is
why the paper's warm-up profiling discards >90% of the list.

Each event here is a sparse linear response over the microarchitectural
signal vector plus measurement noise:

    count = (W_event . signals) * (1 + jitter) + read_noise

The whole catalog is evaluated as one matrix product, so profiling all
1903 AMD events over thousands of time slices is a single numpy call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cpu.signals import HOST_ONLY_SIGNALS, NUM_SIGNALS, Signal
from repro.utils.rng import ensure_rng


class EventType(enum.Enum):
    """perf-subsystem event type (paper Table II)."""

    HARDWARE = "H"
    SOFTWARE = "S"
    HW_CACHE = "HC"
    TRACEPOINT = "T"
    RAW = "R"
    OTHER = "O"


@dataclass(frozen=True)
class HpcEventSpec:
    """Metadata for one HPC event (weights live in the catalog matrix)."""

    index: int
    name: str
    event_type: EventType


#: Curated hardware (H) events present on every model: the perf generic
#: hardware events plus the counters the paper's attacks monitor.
_HARDWARE_EVENTS: tuple[tuple[str, dict[Signal, float]], ...] = (
    ("CPU_CYCLES", {Signal.CYCLES: 1.0}),
    ("INSTRUCTIONS", {Signal.INSTRUCTIONS: 1.0}),
    ("RETIRED_UOPS", {Signal.UOPS: 1.0}),
    ("CACHE_REFERENCES", {Signal.LLC_ACCESS: 1.0}),
    ("CACHE_MISSES", {Signal.LLC_MISS: 1.0}),
    ("BRANCH_INSTRUCTIONS", {Signal.BRANCHES: 1.0}),
    ("BRANCH_MISSES", {Signal.BRANCH_MISS: 1.0}),
    ("BUS_CYCLES", {Signal.CYCLES: 0.125}),
    ("STALLED_CYCLES_FRONTEND", {Signal.L1I_MISS: 8.0, Signal.BRANCH_MISS: 12.0}),
    ("STALLED_CYCLES_BACKEND", {Signal.L1D_MISS: 6.0, Signal.LLC_MISS: 80.0}),
    ("REF_CPU_CYCLES", {Signal.CYCLES: 1.0}),
    ("RETIRED_INSTRUCTIONS_FAR", {Signal.INSTRUCTIONS: 0.001,
                                  Signal.INTERRUPTS: 2.0}),
    ("RETIRED_BRANCH_TAKEN", {Signal.BRANCHES: 0.6}),
    ("RETIRED_NEAR_RETURNS", {Signal.RETURNS: 1.0}),
    ("RETIRED_CALLS", {Signal.CALLS: 1.0}),
    ("RETIRED_COND_BRANCHES", {Signal.COND_BRANCHES: 1.0}),
    ("DIV_BUSY_CYCLES", {Signal.DIV_OPS: 20.0}),
    ("MUL_OPS_RETIRED", {Signal.MUL_OPS: 1.0}),
    ("FP_OPS_RETIRED", {Signal.FP_OPS: 1.0}),
    ("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR", {Signal.SIMD_OPS: 1.0}),
    ("RETIRED_X87_FP_OPS", {Signal.X87_OPS: 1.0}),
    ("RETIRED_SERIALIZING_OPS", {Signal.SERIALIZING: 1.0}),
    ("RETIRED_NOP_INSTRUCTIONS", {Signal.NOP_OPS: 1.0}),
    ("INTERRUPTS_TAKEN", {Signal.INTERRUPTS: 1.0}),
)

#: Curated hardware-cache (HC) events: {L1D,L1I,LLC,DTLB,ITLB,BPU,NODE}
#: x {READ,WRITE,PREFETCH} x {ACCESS,MISS} grid plus pipe-level raws.
_HC_COMPONENTS: tuple[tuple[str, Signal, Signal], ...] = (
    # (component, access signal, miss signal)
    ("L1D", Signal.L1D_ACCESS, Signal.L1D_MISS),
    ("L1I", Signal.INSTRUCTIONS, Signal.L1I_MISS),
    ("LL", Signal.LLC_ACCESS, Signal.LLC_MISS),
    ("DTLB", Signal.LOADS, Signal.DTLB_MISS),
    ("ITLB", Signal.INSTRUCTIONS, Signal.ITLB_MISS),
    ("BPU", Signal.BRANCHES, Signal.BRANCH_MISS),
    ("NODE", Signal.MEM_READS, Signal.MEM_WRITES),
)

#: Curated raw (R) events every catalog includes, with AMD-style names;
#: these are the events the paper's attacks and case studies use.
_NAMED_RAW_EVENTS: tuple[tuple[str, dict[Signal, float]], ...] = (
    ("LS_DISPATCH", {Signal.LOADS: 1.0, Signal.STORES: 1.0}),
    ("MAB_ALLOCATION_BY_PIPE", {Signal.MAB_ALLOC: 1.0}),
    ("DATA_CACHE_REFILLS_FROM_SYSTEM", {Signal.MEM_READS: 1.0}),
    ("MEM_LOAD_UOPS_RETIRED:L1_HIT", {Signal.L1D_ACCESS: 1.0,
                                      Signal.L1D_MISS: -1.0}),
    ("MEM_LOAD_UOPS_RETIRED:L1_MISS", {Signal.L1D_MISS: 1.0}),
    ("L2_CACHE_ACCESSES", {Signal.L2_ACCESS: 1.0}),
    ("L2_CACHE_MISSES", {Signal.L2_MISS: 1.0}),
    ("L1_DTLB_MISSES", {Signal.DTLB_MISS: 1.0}),
    ("L1_ITLB_MISSES", {Signal.ITLB_MISS: 1.0}),
    ("PREFETCH_INSTRS_DISPATCHED", {Signal.PREFETCHES: 1.0}),
    ("CACHE_LINE_FLUSHES", {Signal.CACHE_FLUSHES: 1.0}),
    ("STORE_TO_LOAD_FORWARDS", {Signal.STORES: 0.35}),
    ("UOPS_DISPATCHED_PORT_0", {Signal.UOPS: 0.22}),
    ("UOPS_DISPATCHED_PORT_1", {Signal.UOPS: 0.21}),
    ("UOPS_DISPATCHED_PORT_5", {Signal.UOPS: 0.18}),
)

#: Signal pools used when generating the anonymous raw-event tail. Events
#: are grouped so that some respond only to signal families a given
#: workload may never exercise — this is what makes the surviving event
#: count workload-dependent, as the paper observes.
_RAW_SIGNAL_POOLS: tuple[tuple[Signal, ...], ...] = (
    # General execution: touched by every workload.
    (Signal.INSTRUCTIONS, Signal.UOPS, Signal.CYCLES, Signal.LOADS,
     Signal.STORES, Signal.L1D_ACCESS, Signal.BRANCHES, Signal.COND_BRANCHES,
     Signal.STACK_OPS, Signal.MUL_OPS, Signal.BIT_OPS),
    # Memory-system events.
    (Signal.L1D_MISS, Signal.L2_ACCESS, Signal.L2_MISS, Signal.LLC_ACCESS,
     Signal.LLC_MISS, Signal.MEM_READS, Signal.MEM_WRITES, Signal.MAB_ALLOC,
     Signal.DTLB_MISS, Signal.ITLB_MISS, Signal.PREFETCHES),
    # Branch/frontend events.
    (Signal.BRANCH_MISS, Signal.L1I_MISS, Signal.CALLS, Signal.RETURNS),
    # FP/SIMD events (idle for non-numeric workloads).
    (Signal.FP_OPS, Signal.SIMD_OPS, Signal.DIV_OPS),
    # Exotic: x87/crypto/flush signals most workloads never trigger.
    (Signal.X87_OPS, Signal.CRYPTO_OPS, Signal.CACHE_FLUSHES,
     Signal.TLB_FLUSHES, Signal.SERIALIZING, Signal.NOP_OPS),
)

_RAW_NAME_PREFIXES = (
    "LS", "IC", "DC", "BP", "EX", "DE", "FP", "L2", "L3", "MAB", "TLB", "UOP",
)
_RAW_NAME_SUFFIXES = (
    "DISPATCH", "FILL", "REFILL", "STALL", "RETIRED", "ALLOC", "EVICT",
    "REPLAY", "CONFLICT", "BYPASS", "WIDTH", "LATENCY",
)


@dataclass(frozen=True)
class ProcessorModel:
    """Catalog-shaping parameters for one processor model."""

    name: str
    family: str
    total_events: int
    type_shares: dict[EventType, float]
    tracepoint_sensitive_share: float
    raw_sensitive_share: float
    hpc_registers: int = 4
    seed: int = 0


INTEL_E5_1650_MODEL = ProcessorModel(
    name="intel-xeon-e5-1650", family="intel-e5", total_events=6166,
    type_shares={EventType.HARDWARE: 0.0039, EventType.SOFTWARE: 0.0031,
                 EventType.HW_CACHE: 0.0100, EventType.TRACEPOINT: 0.3615,
                 EventType.RAW: 0.0775, EventType.OTHER: 0.5440},
    tracepoint_sensitive_share=0.0798, raw_sensitive_share=0.9937, seed=11)

# The E5-4617 generates the *same* 6166-event base catalog (same seed and
# count, so the raw-event tail is name-identical), then 8 events are
# renamed and 6 added: 6172 total, 14 different — Table I's family
# similarity.
INTEL_E5_4617_MODEL = ProcessorModel(
    name="intel-xeon-e5-4617", family="intel-e5", total_events=6166,
    type_shares=INTEL_E5_1650_MODEL.type_shares,
    tracepoint_sensitive_share=0.0798, raw_sensitive_share=0.9937, seed=11)

AMD_EPYC_7252_MODEL = ProcessorModel(
    name="amd-epyc-7252", family="amd-epyc", total_events=1903,
    type_shares={EventType.HARDWARE: 0.0126, EventType.SOFTWARE: 0.0100,
                 EventType.HW_CACHE: 0.0326, EventType.TRACEPOINT: 0.8717,
                 EventType.RAW: 0.0520, EventType.OTHER: 0.0211},
    tracepoint_sensitive_share=0.0157, raw_sensitive_share=0.9183, seed=23)

AMD_EPYC_7313P_MODEL = ProcessorModel(
    name="amd-epyc-7313p", family="amd-epyc", total_events=1903,
    type_shares=AMD_EPYC_7252_MODEL.type_shares,
    tracepoint_sensitive_share=0.0157, raw_sensitive_share=0.9183, seed=23)

PROCESSOR_MODELS: dict[str, ProcessorModel] = {
    m.name: m for m in (INTEL_E5_1650_MODEL, INTEL_E5_4617_MODEL,
                        AMD_EPYC_7252_MODEL, AMD_EPYC_7313P_MODEL)
}

_HOST_ONLY_INDICES = np.array(sorted(int(s) for s in HOST_ONLY_SIGNALS))
_GUEST_INDICES = np.array([i for i in range(NUM_SIGNALS)
                           if i not in set(_HOST_ONLY_INDICES.tolist())])


class EventCatalog:
    """All monitorable events of one processor model.

    Attributes
    ----------
    specs:
        Per-event metadata, index-aligned with the weight matrix.
    weights:
        ``(num_events, NUM_SIGNALS)`` response matrix.
    noise_rel / noise_abs:
        Per-event relative and absolute measurement-noise scales.
    """

    def __init__(self, model: ProcessorModel) -> None:
        self.model = model
        self.specs: list[HpcEventSpec] = []
        names: list[str] = []
        types: list[EventType] = []
        rows: list[np.ndarray] = []
        rng = np.random.default_rng(model.seed)
        self._generate(rng, names, types, rows)
        if model.name == "intel-xeon-e5-4617":
            self._differentiate_sibling(rng, names, types, rows, extra=6,
                                        renamed=14)
        self.weights = np.vstack(rows)
        self.specs = [HpcEventSpec(i, n, t)
                      for i, (n, t) in enumerate(zip(names, types))]
        self._by_name = {s.name: s for s in self.specs}
        num = len(self.specs)
        noise_rng = np.random.default_rng(model.seed + 1)
        self.noise_rel = 0.01 + 0.02 * noise_rng.random(num)
        self.noise_abs = 1.0 + 4.0 * noise_rng.random(num)
        # An event is guest-sensitive when it responds to any signal a
        # guest process can generate.
        self.guest_sensitive = (
            np.abs(self.weights[:, _GUEST_INDICES]).sum(axis=1) > 0)

    # -- generation -------------------------------------------------

    def _generate(self, rng: np.random.Generator, names: list[str],
                  types: list[EventType], rows: list[np.ndarray]) -> None:
        model = self.model
        counts = {t: int(round(model.total_events * share))
                  for t, share in model.type_shares.items()}
        # Adjust rounding drift on the largest bucket.
        drift = model.total_events - sum(counts.values())
        largest = max(counts, key=lambda t: counts[t])
        counts[largest] += drift

        self._gen_hardware(names, types, rows, counts[EventType.HARDWARE])
        self._gen_software(rng, names, types, rows, counts[EventType.SOFTWARE])
        self._gen_hw_cache(names, types, rows, counts[EventType.HW_CACHE])
        self._gen_tracepoints(rng, names, types, rows,
                              counts[EventType.TRACEPOINT])
        self._gen_raw(rng, names, types, rows, counts[EventType.RAW])
        self._gen_other(names, types, rows, counts[EventType.OTHER])

    @staticmethod
    def _row(weights: dict[Signal, float]) -> np.ndarray:
        row = np.zeros(NUM_SIGNALS)
        for sig, w in weights.items():
            row[int(sig)] = w
        return row

    def _gen_hardware(self, names, types, rows, count: int) -> None:
        pool = list(_HARDWARE_EVENTS)
        for i in range(count):
            name, weights = pool[i % len(pool)]
            if i >= len(pool):
                name = f"{name}:CYCLE_{i // len(pool)}"
            names.append(name)
            types.append(EventType.HARDWARE)
            rows.append(self._row(weights))

    def _gen_software(self, rng, names, types, rows, count: int) -> None:
        base = ("CPU_CLOCK", "TASK_CLOCK", "PAGE_FAULTS", "CONTEXT_SWITCHES",
                "CPU_MIGRATIONS", "MINOR_FAULTS", "MAJOR_FAULTS",
                "ALIGNMENT_FAULTS", "EMULATION_FAULTS", "DUMMY", "BPF_OUTPUT",
                "CGROUP_SWITCHES")
        weights_by_name = {
            "PAGE_FAULTS": {Signal.PAGE_FAULTS: 1.0},
            "MINOR_FAULTS": {Signal.PAGE_FAULTS: 0.9},
            "MAJOR_FAULTS": {Signal.PAGE_FAULTS: 0.1},
            "CONTEXT_SWITCHES": {Signal.CONTEXT_SWITCHES: 1.0},
            "CGROUP_SWITCHES": {Signal.CONTEXT_SWITCHES: 0.5},
        }
        for i in range(count):
            name = base[i % len(base)]
            if i >= len(base):
                name = f"{name}:{i // len(base)}"
            names.append(name)
            types.append(EventType.SOFTWARE)
            rows.append(self._row(weights_by_name.get(base[i % len(base)], {})))

    def _gen_hw_cache(self, names, types, rows, count: int) -> None:
        grid: list[tuple[str, dict[Signal, float]]] = []
        for comp, access_sig, miss_sig in _HC_COMPONENTS:
            for op, op_scale in (("READ", 0.7), ("WRITE", 0.3),
                                 ("PREFETCH", 0.05)):
                grid.append((f"HW_CACHE_{comp}:{op}:ACCESS",
                             {access_sig: op_scale}))
                grid.append((f"HW_CACHE_{comp}:{op}:MISS",
                             {miss_sig: op_scale}))
        for i in range(count):
            name, weights = grid[i % len(grid)]
            if i >= len(grid):
                name = f"{name}:{i // len(grid)}"
            names.append(name)
            types.append(EventType.HW_CACHE)
            rows.append(self._row(weights))

    def _gen_tracepoints(self, rng, names, types, rows, count: int) -> None:
        subsystems = ("syscalls", "sched", "irq", "block", "net", "kvm",
                      "kmem", "ext4", "writeback", "timer", "workqueue",
                      "power", "signal", "task", "module", "rcu", "xdp")
        sensitive = int(round(count * self.model.tracepoint_sensitive_share))
        for i in range(count):
            subsystem = subsystems[i % len(subsystems)]
            names.append(f"{subsystem}:tp_{i:04d}")
            types.append(EventType.TRACEPOINT)
            if i < sensitive:
                # The few tracepoints that do reflect guest activity:
                # kvm exits, scheduler ticks attributable to the vCPU
                # thread. They respond weakly to guest execution volume.
                weights = {Signal.UOPS: 1e-5 * (1 + rng.random()),
                           Signal.MEM_READS: 1e-3 * rng.random()}
                rows.append(self._row(weights))
            else:
                rows.append(self._row({Signal.SYSCALLS: rng.random(),
                                       Signal.IO_OPS: rng.random() * 0.5}))

    def _gen_raw(self, rng, names, types, rows, count: int) -> None:
        named = list(_NAMED_RAW_EVENTS)
        sensitive = int(round(count * self.model.raw_sensitive_share))
        used_names: set[str] = set()
        for i in range(count):
            if i < len(named):
                name, weights = named[i]
                rows.append(self._row(weights))
            elif i < sensitive:
                pool = _RAW_SIGNAL_POOLS[int(rng.integers(len(_RAW_SIGNAL_POOLS)))]
                k = int(rng.integers(1, min(3, len(pool)) + 1))
                chosen = rng.choice(len(pool), size=k, replace=False)
                weights = {pool[int(c)]: float(0.1 + 0.9 * rng.random())
                           for c in chosen}
                prefix = _RAW_NAME_PREFIXES[int(rng.integers(len(_RAW_NAME_PREFIXES)))]
                suffix = _RAW_NAME_SUFFIXES[int(rng.integers(len(_RAW_NAME_SUFFIXES)))]
                name = f"{prefix}_{suffix}_{i:04d}"
                rows.append(self._row(weights))
            else:
                # Raw events wired to host-side or dead umasks.
                name = f"RESERVED_UMASK_{i:04d}"
                rows.append(self._row({Signal.INTERRUPTS: rng.random()}))
            while name in used_names:
                name = f"{name}_DUP"
            used_names.add(name)
            names.append(name)
            types.append(EventType.RAW)

    def _gen_other(self, names, types, rows, count: int) -> None:
        kinds = ("breakpoint:mem", "breakpoint:inst", "msr:aperf", "msr:mperf",
                 "uncore:cbox", "uncore:imc", "power:energy-pkg",
                 "power:energy-ram", "cstate:c3", "cstate:c6")
        for i in range(count):
            name = f"{kinds[i % len(kinds)]}:{i:04d}"
            names.append(name)
            types.append(EventType.OTHER)
            rows.append(self._row({}))

    def _differentiate_sibling(self, rng, names, types, rows, extra: int,
                               renamed: int) -> None:
        """Make the E5-4617 catalog differ by a handful of events.

        Table I reports that processors in the same family share nearly
        all events: the E5-4617 has 6172 events of which 14 differ from
        the E5-1650.
        """
        raw_indices = [i for i, t in enumerate(types) if t is EventType.RAW]
        for j in range(renamed - extra):
            idx = raw_indices[-(j + 1)]
            names[idx] = f"{names[idx]}_4617"
        for j in range(extra):
            names.append(f"E5_4617_UNCORE_EXT_{j}")
            types.append(EventType.RAW)
            rows.append(self._row({Signal.LLC_MISS: 0.5 + 0.5 * rng.random()}))

    # -- queries ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def get(self, name: str) -> HpcEventSpec:
        """Look up an event by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"unknown HPC event {name!r}") from exc

    def index_of(self, name: str) -> int:
        """Row index of an event in the weight matrix."""
        return self.get(name).index

    def type_histogram(self) -> dict[EventType, int]:
        """Event count per type (paper Table II, first row)."""
        hist: dict[EventType, int] = {t: 0 for t in EventType}
        for spec in self.specs:
            hist[spec.event_type] += 1
        return hist

    def names_shared_with(self, other: "EventCatalog") -> int:
        """How many event names this catalog shares with ``other``."""
        mine = {s.name for s in self.specs}
        theirs = {s.name for s in other.specs}
        return len(mine & theirs)

    # -- measurement ------------------------------------------------

    def counts_for(self, signals: np.ndarray,
                   rng: "int | np.random.Generator | None" = None,
                   event_indices: np.ndarray | None = None) -> np.ndarray:
        """Event counts for one signal vector (or a batch).

        Parameters
        ----------
        signals:
            Shape ``(NUM_SIGNALS,)`` or ``(T, NUM_SIGNALS)``.
        rng:
            Measurement-noise source; ``None`` disables noise.
        event_indices:
            Restrict evaluation to these catalog rows.
        """
        weights = self.weights
        noise_rel = self.noise_rel
        noise_abs = self.noise_abs
        if event_indices is not None:
            weights = weights[event_indices]
            noise_rel = noise_rel[event_indices]
            noise_abs = noise_abs[event_indices]
        counts = signals @ weights.T
        counts = np.maximum(counts, 0.0)
        if rng is not None:
            gen = ensure_rng(rng)
            sigma = noise_rel * counts + noise_abs
            counts = np.maximum(counts + gen.normal(0.0, sigma), 0.0)
        return counts


_CATALOG_CACHE: dict[str, EventCatalog] = {}


def processor_catalog(model_name: str) -> EventCatalog:
    """Return (and cache) the event catalog for a processor model."""
    if model_name not in PROCESSOR_MODELS:
        raise KeyError(
            f"unknown processor model {model_name!r}; known: "
            f"{sorted(PROCESSOR_MODELS)}")
    if model_name not in _CATALOG_CACHE:
        _CATALOG_CACHE[model_name] = EventCatalog(PROCESSOR_MODELS[model_name])
    return _CATALOG_CACHE[model_name]
