"""A gshare-style branch predictor.

Conditional-branch gadgets change branch-prediction HPC events; the
detailed execution path therefore needs a predictor whose mispredict
counts depend on actual branch history, not a fixed rate.
"""

from __future__ import annotations

import numpy as np


class BranchPredictor:
    """Two-bit saturating counters indexed by PC xor global history."""

    def __init__(self, table_bits: int = 12, history_bits: int = 8) -> None:
        if table_bits < 1 or table_bits > 24:
            raise ValueError(f"table_bits out of range: {table_bits}")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table = np.full(1 << table_bits, 1, dtype=np.int8)  # weakly NT
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        mask = (1 << self.table_bits) - 1
        history = self._history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ history) & mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return bool(self._table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the branch outcome; returns True on mispredict."""
        index = self._index(pc)
        predicted = self._table[index] >= 2
        mispredicted = bool(predicted) != bool(taken)
        if taken and self._table[index] < 3:
            self._table[index] += 1
        elif not taken and self._table[index] > 0:
            self._table[index] -= 1
        self._history = ((self._history << 1) | int(taken))
        self.predictions += 1
        self.mispredictions += int(mispredicted)
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def reset(self) -> None:
        """Clear predictor state (e.g. across VM world switches)."""
        self._table.fill(1)
        self._history = 0
