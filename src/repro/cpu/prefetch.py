"""A stride-based hardware prefetcher.

Prefetchers matter to the fuzzer's world: a streaming trigger sequence
(REP MOVS, sequential loads) trains the stride detector, and the
prefetches it issues perturb the prefetch/MAB/fill events — another
family of gadget root causes. The model is a classic reference
predictor: per-PC stride entries with a 2-bit confidence counter that
issue a configurable prefetch depth once confident.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class StrideEntry:
    """One prefetch-table entry."""

    last_address: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-PC stride detector issuing next-line prefetches.

    Parameters
    ----------
    table_entries:
        Capacity of the PC-indexed table (LRU replacement).
    depth:
        Cache lines prefetched ahead once the stride is confident.
    line_size:
        Cache line size used for next-line arithmetic.
    """

    def __init__(self, table_entries: int = 16, depth: int = 2,
                 line_size: int = 64) -> None:
        if table_entries < 1 or depth < 1:
            raise ValueError("table_entries and depth must be >= 1")
        self.table_entries = table_entries
        self.depth = depth
        self.line_size = line_size
        self._table: OrderedDict[int, StrideEntry] = OrderedDict()
        self.issued = 0
        self.trained = 0

    def observe(self, pc: int, address: int) -> list[int]:
        """Record a demand access; returns addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
            self._table[pc] = StrideEntry(last_address=address)
            return []
        self._table.move_to_end(pc)
        stride = address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            entry.stride = stride
        entry.last_address = address
        if entry.confidence >= 2 and entry.stride != 0:
            self.trained += 1
            prefetches = [address + entry.stride * (i + 1)
                          for i in range(self.depth)]
            self.issued += len(prefetches)
            return prefetches
        return []

    def reset(self) -> None:
        """Flush the table (context/world switch)."""
        self._table.clear()
