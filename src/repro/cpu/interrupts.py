"""External interference: timer interrupts and scheduler noise.

HPCs "cannot count performance events precisely because of external
interference, e.g. hardware interrupts" (paper challenge C2). This
module injects that non-determinism: a Poisson interrupt process whose
rate drops dramatically when the core is isolated (``isolcpus``) and the
process pinned, exactly the mitigations the fuzzer's harness applies.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class InterruptSource:
    """Poisson interrupt generator over simulated time.

    Parameters
    ----------
    rate_hz:
        Baseline interrupt rate on a normally scheduled core.
    isolated_rate_hz:
        Residual rate once the core is isolated and the process pinned.
    """

    def __init__(self, rate_hz: float = 1000.0, isolated_rate_hz: float = 2.0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if rate_hz < 0 or isolated_rate_hz < 0:
            raise ValueError("interrupt rates must be non-negative")
        self.rate_hz = float(rate_hz)
        self.isolated_rate_hz = float(isolated_rate_hz)
        self.isolated = False
        self.pinned = False
        self._rng = ensure_rng(rng)
        self.total_interrupts = 0

    @property
    def effective_rate_hz(self) -> float:
        """Current interrupt rate given isolation/pinning state."""
        if self.isolated and self.pinned:
            return self.isolated_rate_hz
        if self.isolated or self.pinned:
            return (self.rate_hz + self.isolated_rate_hz) / 8.0
        return self.rate_hz

    def isolate_core(self) -> None:
        """Apply ``isolcpus``-style isolation to this core."""
        self.isolated = True

    def pin_process(self) -> None:
        """Pin the measured process to this core."""
        self.pinned = True

    def interrupts_during(self, seconds: float) -> int:
        """Sample how many interrupts land in a window of ``seconds``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        lam = self.effective_rate_hz * seconds
        count = int(self._rng.poisson(lam)) if lam > 0 else 0
        self.total_interrupts += count
        return count
