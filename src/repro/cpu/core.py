"""The simulated CPU core.

Two execution granularities share the signal vocabulary:

- :meth:`Core.execute_program` — the *detailed* path. Runs placed
  instructions one by one against real cache/branch/TLB state. This is
  what the Event Fuzzer measures gadgets on: a CLFLUSH really evicts the
  line, so the following load really misses.
- :meth:`Core.execute_block` — the *aggregate* path. Consumes an
  :class:`ActivityBlock` (per-slice signal counts emitted by a workload
  phase program), adds interrupt interference, and advances the HPC
  register file. Guest applications execute millions of instructions per
  1 ms sampling slice; this path makes that affordable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cpu.branch import BranchPredictor
from repro.cpu.caches import CacheHierarchy
from repro.cpu.events import EventCatalog, processor_catalog
from repro.cpu.hpc import HpcRegisterFile
from repro.cpu.interrupts import InterruptSource
from repro.cpu.memory import MemoryMap, Page
from repro.cpu.pipeline import Pipeline, PipelinePenalties
from repro.cpu.prefetch import StridePrefetcher
from repro.cpu.signals import NUM_SIGNALS, Signal, zero_signals
from repro.cpu.tlb import Tlb
from repro.isa.spec import Instruction, InstructionClass, Program
from repro.utils.clock import SimClock
from repro.utils.rng import ensure_rng


@dataclass
class ActivityBlock:
    """Aggregate guest activity for one sampling slice.

    ``signals`` holds the slice's microarchitectural signal counts
    (except CYCLES, which the core derives); ``duration_s`` is the
    nominal wall-clock length of the slice.
    """

    signals: np.ndarray
    duration_s: float = 1e-3

    def __post_init__(self) -> None:
        self.signals = np.asarray(self.signals, dtype=np.float64)
        if self.signals.shape != (NUM_SIGNALS,):
            raise ValueError(
                f"signals must have shape ({NUM_SIGNALS},), got "
                f"{self.signals.shape}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")


@dataclass
class ExecutionResult:
    """Outcome of a detailed program execution."""

    signals: np.ndarray
    cycles: int
    rdpmc_values: list[int] = field(default_factory=list)
    faulted: bool = False
    fault_name: str = ""


class Core:
    """One simulated CPU core with caches, predictor, TLBs and HPCs.

    Parameters
    ----------
    model_name:
        Processor model whose event catalog this core exposes.
    rng:
        Root randomness; children are derived for noise/interrupts.
    frequency_hz:
        Nominal clock used for cycle/second conversions.
    """

    def __init__(self, model_name: str = "amd-epyc-7252",
                 rng: "int | np.random.Generator | None" = None,
                 frequency_hz: float = 3.1e9) -> None:
        root = ensure_rng(rng)
        self.model_name = model_name
        self.catalog: EventCatalog = processor_catalog(model_name)
        self.caches = CacheHierarchy()
        self.branch_predictor = BranchPredictor()
        self.itlb = Tlb(entries=64, name="ITLB")
        self.dtlb = Tlb(entries=64, name="DTLB")
        self.prefetcher = StridePrefetcher()
        self.pipeline = Pipeline(penalties=PipelinePenalties())
        self.clock = SimClock(frequency_hz=frequency_hz)
        self.interrupts = InterruptSource(
            rng=np.random.default_rng(int(root.integers(2**63))))
        self.hpc = HpcRegisterFile(
            self.catalog, rng=np.random.default_rng(int(root.integers(2**63))))
        self.memory = MemoryMap()
        self.code_page: Page = self.memory.map_page("code", executable=True,
                                                    writable=False)
        self.data_page: Page = self.memory.map_page("data")
        self.stack_page: Page = self.memory.map_page("stack")
        self._rng = root
        self._stack_depth = 0
        # Canonical-state tracking for the batch engine: ``_pristine``
        # means the microarch state is exactly post-reset; the harness
        # warm-up promotes that to ``_canonical`` (reset + deterministic
        # warm-up), the state the screening memo is keyed against. Any
        # execution invalidates both.
        self._pristine = True
        self._canonical = False

    # ---------------- detailed per-instruction path ----------------

    def execute_program(self, program: Program,
                        update_hpc: bool = True) -> ExecutionResult:
        """Execute placed instructions and return signals + cycles.

        Faulting system instructions (already removed by the cleanup
        step in normal fuzzing flows) terminate execution with
        ``faulted=True``.
        """
        self._pristine = False
        self._canonical = False
        signals = zero_signals()
        cycles = 0
        rdpmc_values: list[int] = []
        penalties = self.pipeline.penalties
        for instruction in program.instructions:
            spec = instruction.spec
            # Instruction fetch: ITLB translation on the code address.
            if not self.itlb.access(instruction.address):
                signals[Signal.ITLB_MISS] += 1
                cycles += self.pipeline.stall(penalties.tlb_miss)
            signals[Signal.INSTRUCTIONS] += 1
            signals[Signal.UOPS] += spec.uops
            cycles += self.pipeline.issue(spec.uops, spec.latency)
            handler = _CLASS_HANDLERS.get(spec.iclass, _execute_simple)
            fault = handler(self, instruction, signals)
            if fault:
                return ExecutionResult(signals=signals, cycles=cycles,
                                       rdpmc_values=rdpmc_values,
                                       faulted=True, fault_name=fault)
            cycles += self._charge_memory_stalls(signals)
            if spec.iclass is InstructionClass.RDPMC:
                slots = self.hpc.programmed_slots()
                if slots:
                    # Counters observe everything retired so far.
                    rdpmc_values.extend(
                        self.hpc.rdpmc(slot) for slot in slots)
        if update_hpc:
            self.hpc.accumulate(signals)
        signals[Signal.CYCLES] += cycles
        self.clock.advance(cycles)
        return ExecutionResult(signals=signals, cycles=cycles,
                               rdpmc_values=rdpmc_values)

    def execute_batch(self, programs: "Program | list[Program] | None" = None,
                      update_hpc: bool = True, *,
                      repeats: "int | None" = None,
                      seeds: "np.ndarray | None" = None
                      ) -> list[ExecutionResult]:
        """Execute a batch of programs back to back, one result each.

        The batch is a single submission of sequential executions:
        microarchitectural state deliberately carries over from one
        program to the next, exactly as if the caller had looped over
        :meth:`execute_program` itself — the vectorized engine in
        :mod:`repro.cpu.batch` is proven bit-identical to that loop by
        the differential equivalence suite.

        ``programs`` may be a list, or a single :class:`Program`
        combined with either ``repeats`` (execute it that many times)
        or ``seeds`` (one execution per per-iteration seed; the
        detailed path is deterministic, so seeds carry the batch
        geometry and provenance rather than perturbing execution).
        """
        from repro.cpu import batch
        from repro.observability import runtime as observability
        obs = observability.active()
        if not obs.enabled:
            return batch.execute_batch(self, programs,
                                       update_hpc=update_hpc,
                                       repeats=repeats, seeds=seeds)
        start = time.perf_counter()
        results = batch.execute_batch(self, programs,
                                      update_hpc=update_hpc,
                                      repeats=repeats, seeds=seeds)
        obs.slo.observe("batch.execute", time.perf_counter() - start)
        return results

    def _charge_memory_stalls(self, signals: np.ndarray) -> int:
        """Stall cycles implied by the most recent access outcome."""
        outcome = self._last_outcome
        self._last_outcome = None
        if outcome is None:
            return 0
        penalties = self.pipeline.penalties
        if outcome.memory_access:
            return self.pipeline.stall(penalties.llc_miss)
        if not outcome.l2_hit:
            return self.pipeline.stall(penalties.l2_miss)
        if not outcome.l1_hit:
            return self.pipeline.stall(penalties.l1_miss)
        return 0

    _last_outcome = None

    def _data_access(self, address: int, signals: np.ndarray,
                     write: bool, pc: int = 0) -> None:
        """Shared load/store path: TLB, hierarchy, signal accounting.

        Demand accesses also train the stride prefetcher; confident
        strides issue hardware prefetches that fill the hierarchy and
        show up on the prefetch/MAB signals (without stalling the
        pipeline).
        """
        if write:
            self.memory.check_write(address)
        if not self.dtlb.access(address):
            signals[Signal.DTLB_MISS] += 1
        outcome = self.caches.access(address, write=write)
        self._last_outcome = outcome
        signals[Signal.L1D_ACCESS] += 1
        if outcome.l1_miss:
            signals[Signal.L1D_MISS] += 1
            signals[Signal.MAB_ALLOC] += 1
            signals[Signal.L2_ACCESS] += 1
        if not outcome.l2_hit:
            signals[Signal.L2_MISS] += 1
            signals[Signal.LLC_ACCESS] += 1
        if outcome.memory_access:
            signals[Signal.LLC_MISS] += 1
            signals[Signal.MEM_READS] += 1
        if pc:
            for target in self.prefetcher.observe(pc, address):
                pf_outcome = self.caches.access(target, write=False)
                signals[Signal.PREFETCHES] += 1
                if pf_outcome.memory_access:
                    signals[Signal.MAB_ALLOC] += 1
                    signals[Signal.MEM_READS] += 1

    # ----------------- aggregate block path ------------------------

    def execute_block(self, block: ActivityBlock,
                      noisy: bool = True) -> np.ndarray:
        """Consume one activity slice; returns the effective signals.

        Adds interrupt interference (each interrupt perturbs cycles and
        instruction-path signals), derives CYCLES from the slice
        duration, advances the clock, and feeds the HPC register file.
        """
        self._pristine = False
        self._canonical = False
        signals = block.signals.copy()
        cycles = block.duration_s * self.clock.frequency_hz
        if noisy:
            n_irq = self.interrupts.interrupts_during(block.duration_s)
            if n_irq:
                signals[Signal.INTERRUPTS] += n_irq
                signals[Signal.INSTRUCTIONS] += 400.0 * n_irq
                signals[Signal.UOPS] += 700.0 * n_irq
                cycles += self.pipeline.penalties.interrupt * n_irq
        signals[Signal.CYCLES] += cycles
        self.clock.advance(int(cycles))
        self.hpc.accumulate(signals, noisy=noisy)
        return signals

    def execute_blocks(self, blocks: "list[ActivityBlock]",
                       noisy: bool = True) -> list[np.ndarray]:
        """Consume a batch of activity slices, one signal vector each.

        Bit-identical to looping :meth:`execute_block`: the vectorized
        engine batches the interrupt draws and signal adjustments but
        replays the scalar RNG stream and HPC fold order exactly.
        """
        from repro.cpu import batch
        return batch.execute_blocks(self, blocks, noisy=noisy)

    # ----------------- measurement helpers -------------------------

    def reset_microarch_state(self) -> None:
        """Return caches/TLBs/predictor/prefetcher to power-on state.

        The Event Fuzzer's screening stage measures every gadget from
        this known state (plus a deterministic warm-up) so that a
        gadget's screening delta is independent of whichever gadgets
        happened to execute before it — the property that makes sharded
        campaigns produce identical results for any shard partition.
        """
        self.caches.reset()
        self.branch_predictor.reset()
        self.itlb.reset()
        self.dtlb.reset()
        self.prefetcher.reset()
        self._stack_depth = 0
        self._last_outcome = None
        self._pristine = True
        self._canonical = False

    def configure_measurement_environment(self) -> None:
        """Apply the harness mitigations from the paper (Section VI-D):
        pin the process and isolate the core so interrupts are rare."""
        self.interrupts.pin_process()
        self.interrupts.isolate_core()

    def serialize(self) -> None:
        """Drain the pipeline (CPUID-style barrier around measurements)."""
        self.clock.advance(self.pipeline.penalties.serialize)


def _execute_simple(core: Core, instruction: Instruction,
                    signals: np.ndarray) -> str:
    spec = instruction.spec
    sig = _SIMPLE_SIGNALS.get(spec.iclass)
    if sig is not None:
        signals[sig] += 1
    if spec.reads_memory:
        core._data_access(instruction.mem_operand or core.data_page.base,
                          signals, write=False, pc=instruction.address)
        signals[Signal.LOADS] += 1
    if spec.writes_memory:
        core._data_access(instruction.mem_operand or core.data_page.base,
                          signals, write=True, pc=instruction.address)
        signals[Signal.STORES] += 1
    return ""


def _execute_load(core: Core, instruction: Instruction,
                  signals: np.ndarray) -> str:
    signals[Signal.LOADS] += 1
    core._data_access(instruction.mem_operand or core.data_page.base,
                      signals, write=False, pc=instruction.address)
    return ""


def _execute_store(core: Core, instruction: Instruction,
                   signals: np.ndarray) -> str:
    signals[Signal.STORES] += 1
    address = instruction.mem_operand or core.data_page.base
    try:
        core._data_access(address, signals, write=True,
                          pc=instruction.address)
    except PermissionError as exc:
        return f"#PF: {exc}"
    if instruction.spec.mnemonic.startswith("MOVNT"):
        # Non-temporal stores bypass the hierarchy and write to memory.
        signals[Signal.MEM_WRITES] += 1
    return ""


def _execute_branch(core: Core, instruction: Instruction,
                    signals: np.ndarray) -> str:
    spec = instruction.spec
    signals[Signal.BRANCHES] += 1
    if spec.iclass is InstructionClass.BRANCH_COND:
        signals[Signal.COND_BRANCHES] += 1
        taken = instruction.taken
    else:
        taken = True
    mispredicted = core.branch_predictor.update(instruction.address, taken)
    if mispredicted:
        signals[Signal.BRANCH_MISS] += 1
        core.pipeline.stall(core.pipeline.penalties.branch_mispredict)
    return ""


def _execute_call(core: Core, instruction: Instruction,
                  signals: np.ndarray) -> str:
    signals[Signal.BRANCHES] += 1
    signals[Signal.CALLS] += 1
    signals[Signal.STACK_OPS] += 1
    core._stack_depth += 8
    address = core.stack_page.base + (core._stack_depth % core.stack_page.size)
    core._data_access(address, signals, write=True)
    signals[Signal.STORES] += 1
    core.branch_predictor.update(instruction.address, True)
    return ""


def _execute_ret(core: Core, instruction: Instruction,
                 signals: np.ndarray) -> str:
    signals[Signal.BRANCHES] += 1
    signals[Signal.RETURNS] += 1
    signals[Signal.STACK_OPS] += 1
    address = core.stack_page.base + (core._stack_depth % core.stack_page.size)
    core._stack_depth = max(0, core._stack_depth - 8)
    core._data_access(address, signals, write=False)
    signals[Signal.LOADS] += 1
    return ""


def _execute_push(core: Core, instruction: Instruction,
                  signals: np.ndarray) -> str:
    signals[Signal.STACK_OPS] += 1
    signals[Signal.STORES] += 1
    core._stack_depth += 8
    address = core.stack_page.base + (core._stack_depth % core.stack_page.size)
    core._data_access(address, signals, write=True)
    return ""


def _execute_pop(core: Core, instruction: Instruction,
                 signals: np.ndarray) -> str:
    signals[Signal.STACK_OPS] += 1
    signals[Signal.LOADS] += 1
    address = core.stack_page.base + (core._stack_depth % core.stack_page.size)
    core._stack_depth = max(0, core._stack_depth - 8)
    core._data_access(address, signals, write=False)
    return ""


def _execute_clflush(core: Core, instruction: Instruction,
                     signals: np.ndarray) -> str:
    signals[Signal.CACHE_FLUSHES] += 1
    core.caches.flush(instruction.mem_operand or core.data_page.base)
    return ""


def _execute_prefetch(core: Core, instruction: Instruction,
                      signals: np.ndarray) -> str:
    signals[Signal.PREFETCHES] += 1
    address = instruction.mem_operand or core.data_page.base
    outcome = core.caches.access(address, write=False)
    if outcome.memory_access:
        signals[Signal.MEM_READS] += 1
        signals[Signal.MAB_ALLOC] += 1
    return ""


def _execute_serialize(core: Core, instruction: Instruction,
                       signals: np.ndarray) -> str:
    signals[Signal.SERIALIZING] += 1
    core.pipeline.stall(core.pipeline.penalties.serialize)
    return ""


def _execute_tlb_flush(core: Core, instruction: Instruction,
                       signals: np.ndarray) -> str:
    signals[Signal.TLB_FLUSHES] += 1
    core.dtlb.flush()
    core.itlb.flush()
    return ""


def _execute_string(core: Core, instruction: Instruction,
                    signals: np.ndarray) -> str:
    repeats = 8 if instruction.spec.mnemonic.startswith("REP") else 1
    base = instruction.mem_operand or core.data_page.base
    for i in range(repeats):
        address = base + 8 * i
        signals[Signal.LOADS] += 1
        core._data_access(address, signals, write=False,
                          pc=instruction.address)
        if instruction.spec.mnemonic.lstrip("REP ").startswith(("MOVS", "STOS")):
            signals[Signal.STORES] += 1
            core._data_access(address + 64, signals, write=True,
                              pc=instruction.address + 1)
    return ""


def _execute_system(core: Core, instruction: Instruction,
                    signals: np.ndarray) -> str:
    return f"#GP: privileged instruction {instruction.spec.mnemonic}"


def _execute_rdpmc(core: Core, instruction: Instruction,
                   signals: np.ndarray) -> str:
    signals[Signal.SERIALIZING] += 0.0  # reads are handled by the core loop
    return ""


_SIMPLE_SIGNALS: dict[InstructionClass, Signal] = {
    InstructionClass.ALU: Signal.BIT_OPS,
    InstructionClass.BIT: Signal.BIT_OPS,
    InstructionClass.MUL: Signal.MUL_OPS,
    InstructionClass.DIV: Signal.DIV_OPS,
    InstructionClass.X87: Signal.X87_OPS,
    InstructionClass.SIMD_INT: Signal.SIMD_OPS,
    InstructionClass.SIMD_FP: Signal.FP_OPS,
    InstructionClass.FMA: Signal.FP_OPS,
    InstructionClass.CRYPTO: Signal.CRYPTO_OPS,
    InstructionClass.NOP: Signal.NOP_OPS,
    InstructionClass.FENCE: Signal.SERIALIZING,
}

_CLASS_HANDLERS = {
    InstructionClass.LOAD: _execute_load,
    InstructionClass.STORE: _execute_store,
    InstructionClass.BRANCH_COND: _execute_branch,
    InstructionClass.BRANCH_UNCOND: _execute_branch,
    InstructionClass.CALL: _execute_call,
    InstructionClass.RET: _execute_ret,
    InstructionClass.PUSH: _execute_push,
    InstructionClass.POP: _execute_pop,
    InstructionClass.CLFLUSH: _execute_clflush,
    InstructionClass.PREFETCH: _execute_prefetch,
    InstructionClass.FENCE: _execute_serialize,
    InstructionClass.SERIALIZE: _execute_serialize,
    InstructionClass.TLB_FLUSH: _execute_tlb_flush,
    InstructionClass.STRING: _execute_string,
    InstructionClass.SYSTEM: _execute_system,
    InstructionClass.RDPMC: _execute_rdpmc,
}
