"""A dispatch/retire pipeline cost model.

The simulator does not model out-of-order scheduling cycle by cycle;
instead the pipeline charges each instruction a cycle cost derived from
its uop count, the core's dispatch width, its nominal latency exposure,
and stall penalties reported by the memory/branch subsystems. This level
of fidelity is what the paper's measurements (counter deltas, execution
time, CPU usage) actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelinePenalties:
    """Cycle penalties charged for microarchitectural events."""

    l1_miss: int = 10
    l2_miss: int = 30
    llc_miss: int = 140
    branch_mispredict: int = 16
    tlb_miss: int = 25
    serialize: int = 120
    interrupt: int = 800


class Pipeline:
    """Accumulates uops and converts them to cycles.

    Parameters
    ----------
    dispatch_width:
        Uops dispatched per cycle when nothing stalls.
    penalties:
        Stall penalties per event kind.
    """

    def __init__(self, dispatch_width: int = 4,
                 penalties: PipelinePenalties | None = None) -> None:
        if dispatch_width < 1:
            raise ValueError(f"dispatch_width must be >= 1, got {dispatch_width}")
        self.dispatch_width = dispatch_width
        self.penalties = penalties or PipelinePenalties()
        self.retired_uops = 0
        self.retired_instructions = 0
        self.stall_cycles = 0

    def issue(self, uops: int, latency: int = 1) -> int:
        """Charge one instruction; returns its base cycle cost.

        Base cost models a throughput-bound stream: ``uops`` divided by
        the dispatch width, with a floor so long-latency instructions
        (DIV, CPUID) still cost more than a cycle even in a stream.
        """
        if uops < 1:
            raise ValueError(f"uops must be >= 1, got {uops}")
        self.retired_uops += uops
        self.retired_instructions += 1
        throughput_cycles = max(1, round(uops / self.dispatch_width))
        exposed_latency = max(0, (latency - 1) // 4)
        return throughput_cycles + exposed_latency

    def stall(self, cycles: int) -> int:
        """Charge a stall (miss penalty etc.); returns the cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.stall_cycles += cycles
        return cycles

    def reset_counts(self) -> None:
        """Zero the retirement counters (state between measurements)."""
        self.retired_uops = 0
        self.retired_instructions = 0
        self.stall_cycles = 0
