"""Instruction/data TLB models (fully-associative LRU)."""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """A fully-associative translation lookaside buffer with LRU.

    Parameters
    ----------
    entries:
        Number of page translations the TLB holds.
    page_size:
        Page size in bytes (4 KiB default).
    """

    def __init__(self, entries: int = 64, page_size: int = 4096,
                 name: str = "TLB") -> None:
        if entries < 1:
            raise ValueError(f"entries must be >= 1, got {entries}")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.name = name
        self.entries = entries
        self.page_size = page_size
        self.hits = 0
        self.misses = 0
        self._pages: OrderedDict[int, None] = OrderedDict()

    def access(self, address: int) -> bool:
        """Translate ``address``; returns True on TLB hit."""
        page = address // self.page_size
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return False

    def flush(self) -> int:
        """INVLPG-all/world-switch flush; returns entries dropped."""
        dropped = len(self._pages)
        self._pages.clear()
        return dropped

    def reset(self) -> None:
        """Return to power-on state: no translations, zeroed counters."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    @property
    def occupancy(self) -> int:
        return len(self._pages)
