"""Vectorized batch execution engine.

The Event Fuzzer evaluates on the order of millions of (gadget, event)
pairs per campaign, and every one of them used to walk the detailed
per-instruction interpreter in :mod:`repro.cpu.core`. This module makes
batched evaluation cheap while staying **bit-identical** to the scalar
path — the contract the warm-cache replay (PR 3) and chaos-equivalence
(PR 4) suites depend on. Three mechanisms, all exact:

- **Signal-response decomposition** (:func:`spec_profile`): every
  instruction variant splits into a *static* signal row (retired
  instructions, uops, class-op signals, load/store counts — a pure
  function of the spec) plus a *dynamic* remainder (cache, TLB, branch
  and prefetch perturbations — a pure function of the *state-interaction
  archetype sequence* executed from a canonical start state). Because
  all signal increments are small integers held in float64, the
  decomposition and its recomposition are exact, not approximate.
- **Canonical-state memoization** (:func:`screened_begin`): the
  screening stage measures every gadget from reset + deterministic
  warm-up. Two programs whose archetype sequences match therefore share
  the same dynamic remainder, so one scalar execution per archetype
  class serves the whole shard; the per-gadget result is rebuilt as
  ``static(program) + dynamic(archetype)``.
- **Convergence replication** (:meth:`Core.execute_batch` repeats): a
  program executed back to back drives the microarchitectural state to
  a fixed point after a few iterations (the warmed caches stop
  evicting, the predictor saturates). Once two consecutive post-states
  are identical the remaining executions are replicas: results are
  copied and the per-execution counter deltas are applied arithmetically
  (all integers, so ``k`` scalar additions equal one ``delta * k``).

Aggregate :class:`ActivityBlock` batches vectorize the interrupt
arrival draws and signal adjustments (:func:`execute_blocks`); the HPC
register-file accumulation stays per-block because its noise draws and
float fold order must match the scalar path bit for bit.

Set ``REPRO_BATCH_DISABLE=1`` (or :data:`FORCE_SCALAR`) to route every
entry point through the scalar interpreter — the differential test
suite A/Bs the two paths this way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.cpu.signals import NUM_SIGNALS, Signal
from repro.isa.spec import InstructionClass, InstructionSpec, Program
from repro.telemetry import runtime as telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.cpu.core import ActivityBlock, Core, ExecutionResult

#: Environment switch that forces the scalar interpreter everywhere.
DISABLE_ENV = "REPRO_BATCH_DISABLE"

#: Module switch for in-process differential testing (monkeypatched by
#: the equivalence suite; the env var serves whole-process A/B runs).
FORCE_SCALAR = False

#: Scalar executions before giving up on state-fixed-point detection.
MAX_SCALAR_PREFIX = 8

#: Entry cap of the screening memo (cleared wholesale when exceeded;
#: real campaigns stay 2-3 orders of magnitude below this).
MEMO_CAP = 8192

#: Telemetry counter names (dashboards watch the pair to see when the
#: fast path is bypassed).
EVALS_COUNTER = "batch.evals"
FALLBACK_COUNTER = "batch.fallback_scalar"


def scalar_only() -> bool:
    """Whether every batch entry point must take the scalar path."""
    return FORCE_SCALAR or os.environ.get(DISABLE_ENV, "") == "1"


def _count(name: str, n: int) -> None:
    registry = telemetry.metrics()
    if registry.enabled and n:
        registry.counter(name).inc(n)


def count_evals(n: int = 1) -> None:
    """Record ``n`` evaluations served through the batch layer."""
    _count(EVALS_COUNTER, n)


def count_fallback(n: int = 1) -> None:
    """Record ``n`` evaluations that ran the scalar interpreter."""
    _count(FALLBACK_COUNTER, n)


# -- spec profiles ---------------------------------------------------------

#: Class signals charged by the scalar ``_execute_simple`` handler.
_SIMPLE_SIGNALS: dict[InstructionClass, Signal] = {
    InstructionClass.ALU: Signal.BIT_OPS,
    InstructionClass.BIT: Signal.BIT_OPS,
    InstructionClass.MUL: Signal.MUL_OPS,
    InstructionClass.DIV: Signal.DIV_OPS,
    InstructionClass.X87: Signal.X87_OPS,
    InstructionClass.SIMD_INT: Signal.SIMD_OPS,
    InstructionClass.SIMD_FP: Signal.FP_OPS,
    InstructionClass.FMA: Signal.FP_OPS,
    InstructionClass.CRYPTO: Signal.CRYPTO_OPS,
    InstructionClass.NOP: Signal.NOP_OPS,
    InstructionClass.FENCE: Signal.SERIALIZING,
}

#: Classes whose handlers never touch cache/TLB/branch/prefetch state
#: (FENCE/SERIALIZE only charge the pipeline stall counter, which is
#: not part of an :class:`ExecutionResult`).
_INERT_CLASSES = frozenset({
    InstructionClass.ALU, InstructionClass.MUL, InstructionClass.DIV,
    InstructionClass.BIT, InstructionClass.MOV, InstructionClass.LEA,
    InstructionClass.NOP, InstructionClass.X87, InstructionClass.SIMD_INT,
    InstructionClass.SIMD_FP, InstructionClass.FMA, InstructionClass.CRYPTO,
    InstructionClass.FENCE, InstructionClass.SERIALIZE,
    InstructionClass.RDPMC,
})


@dataclass(frozen=True)
class SpecProfile:
    """Static signal-response row + state-interaction archetype of a spec.

    ``arch`` is a hashable id such that two specs with equal ids perturb
    the microarchitectural state identically when placed at the same
    program position (all placed memory operands resolve to the data
    page, addresses are position-determined). ``None`` marks variants
    the vectorized paths do not model (privileged SYSTEM instructions,
    which fault) — they force a scalar fallback.
    """

    spec: InstructionSpec
    arch: "tuple | str | None"
    static_signals: np.ndarray
    issue_cycles: int


def _arch_of(spec: InstructionSpec) -> "tuple | str | None":
    ic = spec.iclass
    if ic in (InstructionClass.SERIALIZE, InstructionClass.RDPMC):
        # Dedicated handlers that never touch cache/TLB/branch state.
        return "n"
    if ic in _INERT_CLASSES:
        if spec.reads_memory or spec.writes_memory:
            return ("m", spec.reads_memory, spec.writes_memory)
        return "n"
    if ic is InstructionClass.LOAD:
        return ("m", True, False)
    if ic is InstructionClass.STORE:
        return ("m", False, True)
    if ic in (InstructionClass.BRANCH_COND, InstructionClass.BRANCH_UNCOND):
        # Both update the predictor with taken=True at the placed pc.
        return "br"
    if ic is InstructionClass.CALL:
        return "call"
    if ic is InstructionClass.RET:
        return "ret"
    if ic is InstructionClass.PUSH:
        return "push"
    if ic is InstructionClass.POP:
        return "pop"
    if ic is InstructionClass.CLFLUSH:
        return "clf"
    if ic is InstructionClass.PREFETCH:
        return "pf"
    if ic is InstructionClass.TLB_FLUSH:
        return "tlbf"
    if ic is InstructionClass.STRING:
        rep = spec.mnemonic.startswith("REP")
        writes = spec.mnemonic.lstrip("REP ").startswith(("MOVS", "STOS"))
        return ("str", rep, writes)
    return None  # SYSTEM (faults) and anything unknown


def _static_row(spec: InstructionSpec) -> np.ndarray:
    """The signal increments charged regardless of microarch state."""
    row = np.zeros(NUM_SIGNALS, dtype=np.float64)
    row[Signal.INSTRUCTIONS] = 1.0
    row[Signal.UOPS] = float(spec.uops)
    ic = spec.iclass
    if ic is InstructionClass.SERIALIZE:
        row[Signal.SERIALIZING] += 1.0
    elif ic is InstructionClass.RDPMC:
        pass  # the handler only reads programmed counters
    elif ic in _INERT_CLASSES:
        sig = _SIMPLE_SIGNALS.get(ic)
        if sig is not None:
            row[sig] += 1.0
        row[Signal.LOADS] += float(spec.reads_memory)
        row[Signal.STORES] += float(spec.writes_memory)
    elif ic is InstructionClass.LOAD:
        row[Signal.LOADS] += 1.0
    elif ic is InstructionClass.STORE:
        row[Signal.STORES] += 1.0
        if spec.mnemonic.startswith("MOVNT"):
            row[Signal.MEM_WRITES] += 1.0
    elif ic in (InstructionClass.BRANCH_COND, InstructionClass.BRANCH_UNCOND):
        row[Signal.BRANCHES] += 1.0
        if ic is InstructionClass.BRANCH_COND:
            row[Signal.COND_BRANCHES] += 1.0
    elif ic is InstructionClass.CALL:
        row[[Signal.BRANCHES, Signal.CALLS, Signal.STACK_OPS,
             Signal.STORES]] += 1.0
    elif ic is InstructionClass.RET:
        row[[Signal.BRANCHES, Signal.RETURNS, Signal.STACK_OPS,
             Signal.LOADS]] += 1.0
    elif ic is InstructionClass.PUSH:
        row[[Signal.STACK_OPS, Signal.STORES]] += 1.0
    elif ic is InstructionClass.POP:
        row[[Signal.STACK_OPS, Signal.LOADS]] += 1.0
    elif ic is InstructionClass.CLFLUSH:
        row[Signal.CACHE_FLUSHES] += 1.0
    elif ic is InstructionClass.PREFETCH:
        row[Signal.PREFETCHES] += 1.0
    elif ic is InstructionClass.TLB_FLUSH:
        row[Signal.TLB_FLUSHES] += 1.0
    elif ic is InstructionClass.STRING:
        repeats = 8 if spec.mnemonic.startswith("REP") else 1
        row[Signal.LOADS] += float(repeats)
        if spec.mnemonic.lstrip("REP ").startswith(("MOVS", "STOS")):
            row[Signal.STORES] += float(repeats)
    return row


# Profiles are keyed by spec identity; catalog specs are process-wide
# singletons, and keeping the spec inside the profile pins the id.
_PROFILE_CACHE: dict[int, SpecProfile] = {}

#: The dispatch width the cached issue-cycle figures assume (matches
#: the :class:`Pipeline` default; other widths fall back to scalar).
_DISPATCH_WIDTH = 4


def spec_profile(spec: InstructionSpec) -> SpecProfile:
    """The cached static/dynamic decomposition of one variant."""
    profile = _PROFILE_CACHE.get(id(spec))
    if profile is None:
        issue = (max(1, round(spec.uops / _DISPATCH_WIDTH))
                 + max(0, (spec.latency - 1) // 4))
        profile = SpecProfile(spec=spec, arch=_arch_of(spec),
                              static_signals=_static_row(spec),
                              issue_cycles=issue)
        _PROFILE_CACHE[id(spec)] = profile
    return profile


# -- canonical-state screening memo ---------------------------------------

_SCREEN_MEMO: dict[tuple, tuple[np.ndarray, int]] = {}


def clear_memo() -> None:
    """Drop all memoized dynamic remainders (test isolation)."""
    _SCREEN_MEMO.clear()


def _core_token(core: "Core") -> tuple:
    """Everything about a core's geometry that shapes the dynamics."""
    token = getattr(core, "_batch_token", None)
    if token is None:
        caches = core.caches
        predictor = core.branch_predictor
        prefetcher = core.prefetcher
        token = (
            core.code_page.base, core.data_page.base, core.stack_page.base,
            core.stack_page.size, core.pipeline.dispatch_width,
            core.pipeline.penalties,
            (caches.l1.num_sets, caches.l1.ways, caches.l1.line_size),
            (caches.l2.num_sets, caches.l2.ways, caches.l2.line_size),
            (caches.llc.num_sets, caches.llc.ways, caches.llc.line_size),
            (core.itlb.entries, core.dtlb.entries),
            (predictor.table_bits, predictor.history_bits),
            (prefetcher.table_entries, prefetcher.depth,
             prefetcher.line_size),
        )
        core._batch_token = token
    return token


_FRAME_CACHE: dict[tuple, tuple[tuple, np.ndarray, int]] = {}

#: Callee-saved register count of the harness frame (mirrors
#: ``repro.core.fuzzer.generator._CALLEE_SAVED``).
_FRAME_SAVES = 6


def _frame_profile(push: "InstructionSpec | None",
                   pop: "InstructionSpec | None",
                   serialize: "InstructionSpec | None"
                   ) -> "tuple[tuple, np.ndarray, int] | None":
    """(arch ids, static signals, static cycles) of the harness frame."""
    key = (id(push), id(pop), id(serialize))
    cached = _FRAME_CACHE.get(key)
    if cached is not None:
        return cached
    specs: list[InstructionSpec] = []
    if push is not None:
        specs.extend([push] * _FRAME_SAVES)
    if serialize is not None:
        # One CPUID before the body and one after; statics are
        # order-independent, and the memo key pairs this frame with the
        # body archetypes + repeat count, which fixes the real layout.
        specs.extend([serialize, serialize])
    if pop is not None:
        specs.extend([pop] * _FRAME_SAVES)
    profiles = [spec_profile(s) for s in specs]
    if any(p.arch is None for p in profiles):
        return None
    static = np.zeros(NUM_SIGNALS, dtype=np.float64)
    cycles = 0
    for profile in profiles:
        static += profile.static_signals
        cycles += profile.issue_cycles
    result = (tuple(p.arch for p in profiles), static, cycles)
    _FRAME_CACHE[key] = result
    return result


class ScreenSlot:
    """One screening measurement's memo context.

    ``hit`` carries the rebuilt ``(signals, cycles)`` when the archetype
    class has already been executed once; otherwise the caller runs the
    scalar measurement and hands the result to :meth:`store`.
    """

    __slots__ = ("hit", "_key", "_static_signals", "_static_cycles")

    def __init__(self, key: tuple, static_signals: np.ndarray,
                 static_cycles: int,
                 hit: "tuple[np.ndarray, int] | None") -> None:
        self._key = key
        self._static_signals = static_signals
        self._static_cycles = static_cycles
        self.hit = hit

    def store(self, result: "ExecutionResult") -> None:
        """Memoize the dynamic remainder of a scalar screening run."""
        if result.faulted:
            return
        if len(_SCREEN_MEMO) >= MEMO_CAP:
            _SCREEN_MEMO.clear()
        _SCREEN_MEMO[self._key] = (
            result.signals - self._static_signals,
            result.cycles - self._static_cycles)


def screened_begin(core: "Core", body: "list[InstructionSpec]",
                   repeats: int,
                   frame: "tuple[InstructionSpec | None, ...]"
                   ) -> "ScreenSlot | None":
    """Open a canonical-state screening measurement on ``core``.

    Returns ``None`` when the vectorized path cannot serve the
    measurement (engine disabled, core not in the canonical
    reset+warmed state, HPC slots programmed, unsupported variant in
    the body, or a non-default dispatch width) — the caller must then
    fall back to the full scalar measurement.

    On a memo hit the core's microarchitectural state is deliberately
    left at the post-warm-up state (the measurement never executes);
    the canonical flag is cleared so a second measurement without an
    intervening reset cannot reuse the memo against stale state.
    """
    if scalar_only() or not getattr(core, "_canonical", False):
        return None
    if core.pipeline.dispatch_width != _DISPATCH_WIDTH:
        return None
    if core.hpc.programmed_slots():
        return None
    frame_profile = _frame_profile(*frame)
    if frame_profile is None:
        return None
    body_profiles = [spec_profile(spec) for spec in body]
    if any(p.arch is None for p in body_profiles):
        return None
    frame_arch, frame_static, frame_cycles = frame_profile
    body_static = np.zeros(NUM_SIGNALS, dtype=np.float64)
    body_cycles = 0
    for profile in body_profiles:
        body_static += profile.static_signals
        body_cycles += profile.issue_cycles
    static_signals = frame_static + repeats * body_static
    static_cycles = frame_cycles + repeats * body_cycles
    # CYCLES folds the issue cycles into the signal vector at the end
    # of execute_program; the static share must live in the static row
    # or the memoized dynamic remainder would absorb the donor
    # program's issue cycles.
    static_signals[Signal.CYCLES] = float(static_cycles)
    key = (_core_token(core), frame_arch,
           tuple(p.arch for p in body_profiles), repeats)
    cached = _SCREEN_MEMO.get(key)
    hit = None
    if cached is not None:
        dyn_signals, dyn_cycles = cached
        hit = (static_signals + dyn_signals, static_cycles + dyn_cycles)
        # The memoized measurement was never executed: state stays
        # post-warm-up, so it is no longer the canonical post-execution
        # state the next memo lookup would need.
        core._canonical = False
    return ScreenSlot(key, static_signals, static_cycles, hit)


# -- convergence replication ----------------------------------------------


def _cache_lines(cache) -> tuple:
    return cache.resident_lines()


def _state_signature(core: "Core") -> tuple:
    """Hashable digest of every piece of state the detailed path reads."""
    predictor = core.branch_predictor
    history_mask = (1 << predictor.history_bits) - 1
    return (
        _cache_lines(core.caches.l1),
        _cache_lines(core.caches.l2),
        _cache_lines(core.caches.llc),
        tuple(core.itlb._pages),
        tuple(core.dtlb._pages),
        predictor._table.tobytes(),
        predictor._history & history_mask,
        tuple((pc, e.last_address, e.stride, e.confidence)
              for pc, e in core.prefetcher._table.items()),
        core._stack_depth,
        core._last_outcome is None,
    )


#: (owner, attribute) pairs of the integer counters the detailed path
#: advances; replicated executions apply their per-execution deltas
#: arithmetically instead of re-executing.
def _counter_fields(core: "Core") -> list[tuple[object, str]]:
    fields = []
    for cache in (core.caches.l1, core.caches.l2, core.caches.llc):
        fields.append((cache.stats, "hits"))
        fields.append((cache.stats, "misses"))
        fields.append((cache.stats, "evictions"))
        fields.append((cache.stats, "flushes"))
    for tlb in (core.itlb, core.dtlb):
        fields.append((tlb, "hits"))
        fields.append((tlb, "misses"))
    fields.append((core.branch_predictor, "predictions"))
    fields.append((core.branch_predictor, "mispredictions"))
    fields.append((core.prefetcher, "issued"))
    fields.append((core.prefetcher, "trained"))
    fields.append((core.pipeline, "retired_uops"))
    fields.append((core.pipeline, "retired_instructions"))
    fields.append((core.pipeline, "stall_cycles"))
    return fields


def _counter_snapshot(core: "Core",
                      fields: list[tuple[object, str]]) -> tuple:
    return (tuple(getattr(owner, name) for owner, name in fields),
            core.branch_predictor._history)


def _apply_replica_deltas(core: "Core", fields: list[tuple[object, str]],
                          before: tuple, after: tuple, k: int,
                          cycles: int) -> None:
    """Apply ``k`` executions' worth of counter deltas arithmetically."""
    before_counts, history_before = before
    after_counts, history_after = after
    for (owner, name), was, now in zip(fields, before_counts, after_counts):
        delta = now - was
        if delta:
            setattr(owner, name, now + delta * k)
    core.clock.advance(cycles * k)
    # The global branch history appends the same n-bit pattern every
    # replica; rebuild the exact integer the scalar loop would hold.
    bits = after_counts[_PREDICTIONS_INDEX] - before_counts[_PREDICTIONS_INDEX]
    if bits:
        pattern = history_after - (history_before << bits)
        repeated = pattern * (((1 << (bits * k)) - 1) // ((1 << bits) - 1))
        core.branch_predictor._history = \
            (history_after << (bits * k)) | repeated


#: Index of the predictor ``predictions`` counter in `_counter_fields`
#: order (3 levels x 4 cache stats + 2 TLBs x 2).
_PREDICTIONS_INDEX = 16


def _scalar_results(core: "Core", program: Program, count: int,
                    update_hpc: bool) -> "list[ExecutionResult]":
    return [core.execute_program(program, update_hpc=update_hpc)
            for _ in range(count)]


def _replicate(last: "ExecutionResult", k: int) -> "list[ExecutionResult]":
    from repro.cpu.core import ExecutionResult
    return [ExecutionResult(signals=last.signals.copy(), cycles=last.cycles,
                            rdpmc_values=list(last.rdpmc_values))
            for _ in range(k)]


def _run_repeated(core: "Core", program: Program, count: int,
                  update_hpc: bool) -> "list[ExecutionResult]":
    """``count`` sequential executions of one program, replicated once
    the microarchitectural state reaches its fixed point."""
    if count <= 0:
        return []
    if scalar_only() or count <= 2 or core.hpc.programmed_slots():
        results = _scalar_results(core, program, count, update_hpc)
        _count(EVALS_COUNTER, count)
        _count(FALLBACK_COUNTER, count)
        return results
    fields = _counter_fields(core)
    results: "list[ExecutionResult]" = []
    scalar_runs = 0
    prev_sig = None
    prev_counts = None
    while len(results) < count:
        result = core.execute_program(program, update_hpc=update_hpc)
        results.append(result)
        scalar_runs += 1
        if result.faulted:
            # Faulting programs skip the HPC/clock epilogue; keep the
            # remainder scalar rather than modeling partial execution.
            remainder = count - len(results)
            results.extend(_scalar_results(core, program, remainder,
                                           update_hpc))
            scalar_runs += remainder
            break
        sig = _state_signature(core)
        counts = _counter_snapshot(core, fields)
        if prev_sig is not None and sig == prev_sig:
            k = count - len(results)
            if k > 0:
                _apply_replica_deltas(core, fields, prev_counts, counts, k,
                                      result.cycles)
                results.extend(_replicate(result, k))
            break
        if len(results) >= MAX_SCALAR_PREFIX:
            remainder = count - len(results)
            results.extend(_scalar_results(core, program, remainder,
                                           update_hpc))
            scalar_runs += remainder
            break
        prev_sig, prev_counts = sig, counts
    _count(EVALS_COUNTER, count)
    _count(FALLBACK_COUNTER, scalar_runs)
    return results


def execute_batch(core: "Core",
                  programs: "Program | Iterable[Program] | None",
                  update_hpc: bool = True,
                  repeats: "int | None" = None,
                  seeds: "np.ndarray | None" = None
                  ) -> "list[ExecutionResult]":
    """Vectorized engine behind :meth:`Core.execute_batch`.

    Semantics are exactly those of looping ``execute_program`` —
    microarchitectural state carries over between executions — with
    runs of the *same* program object served by convergence
    replication. ``repeats``/``seeds`` batch one program without
    materializing a duplicated list; ``seeds`` carries one integer per
    execution (the measurement layer derives them from its own RNG
    stream so batch geometry is explicit and reproducible — the
    detailed path itself is deterministic, so seeds do not perturb
    execution).
    """
    if repeats is not None and seeds is not None:
        raise ValueError("pass either repeats or seeds, not both")
    if isinstance(programs, Program):
        if seeds is not None:
            seeds = np.asarray(seeds)
            if seeds.ndim != 1:
                raise ValueError(
                    f"seeds must be a 1-D array, got shape {seeds.shape}")
            count = len(seeds)
        elif repeats is not None:
            if repeats < 0:
                raise ValueError(f"repeats must be >= 0, got {repeats}")
            count = repeats
        else:
            count = 1
        return _run_repeated(core, programs, count, update_hpc)
    if repeats is not None or seeds is not None:
        raise ValueError("repeats/seeds require a single Program")
    if programs is None:
        return []
    programs = list(programs)
    results: "list[ExecutionResult]" = []
    start = 0
    while start < len(programs):
        stop = start
        while (stop < len(programs)
               and programs[stop] is programs[start]):
            stop += 1
        results.extend(_run_repeated(core, programs[start], stop - start,
                                     update_hpc))
        start = stop
    return results


# -- aggregate block batches ----------------------------------------------


def execute_blocks(core: "Core", blocks: "Iterable[ActivityBlock]",
                   noisy: bool = True) -> "list[np.ndarray]":
    """Batched :meth:`Core.execute_block`, bit-identical to the loop.

    Interrupt arrival draws and the interference/cycle adjustments are
    vectorized across the batch (batched ``Generator.poisson`` over the
    positive-rate entries consumes the stream exactly like the scalar
    per-block draws). The HPC register-file update stays per block: its
    noise draws and float accumulation order must replay the scalar
    fold exactly.
    """
    blocks = list(blocks)
    if not blocks:
        return []
    if scalar_only():
        results = [core.execute_block(block, noisy=noisy)
                   for block in blocks]
        _count(EVALS_COUNTER, len(blocks))
        _count(FALLBACK_COUNTER, len(blocks))
        return results
    core._pristine = False
    core._canonical = False
    durations = np.array([block.duration_s for block in blocks],
                         dtype=np.float64)
    matrix = np.stack([block.signals for block in blocks])
    cycles = durations * core.clock.frequency_hz
    if noisy:
        lam = core.interrupts.effective_rate_hz * durations
        n_irq = np.zeros(len(blocks), dtype=np.float64)
        mask = lam > 0
        if mask.any():
            draws = core.interrupts._rng.poisson(lam[mask])
            n_irq[mask] = draws
            core.interrupts.total_interrupts += int(draws.sum())
        matrix[:, Signal.INTERRUPTS] += n_irq
        matrix[:, Signal.INSTRUCTIONS] += 400.0 * n_irq
        matrix[:, Signal.UOPS] += 700.0 * n_irq
        cycles = cycles + core.pipeline.penalties.interrupt * n_irq
    matrix[:, Signal.CYCLES] += cycles
    core.clock.advance(int(cycles.astype(np.int64).sum()))
    if core.hpc.programmed_slots():
        for row in matrix:
            core.hpc.accumulate(row, noisy=noisy)
    _count(EVALS_COUNTER, len(blocks))
    return list(matrix)
