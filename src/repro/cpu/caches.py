"""Set-associative cache models.

The detailed execution path (used by the Event Fuzzer) needs real cache
state: a reset sequence like CLFLUSH must actually evict a line so that
the following trigger load misses. These models implement classic
set-associative LRU caches and a three-level hierarchy with inclusive
semantics, matching the behaviour the paper's gadgets rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Running hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative cache level with LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be ``ways * sets * line_size``-consistent.
    ways:
        Associativity.
    line_size:
        Cache line size in bytes (power of two).
    name:
        Human-readable level name for diagnostics.
    """

    def __init__(self, size_bytes: int, ways: int, line_size: int = 64,
                 name: str = "cache") -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if size_bytes % (ways * line_size):
            raise ValueError(
                f"size_bytes={size_bytes} is not divisible by "
                f"ways*line_size={ways * line_size}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self.stats = CacheStats()
        # Each set is an OrderedDict tag -> dirty flag; order is LRU
        # (oldest first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Indices of non-empty sets, so reset/snapshot cost scales with
        # occupancy instead of capacity (the LLC alone has 4096 sets).
        self._occupied: set[int] = set()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_size
        return line % self.num_sets, line // self.num_sets

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently cached."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def access(self, address: int, write: bool = False) -> bool:
        """Access ``address``; returns True on hit.

        On a miss the line is filled (possibly evicting the LRU way);
        the caller is responsible for propagating the miss to the next
        level.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            if write:
                ways[tag] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[tag] = write
        self._occupied.add(set_index)
        return False

    def flush(self, address: int) -> bool:
        """Evict the line holding ``address``; returns True if present."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            del ways[tag]
            self.stats.flushes += 1
            if not ways:
                self._occupied.discard(set_index)
            return True
        return False

    def flush_all(self) -> None:
        """Invalidate the whole cache (WBINVD-style)."""
        for set_index in self._occupied:
            ways = self._sets[set_index]
            self.stats.flushes += len(ways)
            ways.clear()
        self._occupied.clear()

    def reset(self) -> None:
        """Return the cache to power-on state (no resident lines).

        Unlike :meth:`flush_all` this also zeroes the statistics, and it
        is cheap enough to run per measurement: only non-empty sets are
        touched, so the cost scales with occupancy, not capacity.
        """
        for set_index in self._occupied:
            self._sets[set_index].clear()
        self._occupied.clear()
        self.stats = CacheStats()

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(self._sets[i]) for i in self._occupied)

    def resident_lines(self) -> tuple:
        """Hashable snapshot of resident lines, LRU order preserved.

        Used by the batch engine's state signatures: two caches with
        equal snapshots behave identically for every future access.
        """
        return tuple((i, tuple(self._sets[i].items()))
                     for i in sorted(self._occupied) if self._sets[i])


@dataclass
class AccessOutcome:
    """Which levels an access hit/missed and whether memory was reached."""

    l1_hit: bool
    l2_hit: bool
    llc_hit: bool
    memory_access: bool

    @property
    def l1_miss(self) -> bool:
        return not self.l1_hit


class CacheHierarchy:
    """L1D + L2 + LLC hierarchy with miss propagation.

    Sizes default to the AMD EPYC 7252 per-core figures (32 KiB L1D,
    512 KiB L2, shared LLC slice).
    """

    def __init__(self, l1_size: int = 32 * 1024, l1_ways: int = 8,
                 l2_size: int = 512 * 1024, l2_ways: int = 8,
                 llc_size: int = 4 * 1024 * 1024, llc_ways: int = 16,
                 line_size: int = 64) -> None:
        self.l1 = Cache(l1_size, l1_ways, line_size, name="L1D")
        self.l2 = Cache(l2_size, l2_ways, line_size, name="L2")
        self.llc = Cache(llc_size, llc_ways, line_size, name="LLC")
        self.line_size = line_size

    def access(self, address: int, write: bool = False) -> AccessOutcome:
        """Access ``address`` through the hierarchy."""
        if self.l1.access(address, write):
            return AccessOutcome(True, True, True, False)
        if self.l2.access(address, write):
            return AccessOutcome(False, True, True, False)
        if self.llc.access(address, write):
            return AccessOutcome(False, False, True, False)
        return AccessOutcome(False, False, False, True)

    def flush(self, address: int) -> None:
        """CLFLUSH: evict the line from every level."""
        self.l1.flush(address)
        self.l2.flush(address)
        self.llc.flush(address)

    def flush_all(self) -> None:
        """WBINVD: invalidate every level."""
        self.l1.flush_all()
        self.l2.flush_all()
        self.llc.flush_all()

    def contains(self, address: int) -> bool:
        """Whether any level holds the line for ``address``."""
        return (self.l1.contains(address) or self.l2.contains(address)
                or self.llc.contains(address))

    def reset(self) -> None:
        """Return every level to power-on state (lines and stats)."""
        self.l1.reset()
        self.l2.reset()
        self.llc.reset()
