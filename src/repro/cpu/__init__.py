"""Microarchitectural CPU simulator substrate.

This package simulates the processor features the paper's experiments
depend on: set-associative caches, a branch predictor, TLBs, a
dispatch/retire pipeline, interrupt interference, and — crucially — a
Hardware Performance Counter (HPC) subsystem with per-processor event
catalogs. Real HPC hardware is not available in this environment, so the
simulator reproduces the statistical behaviour the paper measures
(Gaussian per-secret event distributions, non-determinism, event
heterogeneity across processor models).
"""

from repro.cpu.signals import (
    NUM_SIGNALS,
    SIGNALS,
    Signal,
    SignalVector,
    signal_index,
    zero_signals,
)
from repro.cpu.caches import Cache, CacheHierarchy
from repro.cpu.branch import BranchPredictor
from repro.cpu.tlb import Tlb
from repro.cpu.pipeline import Pipeline
from repro.cpu.memory import MemoryMap, Page
from repro.cpu.interrupts import InterruptSource
from repro.cpu.events import EventCatalog, EventType, HpcEventSpec, processor_catalog
from repro.cpu.hpc import HpcRegisterFile, PerfCounter
from repro.cpu.core import ActivityBlock, Core, ExecutionResult

__all__ = [
    "ActivityBlock",
    "BranchPredictor",
    "Cache",
    "CacheHierarchy",
    "Core",
    "EventCatalog",
    "EventType",
    "ExecutionResult",
    "HpcEventSpec",
    "HpcRegisterFile",
    "InterruptSource",
    "MemoryMap",
    "NUM_SIGNALS",
    "Page",
    "PerfCounter",
    "Pipeline",
    "SIGNALS",
    "Signal",
    "SignalVector",
    "Tlb",
    "processor_catalog",
    "signal_index",
    "zero_signals",
]
