"""HPC register file: programmable counters and RDPMC.

Modern cores expose a small number of programmable counter registers
(four on the simulated processors — the same limit that forces the
paper's profiler to monitor events in groups of four and the perf
subsystem to time-multiplex larger sets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.events import EventCatalog
from repro.utils.rng import ensure_rng


@dataclass
class PerfCounter:
    """One programmable counter: event binding plus accumulated value."""

    event_index: int = -1
    value: float = 0.0
    enabled_time: float = 0.0
    running_time: float = 0.0

    @property
    def programmed(self) -> bool:
        return self.event_index >= 0

    @property
    def scaling_factor(self) -> float:
        """Multiplexing scale: enabled/running (1.0 when always counting)."""
        if self.running_time <= 0:
            return 1.0
        return self.enabled_time / self.running_time

    def scaled_value(self) -> float:
        """Counter value corrected for multiplexing dead time."""
        return self.value * self.scaling_factor


class HpcRegisterFile:
    """The per-core HPC register file.

    Parameters
    ----------
    catalog:
        Event catalog of the processor; counter slots bind to rows of it.
    num_registers:
        Concurrent hardware counters (paper: 4 on both testbeds).
    rng:
        Measurement-noise source shared by all slots.
    """

    def __init__(self, catalog: EventCatalog, num_registers: int = 4,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if num_registers < 1:
            raise ValueError(f"num_registers must be >= 1, got {num_registers}")
        self.catalog = catalog
        self.num_registers = num_registers
        self.counters: list[PerfCounter] = [
            PerfCounter() for _ in range(num_registers)]
        self._rng = ensure_rng(rng)

    def _slot(self, slot: int) -> PerfCounter:
        if not 0 <= slot < self.num_registers:
            raise IndexError(
                f"counter slot {slot} out of range [0, {self.num_registers})")
        return self.counters[slot]

    def program(self, slot: int, event: "int | str") -> None:
        """Bind counter ``slot`` to an event (by name or catalog index)."""
        index = (self.catalog.index_of(event) if isinstance(event, str)
                 else int(event))
        if not 0 <= index < len(self.catalog):
            raise IndexError(f"event index {index} out of catalog range")
        counter = self._slot(slot)
        counter.event_index = index
        counter.value = 0.0
        counter.enabled_time = 0.0
        counter.running_time = 0.0

    def reset(self, slot: int) -> None:
        """Zero a counter without unbinding its event."""
        self._slot(slot).value = 0.0

    def programmed_slots(self) -> list[int]:
        """Slots that currently have an event bound."""
        return [i for i, c in enumerate(self.counters) if c.programmed]

    def accumulate(self, signals: np.ndarray, noisy: bool = True) -> None:
        """Advance every programmed counter by one signal-vector delta."""
        slots = self.programmed_slots()
        if not slots:
            return
        indices = np.array([self.counters[s].event_index for s in slots])
        rng = self._rng if noisy else None
        deltas = self.catalog.counts_for(signals, rng=rng,
                                         event_indices=indices)
        deltas = np.atleast_1d(deltas)
        for slot, delta in zip(slots, deltas):
            self.counters[slot].value += float(delta)

    def rdpmc(self, slot: int) -> int:
        """Read a counter (RDPMC); raises if the slot is unprogrammed."""
        counter = self._slot(slot)
        if not counter.programmed:
            raise RuntimeError(f"RDPMC on unprogrammed counter slot {slot}")
        return int(round(counter.value))

    def read_all(self) -> dict[int, int]:
        """Read every programmed counter."""
        return {slot: self.rdpmc(slot) for slot in self.programmed_slots()}
