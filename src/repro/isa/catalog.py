"""Machine-readable ISA catalog generation.

Real fuzzing campaigns in the paper start from the uops.info x86 list:
roughly fourteen thousand instruction *variants* (mnemonic + operand form
+ encoding), of which only about 24% execute legally on a given
microarchitecture. This module deterministically generates an equivalent
catalog for the simulated processors.

Generation has two stages:

1. *Base variants* — realistic instruction families (scalar ALU,
   condition-code expansions, MMX/SSE/AVX/AVX-512 SIMD grids, x87,
   crypto, BMI, string, stack, cache-control, system) are expanded
   combinatorially.
2. *Encoding variants* — like uops.info, distinct encodings (LOCK, REP,
   REX, VEX.128/256, EVEX.512, XACQUIRE, ...) of the same base form are
   separate catalog entries. Encodings are appended deterministically
   until the catalog reaches its target size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.spec import (
    Extension,
    InstructionCategory,
    InstructionClass,
    InstructionSpec,
    OperandForm,
)

#: Default catalog size, matching the uops.info-era x86 variant count
#: implied by the paper (3386 legal / 24.16% legal ratio ~= 14,015).
DEFAULT_CATALOG_SIZE = 14015

#: x86 condition codes used to expand Jcc/SETcc/CMOVcc families.
CONDITION_CODES = (
    "O", "NO", "B", "AE", "E", "NE", "BE", "A",
    "S", "NS", "P", "NP", "L", "GE", "LE", "G",
)

#: Encoding tags appended in stage 2; order matters (deterministic).
ENCODING_TAGS = ("REX", "LOCK", "VEX.128", "VEX.256", "EVEX.512", "XACQ",
                 "BND", "O16", "SEG.FS", "SEG.GS")


@dataclass
class IsaCatalog:
    """A generated ISA catalog: an ordered list of instruction variants.

    ``variants`` preserves generation order so indices are stable across
    runs, which the fuzzer relies on for reproducible sampling.
    """

    isa_name: str
    variants: list[InstructionSpec] = field(default_factory=list)
    _by_name: dict[str, InstructionSpec] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.variants)

    def __iter__(self):
        return iter(self.variants)

    def add(self, spec: InstructionSpec) -> None:
        """Append a variant; duplicate names are rejected."""
        if spec.name in self._by_name:
            raise ValueError(f"duplicate instruction variant {spec.name!r}")
        self._by_name[spec.name] = spec
        self.variants.append(spec)

    def get(self, name: str) -> InstructionSpec:
        """Look up a variant by its unique name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"unknown instruction variant {name!r}") from exc

    def by_extension(self, extension: Extension) -> list[InstructionSpec]:
        """All variants belonging to ``extension``."""
        return [v for v in self.variants if v.extension is extension]

    def by_category(self, category: InstructionCategory) -> list[InstructionSpec]:
        """All variants belonging to ``category``."""
        return [v for v in self.variants if v.category is category]


def _scalar_alu(cat: IsaCatalog) -> None:
    arithmetic = ("ADD", "SUB", "ADC", "SBB", "INC", "DEC", "NEG", "CMP")
    logical = ("AND", "OR", "XOR", "NOT", "TEST")
    unary_forms = (OperandForm.R32, OperandForm.R64, OperandForm.M64)
    binary_forms = (
        OperandForm.R32_R32, OperandForm.R64_R64, OperandForm.R32_IMM,
        OperandForm.R64_IMM, OperandForm.R64_M64, OperandForm.M64_R64,
    )
    for mnemonic in arithmetic + logical:
        category = (InstructionCategory.ARITHMETIC if mnemonic in arithmetic
                    else InstructionCategory.LOGICAL)
        iclass = InstructionClass.ALU if mnemonic in arithmetic else InstructionClass.BIT
        forms = unary_forms if mnemonic in ("INC", "DEC", "NEG", "NOT") else binary_forms
        for form in forms:
            cat.add(InstructionSpec(mnemonic, form, iclass, Extension.BASE, category))

    for mnemonic in ("SHL", "SHR", "SAR", "ROL", "ROR", "RCL", "RCR", "SHLD", "SHRD"):
        for form in (OperandForm.R32_IMM, OperandForm.R64_IMM, OperandForm.R64_R64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.BIT,
                                    Extension.BASE, InstructionCategory.LOGICAL))

    for mnemonic, iclass, uops, latency in (
        ("MUL", InstructionClass.MUL, 2, 3), ("IMUL", InstructionClass.MUL, 1, 3),
        ("DIV", InstructionClass.DIV, 10, 22), ("IDIV", InstructionClass.DIV, 10, 24),
    ):
        for form in (OperandForm.R32, OperandForm.R64, OperandForm.R64_R64,
                     OperandForm.R64_M64):
            cat.add(InstructionSpec(mnemonic, form, iclass, Extension.BASE,
                                    InstructionCategory.ARITHMETIC,
                                    uops=uops, latency=latency))


def _data_transfer(cat: IsaCatalog) -> None:
    for form in (OperandForm.R32_R32, OperandForm.R64_R64, OperandForm.R32_IMM,
                 OperandForm.R64_IMM):
        cat.add(InstructionSpec("MOV", form, InstructionClass.MOV, Extension.BASE,
                                InstructionCategory.DATA_TRANSFER))
    cat.add(InstructionSpec("MOV", OperandForm.R64_M64, InstructionClass.LOAD,
                            Extension.BASE, InstructionCategory.DATA_TRANSFER,
                            latency=4))
    cat.add(InstructionSpec("MOV", OperandForm.M64_R64, InstructionClass.STORE,
                            Extension.BASE, InstructionCategory.DATA_TRANSFER))
    for mnemonic in ("MOVZX", "MOVSX", "MOVSXD", "BSWAP", "XCHG", "XADD",
                     "CMPXCHG"):
        for form in (OperandForm.R64_R64, OperandForm.R64_M64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.MOV,
                                    Extension.BASE,
                                    InstructionCategory.DATA_TRANSFER))
    cat.add(InstructionSpec("LEA", OperandForm.R64_M64, InstructionClass.LEA,
                            Extension.BASE, InstructionCategory.DATA_TRANSFER))
    for cc in CONDITION_CODES:
        for form in (OperandForm.R32_R32, OperandForm.R64_R64, OperandForm.R64_M64):
            cat.add(InstructionSpec(f"CMOV{cc}", form, InstructionClass.MOV,
                                    Extension.BASE,
                                    InstructionCategory.DATA_TRANSFER))
        cat.add(InstructionSpec(f"SET{cc}", OperandForm.R8, InstructionClass.ALU,
                                Extension.BASE, InstructionCategory.LOGICAL))


def _control_flow(cat: IsaCatalog) -> None:
    for cc in CONDITION_CODES:
        for form in (OperandForm.REL8, OperandForm.REL32):
            cat.add(InstructionSpec(f"J{cc}", form, InstructionClass.BRANCH_COND,
                                    Extension.BASE,
                                    InstructionCategory.CONTROL_FLOW))
    for form in (OperandForm.REL8, OperandForm.REL32, OperandForm.R64):
        cat.add(InstructionSpec("JMP", form, InstructionClass.BRANCH_UNCOND,
                                Extension.BASE, InstructionCategory.CONTROL_FLOW))
    for form in (OperandForm.REL32, OperandForm.R64):
        cat.add(InstructionSpec("CALL", form, InstructionClass.CALL,
                                Extension.BASE, InstructionCategory.CONTROL_FLOW,
                                uops=2))
    cat.add(InstructionSpec("RET", OperandForm.NONE, InstructionClass.RET,
                            Extension.BASE, InstructionCategory.CONTROL_FLOW,
                            uops=2))
    for mnemonic in ("LOOP", "LOOPE", "LOOPNE", "JCXZ", "JECXZ", "JRCXZ"):
        cat.add(InstructionSpec(mnemonic, OperandForm.REL8,
                                InstructionClass.BRANCH_COND, Extension.BASE,
                                InstructionCategory.CONTROL_FLOW))


def _stack(cat: IsaCatalog) -> None:
    for form in (OperandForm.R64, OperandForm.M64, OperandForm.IMM):
        cat.add(InstructionSpec("PUSH", form, InstructionClass.PUSH,
                                Extension.BASE, InstructionCategory.STACK))
    for form in (OperandForm.R64, OperandForm.M64):
        cat.add(InstructionSpec("POP", form, InstructionClass.POP,
                                Extension.BASE, InstructionCategory.STACK,
                                latency=4))
    for mnemonic in ("PUSHF", "POPF", "ENTER", "LEAVE"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.PUSH,
                                Extension.BASE, InstructionCategory.STACK, uops=2))


def _string_ops(cat: IsaCatalog) -> None:
    for base in ("MOVS", "STOS", "LODS", "CMPS", "SCAS"):
        for width in ("B", "W", "D", "Q"):
            for rep in ("", "REP "):
                mnemonic = f"{rep}{base}{width}"
                cat.add(InstructionSpec(mnemonic, OperandForm.NONE,
                                        InstructionClass.STRING, Extension.BASE,
                                        InstructionCategory.STRING,
                                        uops=4 if rep else 2,
                                        latency=8 if rep else 4))


def _x87(cat: IsaCatalog) -> None:
    binary = ("FADD", "FSUB", "FSUBR", "FMUL", "FDIV", "FDIVR", "FCOM",
              "FCOMP", "FUCOM")
    unary = ("FSQRT", "FSIN", "FCOS", "FSINCOS", "FPTAN", "FPATAN", "F2XM1",
             "FYL2X", "FABS", "FCHS", "FRNDINT", "FSCALE", "FXTRACT", "FPREM",
             "FPREM1", "FTST", "FXAM", "FLD1", "FLDZ", "FLDPI", "FLDL2E",
             "FLDL2T", "FLDLG2", "FLDLN2", "FNOP", "FINCSTP", "FDECSTP")
    for mnemonic in binary:
        for form in (OperandForm.ST_ST, OperandForm.ST_M64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.X87,
                                    Extension.X87_FPU, InstructionCategory.FLOAT,
                                    latency=5))
    for mnemonic in unary:
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.X87,
                                Extension.X87_FPU, InstructionCategory.FLOAT,
                                latency=20 if mnemonic.startswith(("FS", "FP", "F2", "FY")) else 3))
    for mnemonic, form in (("FLD", OperandForm.ST_M64), ("FST", OperandForm.ST_M64),
                           ("FSTP", OperandForm.ST_M64), ("FILD", OperandForm.ST_M64),
                           ("FIST", OperandForm.ST_M64), ("FISTP", OperandForm.ST_M64)):
        cat.add(InstructionSpec(mnemonic, form, InstructionClass.X87,
                                Extension.X87_FPU, InstructionCategory.FLOAT,
                                latency=6))


_SIMD_INT_BASES = (
    "PADD", "PADDS", "PADDUS", "PSUB", "PSUBS", "PSUBUS", "PMULL", "PMULH",
    "PMADDW", "PCMPEQ", "PCMPGT", "PSLL", "PSRL", "PSRA", "PUNPCKL", "PUNPCKH",
    "PAVG", "PMAX", "PMIN", "PABS", "PSIGN", "PSHUF", "PHADD", "PHSUB",
    "PMOVZX", "PMOVSX", "PEXTR", "PINSR",
)
_SIMD_INT_NOWIDTH = ("PAND", "PANDN", "POR", "PXOR", "PACKSSWB", "PACKUSWB",
                     "PALIGNR", "PBLENDW", "PTEST", "PSADBW", "PMULUDQ")
_SIMD_FP_BASES = (
    "ADD", "SUB", "MUL", "DIV", "SQRT", "MIN", "MAX", "RCP", "RSQRT", "CMP",
    "AND", "OR", "XOR", "ANDN", "UNPCKL", "UNPCKH", "SHUF", "BLEND",
    "DP", "HADD", "HSUB", "ROUND", "MOVA", "MOVU", "CVTDQ2",
)


def _simd(cat: IsaCatalog) -> None:
    # Integer SIMD grid: base x element width x ISA level x operand form.
    levels = (
        ("", Extension.MMX, OperandForm.R64_R64, OperandForm.R64_M64),
        ("", Extension.SSE2, OperandForm.XMM_XMM, OperandForm.XMM_M128),
        ("V", Extension.AVX2, OperandForm.YMM_YMM, OperandForm.YMM_M256),
        ("V", Extension.AVX512, OperandForm.ZMM_ZMM, OperandForm.M256),
    )
    for base in _SIMD_INT_BASES:
        for width in ("B", "W", "D", "Q"):
            for prefix, ext, reg_form, mem_form in levels:
                mnemonic = f"{prefix}{base}{width}"
                for form in (reg_form, mem_form):
                    try:
                        cat.add(InstructionSpec(
                            mnemonic, form, InstructionClass.SIMD_INT, ext,
                            InstructionCategory.SIMD,
                            latency=3, width_bits=_level_width(ext)))
                    except ValueError:
                        # MMX and SSE2 share un-prefixed mnemonics; the
                        # wider form wins and the duplicate is skipped.
                        continue
    for mnemonic in _SIMD_INT_NOWIDTH:
        for prefix, ext, reg_form, mem_form in levels:
            full = f"{prefix}{mnemonic}"
            for form in (reg_form, mem_form):
                try:
                    cat.add(InstructionSpec(full, form, InstructionClass.SIMD_INT,
                                            ext, InstructionCategory.SIMD,
                                            width_bits=_level_width(ext)))
                except ValueError:
                    continue
    # Floating-point SIMD grid.
    fp_levels = (
        ("", Extension.SSE, OperandForm.XMM_XMM, OperandForm.XMM_M128),
        ("V", Extension.AVX, OperandForm.YMM_YMM, OperandForm.YMM_M256),
        ("V", Extension.AVX512, OperandForm.ZMM_ZMM, OperandForm.M256),
    )
    for base in _SIMD_FP_BASES:
        for suffix in ("PS", "PD", "SS", "SD"):
            for prefix, ext, reg_form, mem_form in fp_levels:
                mnemonic = f"{prefix}{base}{suffix}"
                for form in (reg_form, mem_form):
                    try:
                        cat.add(InstructionSpec(
                            mnemonic, form, InstructionClass.SIMD_FP, ext,
                            InstructionCategory.SIMD,
                            latency=4 if base not in ("DIV", "SQRT") else 13,
                            uops=1 if base not in ("DIV", "SQRT") else 3,
                            width_bits=_level_width(ext)))
                    except ValueError:
                        continue
    # FMA grid.
    for op in ("VFMADD", "VFMSUB", "VFNMADD", "VFNMSUB"):
        for order in ("132", "213", "231"):
            for suffix in ("PS", "PD", "SS", "SD"):
                for form in (OperandForm.XMM_XMM, OperandForm.XMM_M128,
                             OperandForm.YMM_YMM, OperandForm.YMM_M256):
                    cat.add(InstructionSpec(f"{op}{order}{suffix}", form,
                                            InstructionClass.FMA, Extension.FMA,
                                            InstructionCategory.SIMD, latency=4,
                                            width_bits=256))


def _level_width(extension: Extension) -> int:
    return {Extension.MMX: 64, Extension.SSE: 128, Extension.SSE2: 128,
            Extension.AVX: 256, Extension.AVX2: 256,
            Extension.AVX512: 512}.get(extension, 128)


def _crypto_bmi(cat: IsaCatalog) -> None:
    for mnemonic in ("AESENC", "AESENCLAST", "AESDEC", "AESDECLAST",
                     "AESIMC", "AESKEYGENASSIST", "PCLMULQDQ"):
        for form in (OperandForm.XMM_XMM, OperandForm.XMM_M128):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.CRYPTO,
                                    Extension.AES, InstructionCategory.CRYPTO,
                                    latency=4))
    for mnemonic in ("SHA1RNDS4", "SHA1NEXTE", "SHA1MSG1", "SHA1MSG2",
                     "SHA256RNDS2", "SHA256MSG1", "SHA256MSG2"):
        for form in (OperandForm.XMM_XMM, OperandForm.XMM_M128):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.CRYPTO,
                                    Extension.SHA, InstructionCategory.CRYPTO,
                                    latency=5))
    bmi1 = ("ANDN", "BEXTR", "BLSI", "BLSMSK", "BLSR", "TZCNT")
    bmi2 = ("BZHI", "PDEP", "PEXT", "RORX", "SARX", "SHLX", "SHRX", "MULX")
    for mnemonic in bmi1 + bmi2:
        ext = Extension.BMI1 if mnemonic in bmi1 else Extension.BMI2
        for form in (OperandForm.R64_R64, OperandForm.R64_M64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.BIT, ext,
                                    InstructionCategory.LOGICAL))
    for mnemonic in ("LZCNT", "POPCNT", "BSF", "BSR", "BT", "BTS", "BTR", "BTC"):
        for form in (OperandForm.R64_R64, OperandForm.R64_M64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.BIT,
                                    Extension.BASE, InstructionCategory.LOGICAL))
    for mnemonic in ("ADCX", "ADOX"):
        for form in (OperandForm.R64_R64, OperandForm.R64_M64):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.ALU,
                                    Extension.ADX, InstructionCategory.ARITHMETIC))


def _cache_and_system(cat: IsaCatalog) -> None:
    cat.add(InstructionSpec("CLFLUSH", OperandForm.M8, InstructionClass.CLFLUSH,
                            Extension.BASE, InstructionCategory.CACHE_CONTROL,
                            uops=2, latency=100))
    cat.add(InstructionSpec("CLFLUSHOPT", OperandForm.M8, InstructionClass.CLFLUSH,
                            Extension.CLFLUSHOPT,
                            InstructionCategory.CACHE_CONTROL, uops=2, latency=90))
    cat.add(InstructionSpec("CLWB", OperandForm.M8, InstructionClass.CLFLUSH,
                            Extension.CLFLUSHOPT,
                            InstructionCategory.CACHE_CONTROL, uops=2, latency=80))
    for mnemonic in ("PREFETCHT0", "PREFETCHT1", "PREFETCHT2", "PREFETCHNTA"):
        cat.add(InstructionSpec(mnemonic, OperandForm.M8, InstructionClass.PREFETCH,
                                Extension.SSE, InstructionCategory.CACHE_CONTROL))
    cat.add(InstructionSpec("PREFETCHW", OperandForm.M8, InstructionClass.PREFETCH,
                            Extension.PREFETCHW, InstructionCategory.CACHE_CONTROL))
    for mnemonic, ext in (("MOVNTI", Extension.SSE2), ("MOVNTDQ", Extension.SSE2),
                          ("MOVNTPS", Extension.SSE), ("MOVNTPD", Extension.SSE2)):
        cat.add(InstructionSpec(mnemonic, OperandForm.M128_XMM
                                if mnemonic != "MOVNTI" else OperandForm.M64_R64,
                                InstructionClass.STORE, ext,
                                InstructionCategory.CACHE_CONTROL))
    for mnemonic in ("LFENCE", "MFENCE", "SFENCE"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.FENCE,
                                Extension.SSE2, InstructionCategory.SYSTEM,
                                latency=6))
    cat.add(InstructionSpec("CPUID", OperandForm.NONE, InstructionClass.SERIALIZE,
                            Extension.BASE, InstructionCategory.SYSTEM,
                            uops=30, latency=100))
    cat.add(InstructionSpec("RDPMC", OperandForm.NONE, InstructionClass.RDPMC,
                            Extension.BASE, InstructionCategory.SYSTEM,
                            uops=10, latency=30))
    for mnemonic in ("RDTSC", "RDTSCP", "XGETBV", "RDRAND", "RDSEED", "PAUSE"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.SYSTEM,
                                Extension.BASE, InstructionCategory.SYSTEM,
                                uops=4, latency=25))
    for mnemonic in ("INVLPG", "WBINVD", "INVD", "HLT", "RDMSR", "WRMSR",
                     "LGDT", "LIDT", "LTR", "CLTS", "IN", "OUT", "CLI", "STI",
                     "MONITOR", "MWAIT", "SWAPGS", "VMCALL", "VMMCALL"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.SYSTEM,
                                Extension.BASE, InstructionCategory.SYSTEM,
                                uops=20, latency=150))
    cat.add(InstructionSpec("NOP", OperandForm.NONE, InstructionClass.NOP,
                            Extension.BASE, InstructionCategory.MISC))
    for width in ("2", "3", "4", "5", "6", "7", "8", "9"):
        cat.add(InstructionSpec(f"NOP{width}B", OperandForm.NONE,
                                InstructionClass.NOP, Extension.BASE,
                                InstructionCategory.MISC))
    for mnemonic, ext in (("XBEGIN", Extension.TSX), ("XEND", Extension.TSX),
                          ("XABORT", Extension.TSX), ("XTEST", Extension.TSX),
                          ("BNDMK", Extension.MPX), ("BNDCL", Extension.MPX),
                          ("BNDCU", Extension.MPX), ("BNDMOV", Extension.MPX),
                          ("ENDBR64", Extension.CET), ("RDSSPQ", Extension.CET),
                          ("INCSSPQ", Extension.CET),
                          ("XSTORE", Extension.VIA_PADLOCK),
                          ("XCRYPTECB", Extension.VIA_PADLOCK)):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE, InstructionClass.SYSTEM,
                                ext, InstructionCategory.SYSTEM, uops=6,
                                latency=40))


#: Encoding tags compatible with each instruction class (stage 2).
_ENCODABLE_CLASSES = {
    "REX": None,  # None means "any class"
    "LOCK": {InstructionClass.ALU, InstructionClass.BIT, InstructionClass.MOV,
             InstructionClass.STORE},
    "VEX.128": {InstructionClass.SIMD_INT, InstructionClass.SIMD_FP,
                InstructionClass.FMA, InstructionClass.CRYPTO},
    "VEX.256": {InstructionClass.SIMD_INT, InstructionClass.SIMD_FP,
                InstructionClass.FMA},
    "EVEX.512": {InstructionClass.SIMD_INT, InstructionClass.SIMD_FP,
                 InstructionClass.FMA},
    "XACQ": {InstructionClass.STORE, InstructionClass.MOV},
    "BND": {InstructionClass.BRANCH_COND, InstructionClass.BRANCH_UNCOND,
            InstructionClass.CALL, InstructionClass.RET},
    "O16": None,  # operand-size override applies everywhere
    "SEG.FS": {InstructionClass.LOAD, InstructionClass.STORE,
               InstructionClass.MOV, InstructionClass.ALU,
               InstructionClass.BIT, InstructionClass.CLFLUSH,
               InstructionClass.PREFETCH},
    "SEG.GS": {InstructionClass.LOAD, InstructionClass.STORE,
               InstructionClass.MOV, InstructionClass.ALU,
               InstructionClass.BIT, InstructionClass.CLFLUSH,
               InstructionClass.PREFETCH},
}

#: Extension implied by an encoding tag (overrides the base variant's).
_ENCODING_EXTENSION = {
    "VEX.128": Extension.AVX,
    "VEX.256": Extension.AVX,
    "EVEX.512": Extension.AVX512,
    "XACQ": Extension.TSX,
    "BND": Extension.MPX,
}


def _expand_encodings(cat: IsaCatalog, target_size: int) -> None:
    """Stage 2: append encoding variants until ``target_size`` entries.

    Tags are applied in deterministic order over the current variant
    list; if one pass is not enough, subsequent passes combine tags
    (e.g. ``ADD r64,r64 [REX] [LOCK]``), just as real encodings compose.
    """
    while len(cat) < target_size:
        grown = False
        source_variants = list(cat.variants)
        for tag in ENCODING_TAGS:
            if len(cat) >= target_size:
                return
            allowed = _ENCODABLE_CLASSES[tag]
            for base in source_variants:
                if len(cat) >= target_size:
                    return
                if allowed is not None and base.iclass not in allowed:
                    continue
                if f"[{tag}]" in base.mnemonic:
                    continue
                extension = _ENCODING_EXTENSION.get(tag, base.extension)
                encoded = InstructionSpec(
                    mnemonic=f"{base.mnemonic} [{tag}]",
                    operand_form=base.operand_form,
                    iclass=base.iclass,
                    extension=extension,
                    category=base.category,
                    uops=base.uops,
                    latency=base.latency,
                    width_bits=base.width_bits,
                )
                try:
                    cat.add(encoded)
                    grown = True
                except ValueError:
                    continue
        if not grown:
            raise ValueError(
                f"catalog generation exhausted encodings at {len(cat)} "
                f"variants, cannot reach target_size={target_size}"
            )


def build_catalog(isa_name: str = "x86-sim",
                  target_size: int = DEFAULT_CATALOG_SIZE) -> IsaCatalog:
    """Build the machine-readable catalog for ``isa_name``.

    The catalog is fully deterministic: same name and size always yield
    the same variant list in the same order.
    """
    if target_size < 1:
        raise ValueError(f"target_size must be positive, got {target_size}")
    cat = IsaCatalog(isa_name=isa_name)
    _scalar_alu(cat)
    _data_transfer(cat)
    _control_flow(cat)
    _stack(cat)
    _string_ops(cat)
    _x87(cat)
    _simd(cat)
    _crypto_bmi(cat)
    _cache_and_system(cat)
    if len(cat) > target_size:
        del cat.variants[target_size:]
        cat._by_name = {v.name: v for v in cat.variants}
    else:
        _expand_encodings(cat, target_size)
    return cat


_SHARED_CATALOGS: dict[tuple[str, int], IsaCatalog] = {}


def shared_catalog(isa_name: str = "x86-sim",
                   target_size: int = DEFAULT_CATALOG_SIZE) -> IsaCatalog:
    """Process-wide cached :func:`build_catalog` result.

    Generation takes tens of milliseconds; components that only read the
    catalog (the execution harness, fuzzing campaigns and their worker
    processes) share one instance instead of regenerating it. Callers
    must not mutate the returned catalog — use :func:`build_catalog` for
    a private copy.
    """
    key = (isa_name, target_size)
    catalog = _SHARED_CATALOGS.get(key)
    if catalog is None:
        catalog = build_catalog(isa_name, target_size)
        _SHARED_CATALOGS[key] = catalog
    return catalog
