"""Instruction specification types.

An :class:`InstructionSpec` corresponds to one *instruction variant* in a
machine-readable ISA list (uops.info style): a mnemonic plus a concrete
operand form, annotated with the ISA extension it belongs to, its general
category, and the microarchitectural semantics the simulator needs
(instruction class, uop count, latency, memory behaviour).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InstructionClass(enum.Enum):
    """Semantic class driving the detailed execution path."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    BIT = "bit"
    MOV = "mov"
    LEA = "lea"
    LOAD = "load"
    STORE = "store"
    BRANCH_COND = "branch_cond"
    BRANCH_UNCOND = "branch_uncond"
    CALL = "call"
    RET = "ret"
    PUSH = "push"
    POP = "pop"
    NOP = "nop"
    X87 = "x87"
    SIMD_INT = "simd_int"
    SIMD_FP = "simd_fp"
    FMA = "fma"
    CRYPTO = "crypto"
    CLFLUSH = "clflush"
    PREFETCH = "prefetch"
    FENCE = "fence"
    SERIALIZE = "serialize"
    RDPMC = "rdpmc"
    TLB_FLUSH = "tlb_flush"
    STRING = "string"
    SYSTEM = "system"


class Extension(enum.Enum):
    """ISA extension an instruction variant belongs to."""

    BASE = "BASE"
    X87_FPU = "X87-FPU"
    MMX = "MMX"
    SSE = "SSE"
    SSE2 = "SSE2"
    SSE3 = "SSE3"
    SSSE3 = "SSSE3"
    SSE4_1 = "SSE4.1"
    SSE4_2 = "SSE4.2"
    AVX = "AVX"
    AVX2 = "AVX2"
    AVX512 = "AVX512"
    FMA = "FMA"
    BMI1 = "BMI1"
    BMI2 = "BMI2"
    AES = "AES"
    SHA = "SHA"
    ADX = "ADX"
    CLFLUSHOPT = "CLFLUSHOPT"
    PREFETCHW = "PREFETCHW"
    TSX = "TSX"
    MPX = "MPX"
    CET = "CET"
    VIA_PADLOCK = "VIA-PADLOCK"


class InstructionCategory(enum.Enum):
    """General category (uops.info-style) used by gadget filtering."""

    ARITHMETIC = "arithmetic"
    LOGICAL = "logical"
    DATA_TRANSFER = "data_transfer"
    CONTROL_FLOW = "control_flow"
    FLOAT = "float"
    SIMD = "simd"
    CRYPTO = "crypto"
    CACHE_CONTROL = "cache_control"
    STACK = "stack"
    STRING = "string"
    SYSTEM = "system"
    MISC = "misc"


class OperandForm(enum.Enum):
    """Concrete operand encoding of a variant."""

    NONE = "none"
    R8 = "r8"
    R16 = "r16"
    R32 = "r32"
    R64 = "r64"
    R32_R32 = "r32,r32"
    R64_R64 = "r64,r64"
    R32_IMM = "r32,imm"
    R64_IMM = "r64,imm"
    R64_M64 = "r64,m64"
    M64_R64 = "m64,r64"
    M8 = "m8"
    M64 = "m64"
    M128 = "m128"
    M256 = "m256"
    XMM_XMM = "xmm,xmm"
    XMM_M128 = "xmm,m128"
    M128_XMM = "m128,xmm"
    YMM_YMM = "ymm,ymm"
    YMM_M256 = "ymm,m256"
    ZMM_ZMM = "zmm,zmm"
    REL8 = "rel8"
    REL32 = "rel32"
    ST_ST = "st,st"
    ST_M64 = "st,m64"
    IMM = "imm"


#: Operand forms that read memory.
MEMORY_READ_FORMS: frozenset[OperandForm] = frozenset(
    {
        OperandForm.R64_M64,
        OperandForm.M64,
        OperandForm.M128,
        OperandForm.M256,
        OperandForm.XMM_M128,
        OperandForm.YMM_M256,
        OperandForm.ST_M64,
        OperandForm.M8,
    }
)

#: Operand forms that write memory.
MEMORY_WRITE_FORMS: frozenset[OperandForm] = frozenset(
    {OperandForm.M64_R64, OperandForm.M128_XMM}
)


class FaultKind(enum.Enum):
    """Fault raised when an illegal variant is executed."""

    NONE = "none"
    UNDEFINED_OPCODE = "#UD"
    GENERAL_PROTECTION = "#GP"
    PAGE_FAULT = "#PF"
    DEVICE_NOT_AVAILABLE = "#NM"


@dataclass(frozen=True)
class InstructionSpec:
    """One instruction variant in the machine-readable ISA list.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic, e.g. ``"ADD"``.
    operand_form:
        Concrete operand encoding of this variant.
    iclass:
        Semantic class used by the detailed execution path.
    extension:
        ISA extension the variant belongs to (used by gadget filtering).
    category:
        General category (arithmetic, logical, ...).
    uops:
        Number of micro-ops the variant decodes into.
    latency:
        Nominal execution latency in cycles.
    width_bits:
        Operand width in bits (0 when not meaningful).
    """

    mnemonic: str
    operand_form: OperandForm
    iclass: InstructionClass
    extension: Extension
    category: InstructionCategory
    uops: int = 1
    latency: int = 1
    width_bits: int = 64

    @property
    def name(self) -> str:
        """Unique variant name, e.g. ``"ADD r64,r64"``."""
        if self.operand_form is OperandForm.NONE:
            return self.mnemonic
        return f"{self.mnemonic} {self.operand_form.value}"

    @property
    def reads_memory(self) -> bool:
        """Whether the variant performs a memory load."""
        return (
            self.operand_form in MEMORY_READ_FORMS
            or self.iclass in (InstructionClass.LOAD, InstructionClass.POP,
                               InstructionClass.RET, InstructionClass.STRING)
        )

    @property
    def writes_memory(self) -> bool:
        """Whether the variant performs a memory store."""
        return (
            self.operand_form in MEMORY_WRITE_FORMS
            or self.iclass in (InstructionClass.STORE, InstructionClass.PUSH,
                               InstructionClass.CALL, InstructionClass.STRING)
        )


@dataclass(frozen=True)
class Instruction:
    """A placed instance of a variant inside a program.

    ``address`` is the (simulated) code address, ``mem_operand`` the data
    address touched by memory variants, and ``taken`` resolves
    conditional branches.
    """

    spec: InstructionSpec
    address: int = 0
    mem_operand: int = 0
    taken: bool = False
    target: int = 0


@dataclass
class Program:
    """A straight-line sequence of placed instructions."""

    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)
