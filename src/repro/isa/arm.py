"""An AArch64-flavored catalog: the methodology is ISA-agnostic.

The paper focuses on x86 but notes the fuzzing methodology "is
applicable to other ISA (e.g., ARM) as well". This module generates an
AArch64-style machine-readable list with the same schema, so every
stage of the Event Fuzzer (cleanup, grammar, harness, confirmation,
filtering) runs unchanged on a second architecture.
"""

from __future__ import annotations

from repro.isa.catalog import IsaCatalog
from repro.isa.legality import MicroArchProfile
from repro.isa.spec import (
    Extension,
    InstructionCategory,
    InstructionClass,
    InstructionSpec,
    OperandForm,
)

#: Default AArch64 catalog size (A64 base + NEON/SVE variants).
DEFAULT_ARM_CATALOG_SIZE = 3600

_ARM_CONDITIONS = ("EQ", "NE", "CS", "CC", "MI", "PL", "VS", "VC",
                   "HI", "LS", "GE", "LT", "GT", "LE")


def _scalar(cat: IsaCatalog) -> None:
    for mnemonic in ("ADD", "SUB", "ADC", "SBC", "AND", "ORR", "EOR",
                     "BIC", "ORN", "EON", "MVN", "NEG", "CMP", "CMN",
                     "TST"):
        iclass = (InstructionClass.BIT
                  if mnemonic in ("AND", "ORR", "EOR", "BIC", "ORN",
                                  "EON", "MVN", "TST")
                  else InstructionClass.ALU)
        category = (InstructionCategory.LOGICAL
                    if iclass is InstructionClass.BIT
                    else InstructionCategory.ARITHMETIC)
        for form in (OperandForm.R32_R32, OperandForm.R64_R64,
                     OperandForm.R32_IMM, OperandForm.R64_IMM):
            cat.add(InstructionSpec(mnemonic, form, iclass, Extension.BASE,
                                    category))
    for mnemonic in ("LSL", "LSR", "ASR", "ROR", "RBIT", "REV", "CLZ",
                     "UBFM", "SBFM", "EXTR"):
        for form in (OperandForm.R64_R64, OperandForm.R64_IMM):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.BIT,
                                    Extension.BASE,
                                    InstructionCategory.LOGICAL))
    for mnemonic, iclass, latency in (("MUL", InstructionClass.MUL, 3),
                                      ("MADD", InstructionClass.MUL, 4),
                                      ("MSUB", InstructionClass.MUL, 4),
                                      ("SMULH", InstructionClass.MUL, 5),
                                      ("UMULH", InstructionClass.MUL, 5),
                                      ("SDIV", InstructionClass.DIV, 16),
                                      ("UDIV", InstructionClass.DIV, 16)):
        for form in (OperandForm.R32_R32, OperandForm.R64_R64):
            cat.add(InstructionSpec(mnemonic, form, iclass, Extension.BASE,
                                    InstructionCategory.ARITHMETIC,
                                    latency=latency))


def _memory(cat: IsaCatalog) -> None:
    loads = ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH", "LDRSW", "LDUR",
             "LDP", "LDAR", "LDXR", "LDAXR")
    stores = ("STR", "STRB", "STRH", "STUR", "STP", "STLR", "STXR",
              "STLXR")
    for mnemonic in loads:
        cat.add(InstructionSpec(mnemonic, OperandForm.R64_M64,
                                InstructionClass.LOAD, Extension.BASE,
                                InstructionCategory.DATA_TRANSFER,
                                latency=4))
    for mnemonic in stores:
        cat.add(InstructionSpec(mnemonic, OperandForm.M64_R64,
                                InstructionClass.STORE, Extension.BASE,
                                InstructionCategory.DATA_TRANSFER))
    for mnemonic, iclass in (("DC CIVAC", InstructionClass.CLFLUSH),
                             ("DC CVAC", InstructionClass.CLFLUSH),
                             ("IC IALLU", InstructionClass.CLFLUSH),
                             ("PRFM PLDL1KEEP", InstructionClass.PREFETCH),
                             ("PRFM PLDL2KEEP", InstructionClass.PREFETCH),
                             ("PRFM PSTL1KEEP", InstructionClass.PREFETCH)):
        cat.add(InstructionSpec(mnemonic, OperandForm.M8, iclass,
                                Extension.BASE,
                                InstructionCategory.CACHE_CONTROL,
                                uops=2, latency=40))
    for mnemonic in ("DMB ISH", "DSB ISH", "ISB"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE,
                                InstructionClass.FENCE, Extension.BASE,
                                InstructionCategory.SYSTEM, latency=8))


def _control(cat: IsaCatalog) -> None:
    for condition in _ARM_CONDITIONS:
        cat.add(InstructionSpec(f"B.{condition}", OperandForm.REL32,
                                InstructionClass.BRANCH_COND,
                                Extension.BASE,
                                InstructionCategory.CONTROL_FLOW))
        cat.add(InstructionSpec(f"CSEL.{condition}", OperandForm.R64_R64,
                                InstructionClass.MOV, Extension.BASE,
                                InstructionCategory.DATA_TRANSFER))
    for mnemonic, iclass in (("B", InstructionClass.BRANCH_UNCOND),
                             ("BR", InstructionClass.BRANCH_UNCOND),
                             ("BL", InstructionClass.CALL),
                             ("BLR", InstructionClass.CALL),
                             ("RET", InstructionClass.RET),
                             ("CBZ", InstructionClass.BRANCH_COND),
                             ("CBNZ", InstructionClass.BRANCH_COND),
                             ("TBZ", InstructionClass.BRANCH_COND),
                             ("TBNZ", InstructionClass.BRANCH_COND)):
        cat.add(InstructionSpec(mnemonic, OperandForm.REL32, iclass,
                                Extension.BASE,
                                InstructionCategory.CONTROL_FLOW))


_NEON_BASES = ("ADD", "SUB", "MUL", "MLA", "MLS", "ABD", "MAX", "MIN",
               "ADDP", "AND", "ORR", "EOR", "CMEQ", "CMGT", "CMGE",
               "SHL", "SSHR", "USHR", "ZIP1", "ZIP2", "UZP1", "UZP2",
               "TRN1", "TRN2", "REV64", "ABS", "NEG", "CNT")
_NEON_ARRANGEMENTS = ("8B", "16B", "4H", "8H", "2S", "4S", "2D")


def _simd(cat: IsaCatalog) -> None:
    for base in _NEON_BASES:
        for arrangement in _NEON_ARRANGEMENTS:
            for form in (OperandForm.XMM_XMM, OperandForm.XMM_M128):
                try:
                    cat.add(InstructionSpec(
                        f"V{base}.{arrangement}", form,
                        InstructionClass.SIMD_INT, Extension.SSE2,
                        InstructionCategory.SIMD, width_bits=128))
                except ValueError:
                    continue
    for base in ("FADD", "FSUB", "FMUL", "FDIV", "FSQRT", "FMAX", "FMIN",
                 "FABS", "FNEG", "FCMEQ", "FCMGT", "FRINTN", "FCVTZS"):
        for arrangement in ("2S", "4S", "2D"):
            for form in (OperandForm.XMM_XMM, OperandForm.XMM_M128):
                try:
                    cat.add(InstructionSpec(
                        f"{base}.{arrangement}", form,
                        InstructionClass.SIMD_FP, Extension.SSE,
                        InstructionCategory.SIMD,
                        latency=10 if base in ("FDIV", "FSQRT") else 4,
                        width_bits=128))
                except ValueError:
                    continue
    # SVE variants (not implemented by the simulated core -> illegal,
    # giving the ARM catalog its own cleanup ratio).
    for base in _NEON_BASES[:20]:
        for form in (OperandForm.ZMM_ZMM, OperandForm.M256):
            try:
                cat.add(InstructionSpec(f"SVE.{base}", form,
                                        InstructionClass.SIMD_INT,
                                        Extension.AVX512,
                                        InstructionCategory.SIMD,
                                        width_bits=512))
            except ValueError:
                continue
    for mnemonic in ("AESE", "AESD", "AESMC", "AESIMC", "SHA1C", "SHA1P",
                     "SHA1M", "SHA256H", "SHA256H2", "PMULL"):
        for form in (OperandForm.XMM_XMM,):
            cat.add(InstructionSpec(mnemonic, form, InstructionClass.CRYPTO,
                                    Extension.AES,
                                    InstructionCategory.CRYPTO, latency=4))


def _system(cat: IsaCatalog) -> None:
    cat.add(InstructionSpec("NOP", OperandForm.NONE, InstructionClass.NOP,
                            Extension.BASE, InstructionCategory.MISC))
    cat.add(InstructionSpec("YIELD", OperandForm.NONE, InstructionClass.NOP,
                            Extension.BASE, InstructionCategory.MISC))
    cat.add(InstructionSpec("MRS PMCCNTR_EL0", OperandForm.NONE,
                            InstructionClass.RDPMC, Extension.BASE,
                            InstructionCategory.SYSTEM, uops=4, latency=20))
    for mnemonic in ("MSR PMCR_EL0", "TLBI VMALLE1", "SVC", "HVC", "SMC",
                     "MRS SCTLR_EL1", "WFE", "WFI"):
        cat.add(InstructionSpec(mnemonic, OperandForm.NONE,
                                InstructionClass.SYSTEM, Extension.BASE,
                                InstructionCategory.SYSTEM, uops=8,
                                latency=60))


def build_arm_catalog(target_size: int = DEFAULT_ARM_CATALOG_SIZE
                      ) -> IsaCatalog:
    """Build the AArch64-style catalog (deterministic)."""
    if target_size < 1:
        raise ValueError(f"target_size must be positive, got {target_size}")
    cat = IsaCatalog(isa_name="aarch64-sim")
    _scalar(cat)
    _memory(cat)
    _control(cat)
    _simd(cat)
    _system(cat)
    if len(cat) > target_size:
        del cat.variants[target_size:]
        cat._by_name = {v.name: v for v in cat.variants}
        return cat
    # Encoding expansion: size/extension qualifiers, as on A64.
    from repro.isa.catalog import _expand_encodings
    _expand_encodings(cat, target_size)
    return cat


#: Neoverse-style profile: no SVE (AVX512 stands in for it), generous
#: base support — AArch64's regular encoding space means a larger legal
#: share than x86's.
ARM_NEOVERSE_N1 = MicroArchProfile(
    name="arm-neoverse-n1",
    supported_extensions=frozenset({
        Extension.BASE, Extension.SSE, Extension.SSE2, Extension.AES,
    }),
    target_legal_fraction=0.55,
    salt=7,
)
