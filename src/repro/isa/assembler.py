"""A tiny assembler for textual instruction sequences.

The fuzzer's cleanup step "transfers the ISA specification to an assembly
file"; this module provides that round-trip: catalog variants render to
one line each, and lines parse back to :class:`InstructionSpec` entries
via catalog lookup.
"""

from __future__ import annotations

from repro.isa.catalog import IsaCatalog
from repro.isa.spec import InstructionSpec


def disassemble(specs: list[InstructionSpec]) -> str:
    """Render instruction variants as an assembly listing, one per line."""
    return "\n".join(spec.name for spec in specs)


def assemble(text: str, catalog: IsaCatalog) -> list[InstructionSpec]:
    """Parse an assembly listing back into catalog variants.

    Blank lines and ``;`` comments are ignored. Unknown variants raise
    ``KeyError`` with the offending line number.
    """
    specs: list[InstructionSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            specs.append(catalog.get(line))
        except KeyError as exc:
            raise KeyError(f"line {lineno}: unknown instruction {line!r}") from exc
    return specs
