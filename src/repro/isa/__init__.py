"""Simulated machine-readable ISA specification.

The paper's Event Fuzzer starts from the uops.info machine-readable x86
instruction list: ~14k instruction *variants*, of which only ~24% execute
legally on a given microarchitecture. This package provides the same
artifact for the simulated processors: a deterministic catalog of
instruction variants with extension/category metadata, a legality tester,
and a tiny assembler for textual round-trips.
"""

from repro.isa.spec import (
    Extension,
    FaultKind,
    InstructionCategory,
    InstructionClass,
    InstructionSpec,
    OperandForm,
)
from repro.isa.catalog import IsaCatalog, build_catalog
from repro.isa.legality import LegalityTester, LegalityReport
from repro.isa.assembler import assemble, disassemble

__all__ = [
    "Extension",
    "FaultKind",
    "InstructionCategory",
    "InstructionClass",
    "InstructionSpec",
    "IsaCatalog",
    "LegalityReport",
    "LegalityTester",
    "OperandForm",
    "assemble",
    "build_catalog",
    "disassemble",
]
