"""Instruction legality testing (the fuzzer's *cleanup* step).

The paper transfers the machine-readable ISA list into an assembly file
and executes every variant; the ones that fault are excluded. On both of
their processors only ~24% of variants are legal, and ~99% of the faults
are illegal-instruction (#UD) faults.

Here the "execution" is simulated: a :class:`MicroArchProfile` declares
which ISA extensions a processor implements and which instructions are
privileged, and a deterministic per-variant acceptance hash models the
long tail of encoding quirks that make individual variants fault even
when their extension is nominally supported. The acceptance threshold is
solved at construction time so the *overall* legal fraction matches the
profile's target, exactly mirroring the published ratios.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.isa.catalog import IsaCatalog
from repro.isa.spec import Extension, FaultKind, InstructionSpec

#: Extensions implemented by the simulated Intel-family processors.
INTEL_EXTENSIONS: frozenset[Extension] = frozenset(
    {
        Extension.BASE, Extension.X87_FPU, Extension.MMX, Extension.SSE,
        Extension.SSE2, Extension.SSE3, Extension.SSSE3, Extension.SSE4_1,
        Extension.SSE4_2, Extension.AVX, Extension.AVX2, Extension.FMA,
        Extension.BMI1, Extension.BMI2, Extension.AES, Extension.ADX,
        Extension.CLFLUSHOPT, Extension.TSX, Extension.MPX,
    }
)

#: Extensions implemented by the simulated AMD-family processors.
AMD_EXTENSIONS: frozenset[Extension] = frozenset(
    {
        Extension.BASE, Extension.X87_FPU, Extension.MMX, Extension.SSE,
        Extension.SSE2, Extension.SSE3, Extension.SSSE3, Extension.SSE4_1,
        Extension.SSE4_2, Extension.AVX, Extension.AVX2, Extension.FMA,
        Extension.BMI1, Extension.BMI2, Extension.AES, Extension.SHA,
        Extension.ADX, Extension.CLFLUSHOPT, Extension.PREFETCHW,
    }
)

#: Instructions that decode but fault in user mode (x86 #GP; plus the
#: AArch64 exception-level instructions for the ARM catalog).
PRIVILEGED_MNEMONICS: frozenset[str] = frozenset(
    {
        "INVLPG", "WBINVD", "INVD", "HLT", "RDMSR", "WRMSR", "LGDT", "LIDT",
        "LTR", "CLTS", "IN", "OUT", "CLI", "STI", "MONITOR", "MWAIT",
        "SWAPGS", "VMCALL", "VMMCALL",
        "SVC", "HVC", "SMC", "TLBI", "MSR", "WFI", "WFE",
    }
)


@dataclass(frozen=True)
class MicroArchProfile:
    """What a concrete microarchitecture implements.

    ``target_legal_fraction`` is the share of catalog variants that
    should survive cleanup (the paper reports 24.16% on Intel and 24.31%
    on AMD).
    """

    name: str
    supported_extensions: frozenset[Extension]
    target_legal_fraction: float = 0.2416
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_legal_fraction <= 1.0:
            raise ValueError(
                f"target_legal_fraction must be in (0, 1], got "
                f"{self.target_legal_fraction}"
            )


INTEL_XEON_E5_1650 = MicroArchProfile(
    "intel-xeon-e5-1650", INTEL_EXTENSIONS, target_legal_fraction=0.2416, salt=1)
INTEL_XEON_E5_4617 = MicroArchProfile(
    "intel-xeon-e5-4617", INTEL_EXTENSIONS, target_legal_fraction=0.2416, salt=2)
AMD_EPYC_7252 = MicroArchProfile(
    "amd-epyc-7252", AMD_EXTENSIONS, target_legal_fraction=0.2431, salt=3)
AMD_EPYC_7313P = MicroArchProfile(
    "amd-epyc-7313p", AMD_EXTENSIONS, target_legal_fraction=0.2431, salt=4)

MICROARCH_PROFILES: dict[str, MicroArchProfile] = {
    p.name: p for p in (INTEL_XEON_E5_1650, INTEL_XEON_E5_4617,
                        AMD_EPYC_7252, AMD_EPYC_7313P)
}


@dataclass
class LegalityReport:
    """Outcome of testing every variant in a catalog."""

    microarch: str
    total: int
    legal: list[InstructionSpec] = field(default_factory=list)
    faults: dict[str, FaultKind] = field(default_factory=dict)

    @property
    def legal_fraction(self) -> float:
        """Fraction of catalog variants that execute without faulting."""
        return len(self.legal) / self.total if self.total else 0.0

    def fault_histogram(self) -> dict[FaultKind, int]:
        """Count of faulting variants per fault kind."""
        hist: dict[FaultKind, int] = {}
        for kind in self.faults.values():
            hist[kind] = hist.get(kind, 0) + 1
        return hist


def _unit_hash(text: str) -> float:
    """Deterministic hash of ``text`` into [0, 1)."""
    return (zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF) / 2**32


class LegalityTester:
    """Simulated execute-and-observe legality testing of a catalog.

    Parameters
    ----------
    catalog:
        The machine-readable ISA catalog to test.
    profile:
        Microarchitecture profile of the processor under test.
    """

    def __init__(self, catalog: IsaCatalog, profile: MicroArchProfile) -> None:
        self.catalog = catalog
        self.profile = profile
        self._acceptance = self._solve_acceptance()

    def _candidates(self) -> list[InstructionSpec]:
        """Variants whose extension is supported and that are unprivileged."""
        return [
            v for v in self.catalog
            if v.extension in self.profile.supported_extensions
            and v.mnemonic.split(" ")[0] not in PRIVILEGED_MNEMONICS
        ]

    def _solve_acceptance(self) -> float:
        """Acceptance probability among candidates hitting the target."""
        total = len(self.catalog)
        candidates = len(self._candidates())
        if candidates == 0:
            return 0.0
        wanted = self.profile.target_legal_fraction * total
        return min(1.0, wanted / candidates)

    def is_legal(self, spec: InstructionSpec) -> bool:
        """Whether ``spec`` executes without faulting on this microarch."""
        return self.fault_of(spec) is FaultKind.NONE

    def fault_of(self, spec: InstructionSpec) -> FaultKind:
        """Fault raised by executing ``spec`` (``NONE`` when legal)."""
        base_mnemonic = spec.mnemonic.split(" ")[0]
        if base_mnemonic in PRIVILEGED_MNEMONICS:
            return FaultKind.GENERAL_PROTECTION
        if spec.extension not in self.profile.supported_extensions:
            return FaultKind.UNDEFINED_OPCODE
        h = _unit_hash(f"{self.profile.name}:{self.profile.salt}:{spec.name}")
        if h < self._acceptance:
            return FaultKind.NONE
        # Encoding-quirk faults: ~99% #UD, the remainder split between
        # #GP, #PF and #NM, matching the fault distribution the paper
        # observed on both processors.
        h2 = _unit_hash(f"fault:{self.profile.salt}:{spec.name}")
        if h2 < 0.9884:
            return FaultKind.UNDEFINED_OPCODE
        if h2 < 0.9940:
            return FaultKind.GENERAL_PROTECTION
        if h2 < 0.9980:
            return FaultKind.PAGE_FAULT
        return FaultKind.DEVICE_NOT_AVAILABLE

    def run(self) -> LegalityReport:
        """Test every catalog variant and return the cleanup report."""
        report = LegalityReport(microarch=self.profile.name,
                                total=len(self.catalog))
        for spec in self.catalog:
            fault = self.fault_of(spec)
            if fault is FaultKind.NONE:
                report.legal.append(spec)
            else:
                report.faults[spec.name] = fault
        return report
