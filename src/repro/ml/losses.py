"""Losses and the softmax helper."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy for integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray,
                sample_weight: np.ndarray | None = None) -> float:
        """Mean (optionally weighted) cross-entropy of a batch.

        ``sample_weight`` re-weights each example's contribution —
        used for class balancing in framewise sequence training where
        one layer kind can dominate the frames.
        """
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch "
                f"{logits.shape[0]}")
        if sample_weight is not None and sample_weight.shape != labels.shape:
            raise ValueError("sample_weight must match labels shape")
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        self._weights = sample_weight
        picked = probs[np.arange(len(labels)), labels]
        losses = -np.log(np.clip(picked, 1e-12, None))
        if sample_weight is not None:
            return float((losses * sample_weight).sum()
                         / max(sample_weight.sum(), 1e-12))
        return float(losses.mean())

    def backward(self) -> np.ndarray:
        assert self._probs is not None and self._labels is not None, \
            "backward before forward"
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        if self._weights is not None:
            grad *= self._weights[:, None]
            return grad / max(self._weights.sum(), 1e-12)
        return grad / len(self._labels)
