"""Parameter-update rules."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        for param, grad in zip(params, grads):
            key = id(param)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity -= self.lr * grad
            param += velocity


class Adam:
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        self._t += 1
        for param, grad in zip(params, grads):
            key = id(param)
            m = self._m.setdefault(key, np.zeros_like(param))
            v = self._v.setdefault(key, np.zeros_like(param))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
