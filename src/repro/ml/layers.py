"""Feed-forward layers with forward/backward passes.

Every layer exposes ``forward(x, training)``, ``backward(grad)``,
and ``params`` / ``grads`` lists that optimizers update in place.
Shapes follow the (batch, features) / (batch, channels, time)
conventions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class Layer:
    """Base layer: stateless pass-through."""

    params: list[np.ndarray]
    grads: list[np.ndarray]

    def __init__(self) -> None:
        self.params = []
        self.grads = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: "int | np.random.Generator | None" = None) -> None:
        super().__init__()
        gen = ensure_rng(rng)
        scale = np.sqrt(2.0 / in_features)
        self.weight = gen.normal(0.0, scale, (in_features, out_features))
        self.bias = np.zeros(out_features)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.grads[0][...] = self._x.T @ grad
        self.grads[1][...] = grad.sum(axis=0)
        return grad @ self.weight.T


class Relu(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return grad * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float = 0.5,
                 rng: "int | np.random.Generator | None" = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Batch normalization over the batch (and time, if 3-D) axes."""

    def __init__(self, num_features: int, momentum: float = 0.9,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.params = [self.gamma, self.beta]
        self.grads = [np.zeros_like(self.gamma), np.zeros_like(self.beta)]
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        # (N, C) -> normalize over N; (N, C, T) -> over N and T.
        return (0,) if x.ndim == 2 else (0, 2)

    def _reshape(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        return stat if ndim == 2 else stat[None, :, None]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (self.momentum * self.running_mean
                                 + (1 - self.momentum) * mean)
            self.running_var = (self.momentum * self.running_var
                                + (1 - self.momentum) * var)
        else:
            mean, var = self.running_mean, self.running_var
        mean_b = self._reshape(mean, x.ndim)
        var_b = self._reshape(var, x.ndim)
        x_hat = (x - mean_b) / np.sqrt(var_b + self.eps)
        self._cache = (x_hat, var_b, axes)
        return self._reshape(self.gamma, x.ndim) * x_hat \
            + self._reshape(self.beta, x.ndim)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        x_hat, var_b, axes = self._cache
        m = np.prod([grad.shape[a] for a in axes])
        self.grads[0][...] = (grad * x_hat).sum(axis=axes)
        self.grads[1][...] = grad.sum(axis=axes)
        gamma_b = self._reshape(self.gamma, grad.ndim)
        dx_hat = grad * gamma_b
        inv_std = 1.0 / np.sqrt(var_b + self.eps)
        term1 = dx_hat
        term2 = dx_hat.mean(axis=axes, keepdims=True)
        term3 = x_hat * (dx_hat * x_hat).mean(axis=axes, keepdims=True)
        del m
        return inv_std * (term1 - term2 - term3)


class Flatten(Layer):
    """(N, C, T) -> (N, C*T)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward before forward"
        return grad.reshape(self._shape)


class GlobalAvgPool1d(Layer):
    """(N, C, T) -> (N, C) mean over time.

    Position-invariant head: ideal when the label depends on *how much*
    of a pattern occurs (e.g. counting keystroke bursts) rather than
    where it occurs.
    """

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward before forward"
        n, c, t = self._shape
        return np.repeat(grad[:, :, None], t, axis=2) / t


class Conv1d(Layer):
    """1-D convolution over (N, C_in, T) with 'valid'-after-pad output.

    Implemented with im2col so the inner loop is a single matmul.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid conv geometry")
        gen = ensure_rng(rng)
        scale = np.sqrt(2.0 / (in_channels * kernel_size))
        self.weight = gen.normal(
            0.0, scale, (out_channels, in_channels, kernel_size))
        self.bias = np.zeros(out_channels)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    def _out_len(self, t: int) -> int:
        return (t + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, t = x.shape
        if self.padding:
            x = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        t_out = self._out_len(t)
        k = self.kernel_size
        # im2col: (N, C, k, T_out)
        idx = (np.arange(k)[None, :]
               + self.stride * np.arange(t_out)[:, None])  # (T_out, k)
        cols = x[:, :, idx.T]                               # (N, C, k, T_out)
        cols2 = cols.reshape(n, c * k, t_out)
        w2 = self.weight.reshape(self.weight.shape[0], c * k)
        out = np.einsum("ok,nkt->not", w2, cols2) + self.bias[None, :, None]
        self._cache = (cols2, x.shape, w2)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        cols2, padded_shape, w2 = self._cache
        n, ck, t_out = cols2.shape
        c = padded_shape[1]
        k = self.kernel_size
        self.grads[1][...] = grad.sum(axis=(0, 2))
        dw2 = np.einsum("not,nkt->ok", grad, cols2)
        self.grads[0][...] = dw2.reshape(self.weight.shape)
        dcols2 = np.einsum("ok,not->nkt", w2, grad)      # (N, C*k, T_out)
        dcols = dcols2.reshape(n, c, k, t_out)
        dx_padded = np.zeros(padded_shape)
        for j in range(k):
            positions = j + self.stride * np.arange(t_out)
            np.add.at(dx_padded, (slice(None), slice(None), positions),
                      dcols[:, :, j, :])
        if self.padding:
            return dx_padded[:, :, self.padding:-self.padding]
        return dx_padded


class AvgPool1d(Layer):
    """Non-overlapping average pooling over time.

    Preserves amplitude information (unlike max pooling) — the right
    reduction when class differences are level shifts rather than
    transient peaks.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, t = x.shape
        p = self.pool_size
        t_out = t // p
        self._shape = (x.shape, t_out)
        return x[:, :, :t_out * p].reshape(n, c, t_out, p).mean(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward before forward"
        shape, t_out = self._shape
        p = self.pool_size
        dx = np.zeros(shape)
        dx[:, :, :t_out * p] = np.repeat(grad, p, axis=2) / p
        return dx


class MaxPool1d(Layer):
    """Non-overlapping max pooling over time."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, t = x.shape
        p = self.pool_size
        t_out = t // p
        trimmed = x[:, :, :t_out * p].reshape(n, c, t_out, p)
        out = trimmed.max(axis=3)
        argmax = trimmed.argmax(axis=3)
        self._cache = (argmax, x.shape, t_out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        argmax, shape, t_out = self._cache
        n, c, _ = shape
        p = self.pool_size
        dx = np.zeros(shape)
        n_idx, c_idx, t_idx = np.meshgrid(
            np.arange(n), np.arange(c), np.arange(t_out), indexing="ij")
        dx[n_idx, c_idx, t_idx * p + argmax] = grad
        return dx
