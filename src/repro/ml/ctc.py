"""CTC-style sequence decoding and edit-distance scoring.

The MEA attack's per-frame predictions are collapsed CTC-style (merge
repeats, drop blanks) into a layer sequence; the paper's accuracy metric
"reflects the statistics of matched layers between prediction and label
sequences", which we compute as 1 minus the normalized Levenshtein
distance.
"""

from __future__ import annotations

import numpy as np


def collapse_repeats(frames: "list[int] | np.ndarray",
                     blank: int = 0) -> list[int]:
    """Merge consecutive duplicates, then remove blanks."""
    out: list[int] = []
    previous = None
    for label in frames:
        label = int(label)
        if label != previous:
            if label != blank:
                out.append(label)
            previous = label
    return out


def greedy_decode(frame_probs: np.ndarray, blank: int = 0) -> list[int]:
    """Best-path decode: per-frame argmax, then CTC collapse.

    ``frame_probs`` is (T, num_classes) of probabilities or logits.
    """
    if frame_probs.ndim != 2:
        raise ValueError(
            f"frame_probs must be 2-D (T, C), got shape {frame_probs.shape}")
    return collapse_repeats(frame_probs.argmax(axis=1), blank=blank)


def beam_search_decode(frame_probs: np.ndarray, beam_width: int = 8,
                       blank: int = 0) -> list[int]:
    """Prefix beam search over per-frame probability distributions.

    A compact CTC prefix search: maintains the ``beam_width`` most
    probable collapsed prefixes, tracking blank/non-blank ending mass.
    """
    if frame_probs.ndim != 2:
        raise ValueError("frame_probs must be 2-D (T, C)")
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    probs = frame_probs / np.clip(frame_probs.sum(axis=1, keepdims=True),
                                  1e-12, None)
    # prefix -> (prob ending in blank, prob ending in non-blank)
    beams: dict[tuple[int, ...], tuple[float, float]] = {(): (1.0, 0.0)}
    for t in range(probs.shape[0]):
        frame = probs[t]
        new_beams: dict[tuple[int, ...], list[float]] = {}

        def _add(prefix: tuple[int, ...], p_blank: float, p_label: float) -> None:
            entry = new_beams.setdefault(prefix, [0.0, 0.0])
            entry[0] += p_blank
            entry[1] += p_label

        for prefix, (p_b, p_nb) in beams.items():
            total = p_b + p_nb
            # Extend with blank: prefix unchanged.
            _add(prefix, total * frame[blank], 0.0)
            for label in range(len(frame)):
                if label == blank:
                    continue
                p = frame[label]
                if prefix and prefix[-1] == label:
                    # Repeat: merges unless a blank separated them.
                    _add(prefix, 0.0, p_nb * p)
                    _add(prefix + (label,), 0.0, p_b * p)
                else:
                    _add(prefix + (label,), 0.0, total * p)
        ranked = sorted(new_beams.items(), key=lambda kv: -(kv[1][0] + kv[1][1]))
        beams = {prefix: (v[0], v[1]) for prefix, v in ranked[:beam_width]}
    best = max(beams.items(), key=lambda kv: kv[1][0] + kv[1][1])[0]
    return list(best)


def bigram_counts(sequences: "list[list[int]]", num_classes: int,
                  smoothing: float = 0.1) -> np.ndarray:
    """Add-k smoothed bigram transition matrix P(next | previous).

    Row index is the previous label (0 = sequence start), column the
    next label. Estimated from the attacker's template sequences and
    used as the language model in :func:`lm_beam_decode`.
    """
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    counts = np.full((num_classes, num_classes), smoothing)
    for sequence in sequences:
        previous = 0
        for label in sequence:
            counts[previous, label] += 1.0
            previous = label
    return counts / counts.sum(axis=1, keepdims=True)


def lm_beam_decode(frame_probs: np.ndarray, transition: np.ndarray,
                   beam_width: int = 8, blank: int = 0,
                   lm_weight: float = 1.0,
                   insertion_bonus: float = 1.0) -> list[int]:
    """CTC prefix beam search with a bigram transition prior.

    Framewise classifiers under-segment: a short layer sandwiched
    between two long ones rarely wins the per-frame argmax, so the two
    neighbours merge in the best-path collapse. Scoring each *emission*
    with ``P(label | previous label)^lm_weight * insertion_bonus`` lets
    the beam recover transitions the template sequences say must be
    there — the paper's "best predicted layer sequence is identified
    with the beam search". ``insertion_bonus > 1`` counteracts the
    structural bias against emitting (a skipped emission pays no LM
    cost at all).
    """
    if frame_probs.ndim != 2:
        raise ValueError("frame_probs must be 2-D (T, C)")
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    probs = frame_probs / np.clip(frame_probs.sum(axis=1, keepdims=True),
                                  1e-12, None)
    beams: dict[tuple[int, ...], tuple[float, float]] = {(): (1.0, 0.0)}
    for t in range(probs.shape[0]):
        frame = probs[t]
        new_beams: dict[tuple[int, ...], list[float]] = {}

        def _add(prefix: tuple[int, ...], p_blank: float,
                 p_label: float) -> None:
            entry = new_beams.setdefault(prefix, [0.0, 0.0])
            entry[0] += p_blank
            entry[1] += p_label

        for prefix, (p_b, p_nb) in beams.items():
            total = p_b + p_nb
            _add(prefix, total * frame[blank], 0.0)
            previous = prefix[-1] if prefix else 0
            for label in range(len(frame)):
                if label == blank:
                    continue
                lm = transition[previous, label] ** lm_weight \
                    * insertion_bonus
                p = frame[label]
                if prefix and prefix[-1] == label:
                    _add(prefix, 0.0, p_nb * p)
                    _add(prefix + (label,), 0.0, p_b * p * lm)
                else:
                    _add(prefix + (label,), 0.0, total * p * lm)
        ranked = sorted(new_beams.items(),
                        key=lambda kv: -(kv[1][0] + kv[1][1]))
        beams = {}
        for prefix, (p_b, p_nb) in ranked[:beam_width]:
            norm = sum(v[0] + v[1] for _, v in ranked[:beam_width])
            beams[prefix] = (p_b / max(norm, 1e-300),
                             p_nb / max(norm, 1e-300))
    best = max(beams.items(), key=lambda kv: kv[1][0] + kv[1][1])[0]
    return list(best)


def edit_distance(a: "list[int]", b: "list[int]") -> int:
    """Levenshtein distance between two label sequences."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, x in enumerate(a, start=1):
        current = [i]
        for j, y in enumerate(b, start=1):
            cost = 0 if x == y else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


def sequence_accuracy(predicted: "list[int]", truth: "list[int]") -> float:
    """Layer-match accuracy: 1 - normalized edit distance."""
    if not predicted and not truth:
        return 1.0
    denom = max(len(predicted), len(truth))
    return max(0.0, 1.0 - edit_distance(predicted, truth) / denom)
