"""Gaussian template classifiers — the classic side-channel baseline.

Template attacks predate deep learning in side-channel work: model each
secret's leakage as a Gaussian and classify by likelihood. They need
far less data than the CNNs, train instantly, and expose exactly how
much of the channel is linearly recoverable — which is why several
benchmarks use them for attacker models whose *statistics* matter more
than their capacity (the averaging attacker of paper §IX-B).
"""

from __future__ import annotations

import numpy as np


class NearestTemplateClassifier:
    """Nearest class-mean over standardized flattened traces.

    The simplest template attack: one template (mean trace) per secret,
    Euclidean matching. Equivalent to a Gaussian model with identity
    covariance.
    """

    def __init__(self) -> None:
        self._templates: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, traces: np.ndarray, labels: np.ndarray
            ) -> "NearestTemplateClassifier":
        """Fit per-class templates on (N, ...) traces."""
        traces = np.asarray(traces, dtype=np.float64)
        labels = np.asarray(labels)
        if len(traces) != len(labels):
            raise ValueError("traces and labels must align")
        flat = traces.reshape(len(traces), -1)
        self._mean = flat.mean(axis=0)
        self._std = flat.std(axis=0) + 1e-9
        standardized = (flat - self._mean) / self._std
        self._classes = np.unique(labels)
        self._templates = np.stack([
            standardized[labels == c].mean(axis=0) for c in self._classes])
        return self

    def predict(self, traces: np.ndarray) -> np.ndarray:
        """Predict class labels for (N, ...) traces."""
        if self._templates is None:
            raise RuntimeError("classifier used before fit()")
        flat = np.asarray(traces, dtype=np.float64).reshape(len(traces), -1)
        standardized = (flat - self._mean) / self._std
        distances = np.linalg.norm(
            standardized[:, None, :] - self._templates[None, :, :], axis=2)
        return self._classes[distances.argmin(axis=1)]

    def score(self, traces: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return float((self.predict(traces)
                      == np.asarray(labels)).mean())


class PooledGaussianTemplateClassifier:
    """LDA-style templates: class means + pooled diagonal covariance.

    Weighting each feature by its inverse pooled variance is the
    diagonal-covariance maximum-likelihood rule — noticeably stronger
    than plain nearest-mean when channels have very different noise
    floors (HPC events do).
    """

    def __init__(self, var_floor: float = 1e-9) -> None:
        if var_floor <= 0:
            raise ValueError(f"var_floor must be positive, got {var_floor}")
        self.var_floor = var_floor
        self._templates: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._inv_std: np.ndarray | None = None

    def fit(self, traces: np.ndarray, labels: np.ndarray
            ) -> "PooledGaussianTemplateClassifier":
        """Fit class means and the pooled within-class variances."""
        traces = np.asarray(traces, dtype=np.float64)
        labels = np.asarray(labels)
        if len(traces) != len(labels):
            raise ValueError("traces and labels must align")
        flat = traces.reshape(len(traces), -1)
        self._classes = np.unique(labels)
        means = []
        pooled = np.zeros(flat.shape[1])
        for cls in self._classes:
            member = flat[labels == cls]
            mean = member.mean(axis=0)
            means.append(mean)
            pooled += ((member - mean) ** 2).sum(axis=0)
        dof = max(1, len(flat) - len(self._classes))
        variance = np.maximum(pooled / dof, self.var_floor)
        self._inv_std = 1.0 / np.sqrt(variance)
        self._templates = np.stack(means) * self._inv_std
        return self

    def predict(self, traces: np.ndarray) -> np.ndarray:
        """Maximum-likelihood class under the pooled diagonal Gaussian."""
        if self._templates is None:
            raise RuntimeError("classifier used before fit()")
        flat = np.asarray(traces, dtype=np.float64).reshape(len(traces), -1)
        weighted = flat * self._inv_std
        distances = np.linalg.norm(
            weighted[:, None, :] - self._templates[None, :, :], axis=2)
        return self._classes[distances.argmin(axis=1)]

    def score(self, traces: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return float((self.predict(traces)
                      == np.asarray(labels)).mean())
