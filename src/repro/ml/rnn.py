"""GRU layers and a bidirectional GRU sequence classifier.

The paper's model-extraction attack uses a bidirectional GRU with a CTC
decoder to map HPC traces to layer sequences. This module provides a
numpy GRU with full backpropagation through time and a BiGRU classifier
producing per-frame class logits; decoding lives in :mod:`repro.ml.ctc`.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.ml.losses import SoftmaxCrossEntropy
from repro.utils.rng import ensure_rng, spawn_rng

logger = logging.getLogger(__name__)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class GruLayer:
    """A single-direction GRU over (N, T, F) inputs.

    Weights follow the standard formulation:

        z = sigmoid(x Wz + h Uz + bz)
        r = sigmoid(x Wr + h Ur + br)
        n = tanh(x Wn + (r * h) Un + bn)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be >= 1")
        gen = ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale_x = np.sqrt(1.0 / input_size)
        scale_h = np.sqrt(1.0 / hidden_size)

        def w_x():
            return gen.normal(0.0, scale_x, (input_size, hidden_size))

        def w_h():
            return gen.normal(0.0, scale_h, (hidden_size, hidden_size))

        self.Wz, self.Wr, self.Wn = w_x(), w_x(), w_x()
        self.Uz, self.Ur, self.Un = w_h(), w_h(), w_h()
        self.bz = np.zeros(hidden_size)
        self.br = np.zeros(hidden_size)
        self.bn = np.zeros(hidden_size)
        self.params = [self.Wz, self.Wr, self.Wn, self.Uz, self.Ur, self.Un,
                       self.bz, self.br, self.bn]
        self.grads = [np.zeros_like(p) for p in self.params]
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the GRU; returns hidden states of shape (N, T, H)."""
        n_batch, t_len, _ = x.shape
        h = np.zeros((n_batch, self.hidden_size))
        hs = np.empty((n_batch, t_len, self.hidden_size))
        zs, rs, ns, h_prevs = [], [], [], []
        for t in range(t_len):
            xt = x[:, t, :]
            z = _sigmoid(xt @ self.Wz + h @ self.Uz + self.bz)
            r = _sigmoid(xt @ self.Wr + h @ self.Ur + self.br)
            n = np.tanh(xt @ self.Wn + (r * h) @ self.Un + self.bn)
            h_prevs.append(h)
            h = (1 - z) * n + z * h
            hs[:, t, :] = h
            zs.append(z)
            rs.append(r)
            ns.append(n)
        self._cache = {"x": x, "zs": zs, "rs": rs, "ns": ns,
                       "h_prevs": h_prevs}
        return hs

    def backward(self, grad_hs: np.ndarray) -> np.ndarray:
        """BPTT given d(loss)/d(hidden states); returns d(loss)/dx."""
        assert self._cache is not None, "backward before forward"
        cache = self._cache
        x = cache["x"]
        n_batch, t_len, _ = x.shape
        for g in self.grads:
            g[...] = 0.0
        dx = np.zeros_like(x)
        dh_next = np.zeros((n_batch, self.hidden_size))
        for t in range(t_len - 1, -1, -1):
            z = cache["zs"][t]
            r = cache["rs"][t]
            n = cache["ns"][t]
            h_prev = cache["h_prevs"][t]
            xt = x[:, t, :]
            dh = grad_hs[:, t, :] + dh_next
            dn = dh * (1 - z)
            dz = dh * (h_prev - n)
            dn_pre = dn * (1 - n * n)
            dz_pre = dz * z * (1 - z)
            dr = (dn_pre @ self.Un.T) * h_prev
            dr_pre = dr * r * (1 - r)
            # Parameter gradients (index order matches self.params).
            self.grads[0] += xt.T @ dz_pre          # Wz
            self.grads[1] += xt.T @ dr_pre          # Wr
            self.grads[2] += xt.T @ dn_pre          # Wn
            self.grads[3] += h_prev.T @ dz_pre      # Uz
            self.grads[4] += h_prev.T @ dr_pre      # Ur
            self.grads[5] += (r * h_prev).T @ dn_pre  # Un
            self.grads[6] += dz_pre.sum(axis=0)     # bz
            self.grads[7] += dr_pre.sum(axis=0)     # br
            self.grads[8] += dn_pre.sum(axis=0)     # bn
            dx[:, t, :] = (dz_pre @ self.Wz.T + dr_pre @ self.Wr.T
                           + dn_pre @ self.Wn.T)
            dh_next = (dh * z
                       + dz_pre @ self.Uz.T
                       + dr_pre @ self.Ur.T
                       + (dn_pre @ self.Un.T) * r)
        return dx


class BiGruSequenceClassifier:
    """BiGRU + per-frame linear head for sequence labeling.

    Trains with framewise cross-entropy against aligned frame labels
    (the attacker controls the template VM, so offline alignment is
    available); decoding to a layer sequence is CTC-style collapse in
    :mod:`repro.ml.ctc`.
    """

    def __init__(self, input_size: int, hidden_size: int, num_classes: int,
                 rng: "int | np.random.Generator | None" = None) -> None:
        gen = ensure_rng(rng)
        fwd_rng, bwd_rng, head_rng = spawn_rng(gen, 3)
        self.forward_gru = GruLayer(input_size, hidden_size, rng=fwd_rng)
        self.backward_gru = GruLayer(input_size, hidden_size, rng=bwd_rng)
        scale = np.sqrt(2.0 / (2 * hidden_size))
        self.W_out = head_rng.normal(0.0, scale, (2 * hidden_size, num_classes))
        self.b_out = np.zeros(num_classes)
        self.num_classes = num_classes
        self.loss = SoftmaxCrossEntropy()
        self.params = (self.forward_gru.params + self.backward_gru.params
                       + [self.W_out, self.b_out])
        self.grads = (self.forward_gru.grads + self.backward_gru.grads
                      + [np.zeros_like(self.W_out), np.zeros_like(self.b_out)])
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Per-frame logits of shape (N, T, num_classes)."""
        hs_fwd = self.forward_gru.forward(x, training)
        hs_bwd = self.backward_gru.forward(x[:, ::-1, :], training)[:, ::-1, :]
        hidden = np.concatenate([hs_fwd, hs_bwd], axis=2)
        self._cache = {"hidden": hidden}
        return hidden @ self.W_out + self.b_out

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop from per-frame logit gradients."""
        assert self._cache is not None, "backward before forward"
        hidden = self._cache["hidden"]
        n, t, _ = grad_logits.shape
        hidden2 = hidden.reshape(n * t, -1)
        grad2 = grad_logits.reshape(n * t, -1)
        self.grads[-2][...] = hidden2.T @ grad2
        self.grads[-1][...] = grad2.sum(axis=0)
        dhidden = (grad2 @ self.W_out.T).reshape(n, t, -1)
        h = dhidden.shape[2] // 2
        self.forward_gru.backward(dhidden[:, :, :h])
        self.backward_gru.backward(dhidden[:, ::-1, h:])

    def fit_frames(self, x: np.ndarray, frame_labels: np.ndarray,
                   epochs: int = 10, batch_size: int = 8, optimizer=None,
                   class_balanced: bool = True,
                   rng: "int | np.random.Generator | None" = None,
                   verbose: bool = False) -> list[float]:
        """Train on aligned frames; returns per-epoch frame accuracy.

        ``class_balanced`` weights each frame inversely to its class
        frequency — without it, dominant layer kinds (convolutions)
        drown out the short elementwise layers the decoder must also
        emit.
        """
        if x.shape[:2] != frame_labels.shape:
            raise ValueError(
                f"frame_labels shape {frame_labels.shape} does not match "
                f"input {x.shape[:2]}")
        if optimizer is None:
            from repro.ml.optimizers import Adam
            optimizer = Adam(lr=3e-3)
        gen = ensure_rng(rng)
        class_weights = None
        if class_balanced:
            counts = np.bincount(frame_labels.reshape(-1),
                                 minlength=self.num_classes).astype(float)
            inv = np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)
            class_weights = inv / inv[counts > 0].mean()
        curve: list[float] = []
        for _ in range(epochs):
            order = gen.permutation(len(x))
            correct = 0
            total = 0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                logits = self.forward(x[batch], training=True)
                n, t, c = logits.shape
                flat_logits = logits.reshape(n * t, c)
                flat_labels = frame_labels[batch].reshape(n * t)
                weights = (None if class_weights is None
                           else class_weights[flat_labels])
                self.loss.forward(flat_logits, flat_labels,
                                  sample_weight=weights)
                grad = self.loss.backward().reshape(n, t, c)
                self.backward(grad)
                optimizer.step(self.params, self.grads)
                correct += int((flat_logits.argmax(axis=1)
                                == flat_labels).sum())
                total += n * t
            accuracy = correct / total if total else 0.0
            curve.append(accuracy)
            if verbose:
                logger.info("frame accuracy: %.4f", accuracy)
        return curve

    def fit_ctc(self, x: np.ndarray, label_sequences: "list[list[int]]",
                epochs: int = 10, batch_size: int = 4, optimizer=None,
                rng: "int | np.random.Generator | None" = None,
                verbose: bool = False) -> list[float]:
        """Alignment-free training with the CTC loss.

        The paper's RNN "with the CTC decoder": no frame labels are
        needed, only each trace's target label sequence. Returns the
        per-epoch mean CTC loss (negative log-likelihood).
        """
        from repro.ml.ctc_loss import ctc_batch_loss
        if len(x) != len(label_sequences):
            raise ValueError(
                f"x and label_sequences length mismatch: {len(x)} vs "
                f"{len(label_sequences)}")
        if optimizer is None:
            from repro.ml.optimizers import Adam
            optimizer = Adam(lr=2e-3)
        gen = ensure_rng(rng)
        curve: list[float] = []
        for _ in range(epochs):
            order = gen.permutation(len(x))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                logits = self.forward(x[batch], training=True)
                loss, grad = ctc_batch_loss(
                    logits, [label_sequences[int(i)] for i in batch])
                self.backward(grad)
                optimizer.step(self.params, self.grads)
                epoch_loss += loss
                batches += 1
            curve.append(epoch_loss / max(1, batches))
            if verbose:
                logger.info("ctc loss: %.4f", curve[-1])
        return curve

    def predict_frames(self, x: np.ndarray) -> np.ndarray:
        """Per-frame class predictions of shape (N, T)."""
        return self.forward(x, training=False).argmax(axis=2)
