"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """(true, predicted) count matrix."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0),
                              y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix
