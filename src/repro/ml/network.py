"""Sequential network container and the training loop.

``Network.fit`` records per-epoch accuracy/loss on both splits — the
training curves of the paper's Fig. 1.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import SoftmaxCrossEntropy, softmax
from repro.ml.metrics import accuracy_score
from repro.utils.rng import ensure_rng

logger = logging.getLogger(__name__)


@dataclass
class TrainingHistory:
    """Per-epoch training curves (paper Fig. 1)."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else 0.0


class Network:
    """A feed-forward stack trained with softmax cross-entropy."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("layers must be non-empty")
        self.layers = layers
        self.loss = SoftmaxCrossEntropy()

    # -- inference ----------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, evaluated in batches."""
        outputs = [softmax(self.forward(x[i:i + batch_size]))
                   for i in range(0, len(x), batch_size)]
        return np.vstack(outputs)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_proba(x, batch_size).argmax(axis=1)

    # -- training -----------------------------------------------------

    def _backward(self) -> None:
        grad = self.loss.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        params: list[np.ndarray] = []
        grads: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> tuple[float, float]:
        """(loss, accuracy) on a dataset without updating weights."""
        losses = []
        preds = []
        for i in range(0, len(x), batch_size):
            logits = self.forward(x[i:i + batch_size], training=False)
            losses.append(self.loss.forward(logits, y[i:i + batch_size])
                          * len(logits))
            preds.append(logits.argmax(axis=1))
        loss = float(np.sum(losses) / len(x))
        acc = accuracy_score(y, np.concatenate(preds))
        return loss, acc

    def fit(self, x: np.ndarray, y: np.ndarray,
            x_val: np.ndarray | None = None, y_val: np.ndarray | None = None,
            epochs: int = 20, batch_size: int = 32, optimizer=None,
            lr_decay: float = 1.0,
            rng: "int | np.random.Generator | None" = None,
            verbose: bool = False) -> TrainingHistory:
        """Train with minibatch gradient descent; returns the curves.

        ``lr_decay`` multiplies the optimizer's learning rate after each
        epoch (1.0 = constant); a mild decay stabilizes the final
        epochs on small datasets.
        """
        if len(x) != len(y):
            raise ValueError(f"x/y length mismatch: {len(x)} vs {len(y)}")
        if not 0.0 < lr_decay <= 1.0:
            raise ValueError(f"lr_decay must be in (0, 1], got {lr_decay}")
        if optimizer is None:
            from repro.ml.optimizers import Adam
            optimizer = Adam(lr=1e-3)
        gen = ensure_rng(rng)
        params, grads = self.parameters()
        history = TrainingHistory()
        for epoch in range(epochs):
            optimizer.lr *= 1.0 if epoch == 0 else lr_decay
            order = gen.permutation(len(x))
            epoch_loss = 0.0
            epoch_correct = 0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                logits = self.forward(x[batch], training=True)
                loss = self.loss.forward(logits, y[batch])
                self._backward()
                optimizer.step(params, grads)
                epoch_loss += loss * len(batch)
                epoch_correct += int((logits.argmax(axis=1) == y[batch]).sum())
            history.train_loss.append(epoch_loss / len(x))
            history.train_accuracy.append(epoch_correct / len(x))
            if x_val is not None and y_val is not None:
                val_loss, val_acc = self.evaluate(x_val, y_val)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            if verbose:
                msg = (f"epoch {epoch + 1}/{epochs} "
                       f"loss={history.train_loss[-1]:.4f} "
                       f"acc={history.train_accuracy[-1]:.4f}")
                if history.val_accuracy:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                logger.info(msg)
        return history
