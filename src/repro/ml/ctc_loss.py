"""Connectionist Temporal Classification loss (forward-backward).

The paper's MEA network is an RNN "with the CTC decoder" — trained
without frame alignment: the loss marginalizes over every monotonic
alignment between the frame sequence and the (shorter) label sequence.
This module implements the standard log-space forward-backward
recursion and its gradient with respect to the per-frame logits,
enabling alignment-free training as an alternative to the framewise
mode (which exploits the attacker's template-VM alignment).
"""

from __future__ import annotations

import numpy as np

from repro.ml.losses import softmax

_NEG_INF = -1e30


def _log_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise log(exp(a) + exp(b)) with -inf handling."""
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    out = hi + np.log1p(np.exp(np.maximum(lo - hi, -60.0)))
    return np.where(hi <= _NEG_INF / 2, _NEG_INF, out)


def _extend_labels(labels: "list[int]", blank: int) -> np.ndarray:
    """Interleave blanks: l -> [b, l1, b, l2, ..., b]."""
    extended = np.full(2 * len(labels) + 1, blank, dtype=int)
    extended[1::2] = labels
    return extended


def ctc_forward_backward(log_probs: np.ndarray, labels: "list[int]",
                         blank: int = 0
                         ) -> tuple[float, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """Run the CTC recursions for one sequence.

    Parameters
    ----------
    log_probs:
        (T, C) log-softmax frame distributions.
    labels:
        Target label sequence (no blanks, values != ``blank``).

    Returns ``(log_likelihood, alpha, beta, extended)``.
    """
    t_len, _ = log_probs.shape
    if not labels:
        raise ValueError("labels must be non-empty")
    extended = _extend_labels(labels, blank)
    s_len = len(extended)
    if s_len > 2 * t_len + 1:
        raise ValueError(
            f"label sequence (length {len(labels)}) too long for "
            f"{t_len} frames")
    emit = log_probs[:, extended]                   # (T, S)
    # Skip connections: allowed where the symbol differs from the one
    # two positions back (and is not blank).
    can_skip = np.zeros(s_len, dtype=bool)
    can_skip[2:] = (extended[2:] != blank) & (extended[2:] != extended[:-2])

    alpha = np.full((t_len, s_len), _NEG_INF)
    alpha[0, 0] = emit[0, 0]
    if s_len > 1:
        alpha[0, 1] = emit[0, 1]
    for t in range(1, t_len):
        stay = alpha[t - 1]
        step = np.full(s_len, _NEG_INF)
        step[1:] = alpha[t - 1, :-1]
        skip = np.full(s_len, _NEG_INF)
        skip[2:] = np.where(can_skip[2:], alpha[t - 1, :-2], _NEG_INF)
        alpha[t] = _log_add(_log_add(stay, step), skip) + emit[t]

    beta = np.full((t_len, s_len), _NEG_INF)
    beta[-1, -1] = emit[-1, -1]
    if s_len > 1:
        beta[-1, -2] = emit[-1, -2]
    for t in range(t_len - 2, -1, -1):
        stay = beta[t + 1]
        step = np.full(s_len, _NEG_INF)
        step[:-1] = beta[t + 1, 1:]
        skip = np.full(s_len, _NEG_INF)
        skip[:-2] = np.where(can_skip[2:], beta[t + 1, 2:], _NEG_INF)
        beta[t] = _log_add(_log_add(stay, step), skip) + emit[t]

    tail = alpha[-1, -1]
    if s_len > 1:
        tail = _log_add(np.array(tail), np.array(alpha[-1, -2])).item()
    return float(tail), alpha, beta, extended


def ctc_loss_and_grad(logits: np.ndarray, labels: "list[int]",
                      blank: int = 0) -> tuple[float, np.ndarray]:
    """CTC negative log-likelihood and its gradient wrt the logits.

    Follows Graves et al. (2006): with alpha/beta both including the
    frame emission at t, the posterior symbol occupancy is
    ``gamma[t, s] = alpha[t, s] + beta[t, s] - emit[t, s]`` and

        dL/d logits[t, k] = y[t, k] - sum_{s: l'[s]=k}
                            exp(gamma[t, s] - logZ)
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (T, C), got {logits.shape}")
    probs = softmax(logits)
    log_probs = np.log(np.clip(probs, 1e-30, None))
    log_z, alpha, beta, extended = ctc_forward_backward(
        log_probs, labels, blank)
    if log_z <= _NEG_INF / 2:
        # No feasible alignment (should be excluded by length checks).
        return float("inf"), np.zeros_like(logits)
    emit = log_probs[:, extended]
    gamma = alpha + beta - emit                      # (T, S)
    occupancy = np.exp(np.clip(gamma - log_z, -60.0, 0.0))
    target = np.zeros_like(probs)
    np.add.at(target.T, extended, occupancy.T)
    grad = probs - target
    return -log_z, grad


def ctc_batch_loss(logits_batch: np.ndarray,
                   label_sequences: "list[list[int]]",
                   blank: int = 0) -> tuple[float, np.ndarray]:
    """Mean CTC loss and gradients over a batch of equal-length frames."""
    if len(logits_batch) != len(label_sequences):
        raise ValueError("batch size mismatch")
    grads = np.zeros_like(logits_batch)
    total = 0.0
    for i, labels in enumerate(label_sequences):
        loss, grad = ctc_loss_and_grad(logits_batch[i], labels, blank)
        total += loss
        grads[i] = grad
    n = max(1, len(label_sequences))
    return total / n, grads / n
