"""A small numpy neural-network substrate.

PyTorch is unavailable offline, so the attack models (the paper's CNN
website/keystroke classifiers and GRU+CTC model-extraction network) are
implemented here from scratch: dense/conv/batch-norm/dropout layers, a
GRU, CTC-style decoding, cross-entropy training with SGD/Adam, and the
usual metrics.
"""

from repro.ml.layers import (
    BatchNorm,
    Conv1d,
    Dense,
    Dropout,
    Flatten,
    MaxPool1d,
    Relu,
)
from repro.ml.losses import SoftmaxCrossEntropy, softmax
from repro.ml.optimizers import SGD, Adam
from repro.ml.network import Network, TrainingHistory
from repro.ml.rnn import GruLayer, BiGruSequenceClassifier
from repro.ml.ctc import collapse_repeats, edit_distance, greedy_decode, sequence_accuracy
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.templates import (
    NearestTemplateClassifier,
    PooledGaussianTemplateClassifier,
)

__all__ = [
    "Adam",
    "BatchNorm",
    "BiGruSequenceClassifier",
    "Conv1d",
    "Dense",
    "Dropout",
    "Flatten",
    "GruLayer",
    "MaxPool1d",
    "NearestTemplateClassifier",
    "Network",
    "PooledGaussianTemplateClassifier",
    "Relu",
    "SGD",
    "SoftmaxCrossEntropy",
    "TrainingHistory",
    "accuracy_score",
    "collapse_repeats",
    "confusion_matrix",
    "edit_distance",
    "greedy_decode",
    "sequence_accuracy",
    "softmax",
]
