"""Cryptographic signing workload (paper §X future work).

The paper's future work asks whether Aegis can stop *fine-grained*
attacks such as cryptographic key extraction. This workload models the
classic victim: square-and-multiply RSA exponentiation whose per-bit
control flow is key-dependent — every key bit costs one squaring, and
a set bit adds a multiplication. The resulting HPC trace is a binary
waveform of the private exponent, the finest-grained secret in this
library (one secret bit per ~2 sampling slices instead of one secret
per window).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import InstructionMix, Phase, PhaseProgram, Workload
from repro.utils.rng import ensure_rng

#: Modular squaring: multiplication-heavy bignum arithmetic.
_SQUARE = InstructionMix(
    ips=2.0e9, load_ratio=0.30, store_ratio=0.12, mul_ratio=0.18,
    bit_ratio=0.34, branch_ratio=0.08, l1d_miss_ratio=0.01)

#: Modular multiplication: same engine, slightly different footprint
#: (an extra operand stream raises the load share).
_MULTIPLY = InstructionMix(
    ips=2.0e9, load_ratio=0.38, store_ratio=0.14, mul_ratio=0.20,
    bit_ratio=0.30, branch_ratio=0.08, l1d_miss_ratio=0.015)


def random_key(num_bits: int,
               rng: "int | np.random.Generator | None" = None) -> tuple:
    """Draw a random private exponent as a tuple of bits (MSB first)."""
    gen = ensure_rng(rng)
    bits = gen.integers(0, 2, size=num_bits)
    bits[0] = 1  # normalized exponents have a leading 1
    return tuple(int(b) for b in bits)


class RsaSignWorkload(Workload):
    """Square-and-multiply exponentiation with a key-dependent schedule.

    Parameters
    ----------
    num_bits:
        Private-exponent length (default 64; real keys are 2048+, kept
        short so one signature fits the sampling window at the default
        per-operation duration).
    num_keys:
        How many distinct keys form the secret set.
    op_seconds:
        Duration of one modular squaring/multiplication.
    """

    def __init__(self, num_bits: int = 64, num_keys: int = 16,
                 op_seconds: float = 0.018, key_seed: int = 2024) -> None:
        if num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {num_bits}")
        if num_keys < 2:
            raise ValueError(f"num_keys must be >= 2, got {num_keys}")
        if op_seconds <= 0:
            raise ValueError(f"op_seconds must be positive, got {op_seconds}")
        self.num_bits = num_bits
        self.op_seconds = op_seconds
        gen = np.random.default_rng(key_seed)
        keys = []
        while len(keys) < num_keys:
            key = random_key(num_bits, gen)
            if key not in keys:
                keys.append(key)
        self._keys = keys

    @property
    def secrets(self) -> list:
        return list(self._keys)

    def key_bits(self, secret) -> tuple:
        """The bit tuple itself is the secret; exposed for clarity."""
        if secret not in self._keys:
            raise ValueError("unknown key")
        return secret

    @property
    def signature_seconds(self) -> float:
        """Worst-case single-signature duration (all bits set)."""
        return self.num_bits * 2 * self.op_seconds

    @staticmethod
    def _validate_key(secret, num_bits: int) -> None:
        if (not isinstance(secret, tuple) or len(secret) != num_bits
                or any(bit not in (0, 1) for bit in secret)):
            raise ValueError(
                f"key must be a tuple of {num_bits} bits, got {secret!r}")

    def program_for(self, secret, rng: np.random.Generator) -> PhaseProgram:
        # Any well-formed key schedules correctly; the generated secret
        # set only defines the experiment's sampling universe.
        self._validate_key(secret, self.num_bits)
        phases = []
        for index, bit in enumerate(secret):
            phases.append(Phase(f"square_{index}", _SQUARE,
                                self.op_seconds, duration_jitter=0.02,
                                intensity_jitter=0.01))
            if bit:
                phases.append(Phase(f"multiply_{index}", _MULTIPLY,
                                    self.op_seconds, duration_jitter=0.02,
                                    intensity_jitter=0.01))
        return PhaseProgram(phases=phases)
