"""Website-access workload (the WFA victim).

The paper's attacker fingerprints accesses to 45 of the Alexa top-50
sites loaded in Chrome inside the victim VM. Here each site gets a
deterministic *load signature*: a sequence of browser phases (network
wait, HTML parse, JS execution, style/layout, paint, post-load activity)
whose durations and intensities are derived from the site name, plus a
run-to-run jitter model. Heavy JS sites look nothing like static pages,
ad-laden portals keep background activity going after load — the same
structural differences that make real site loads distinguishable in HPC
traces.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import numpy as np

from repro.workloads.base import InstructionMix, Phase, PhaseProgram, Workload

#: 45 targets, Alexa-top-50 style (5 "blocked" sites excluded), as in
#: the paper's WFA setup.
ALEXA_SITES: tuple[str, ...] = (
    "google.com", "youtube.com", "facebook.com", "twitter.com",
    "instagram.com", "baidu.com", "wikipedia.org", "yandex.ru",
    "yahoo.com", "whatsapp.com", "amazon.com", "live.com", "netflix.com",
    "reddit.com", "office.com", "tiktok.com", "linkedin.com", "vk.com",
    "discord.com", "twitch.tv", "bing.com", "naver.com", "microsoft.com",
    "mail.ru", "duckduckgo.com", "pinterest.com", "ebay.com", "qq.com",
    "taobao.com", "apple.com", "aliexpress.com", "bilibili.com",
    "stackoverflow.com", "github.com", "paypal.com", "imdb.com",
    "fandom.com", "etsy.com", "nytimes.com", "cnn.com", "bbc.co.uk",
    "espn.com", "booking.com", "walmart.com", "zoom.us",
)

#: Browser phase mixes: rates chosen so JS execution is compute/branch
#: heavy, parsing is load/branch heavy, layout/paint lean on SIMD
#: (rasterization) and streaming memory.
_NETWORK_WAIT = InstructionMix(ips=3e7, load_ratio=0.2, branch_ratio=0.22,
                               l1d_miss_ratio=0.01)
_HTML_PARSE = InstructionMix(ips=1.3e9, load_ratio=0.33, store_ratio=0.12,
                             branch_ratio=0.24, branch_miss_ratio=0.035,
                             l1d_miss_ratio=0.02)
_JS_EXEC = InstructionMix(ips=2.2e9, load_ratio=0.28, store_ratio=0.14,
                          branch_ratio=0.21, branch_miss_ratio=0.05,
                          l1d_miss_ratio=0.015, call_ratio=0.03,
                          stack_ratio=0.08, mul_ratio=0.02)
_LAYOUT = InstructionMix(ips=1.6e9, load_ratio=0.35, store_ratio=0.18,
                         l1d_miss_ratio=0.04, llc_miss_ratio=0.35,
                         simd_ratio=0.06, fp_ratio=0.04)
_PAINT = InstructionMix(ips=1.9e9, load_ratio=0.38, store_ratio=0.26,
                        l1d_miss_ratio=0.06, llc_miss_ratio=0.5,
                        simd_ratio=0.18, prefetch_ratio=0.01)
_MEDIA_DECODE = InstructionMix(ips=2.6e9, load_ratio=0.3, store_ratio=0.2,
                               simd_ratio=0.3, l1d_miss_ratio=0.05,
                               llc_miss_ratio=0.55, mul_ratio=0.03)
_POST_LOAD = InstructionMix(ips=4e8, load_ratio=0.26, branch_ratio=0.2,
                            l1d_miss_ratio=0.02, simd_ratio=0.02)


def _site_params(site: str) -> np.random.Generator:
    """Deterministic per-site parameter stream from the site name."""
    return np.random.default_rng(zlib.crc32(site.encode("utf-8")))


class WebsiteWorkload(Workload):
    """Loads one of 45 websites inside the guest browser.

    Parameters
    ----------
    sites:
        Override the default Alexa-style target list.
    """

    def __init__(self, sites: tuple[str, ...] = ALEXA_SITES) -> None:
        if not sites:
            raise ValueError("sites must be non-empty")
        self._sites = list(sites)
        self._signatures = {site: self._signature(site) for site in self._sites}

    @property
    def secrets(self) -> list:
        return list(self._sites)

    #: Canonical browser phase skeleton shared by every site: (name,
    #: mix, nominal duration). Sites modulate amplitudes and durations
    #: around this skeleton by ~+-15% — the regime where the attack
    #: works (site differences dwarf run-to-run jitter) yet a defender's
    #: noise of a few percent of peak suffices, matching the paper's
    #: overhead numbers.
    _SKELETON: tuple[tuple[str, InstructionMix, float], ...] = (
        ("network", _NETWORK_WAIT, 0.25),
        ("parse", _HTML_PARSE, 0.12),
        ("js", _JS_EXEC, 0.55),
        ("layout", _LAYOUT, 0.12),
        ("paint", _PAINT, 0.10),
        ("media", _MEDIA_DECODE, 0.30),
        ("post", _POST_LOAD, 1.00),
    )

    #: Per-site modulation ranges around the skeleton. All sites share
    #: the canonical phase timing; a site's fingerprint is (a) how much
    #: work each phase does (amplitude, +-6%) and (b) the instruction
    #: *mix* of that work (load/store/branch/SIMD/FP shares, +-10-15%).
    #: Keeping the amplitude spread at a few percent of peak keeps the
    #: DP sensitivity — and therefore the defense's injected-noise
    #: volume — in the regime the paper's overhead numbers imply, while
    #: the many mix dimensions (7 phases x several ratios) keep 45
    #: sites separable for the attacker.
    _AMPLITUDE_SPREAD = 0.06
    _MIX_SPREAD = 0.10
    _UNIT_SPREAD = 0.15  # SIMD/FP/MUL unit usage varies more
    #: Run-to-run jitter (small relative to site differences).
    _RUN_DURATION_JITTER = 0.02
    _RUN_INTENSITY_JITTER = 0.012

    @classmethod
    def _modulate_mix(cls, mix: InstructionMix,
                      p: np.random.Generator) -> InstructionMix:
        """Site-specific variant of a phase mix."""

        def wobble(spread: float) -> float:
            return 1.0 + spread * (2 * p.random() - 1)

        return replace(
            mix,
            ips=mix.ips * wobble(cls._AMPLITUDE_SPREAD),
            load_ratio=mix.load_ratio * wobble(cls._MIX_SPREAD),
            store_ratio=mix.store_ratio * wobble(cls._MIX_SPREAD),
            branch_ratio=mix.branch_ratio * wobble(cls._MIX_SPREAD),
            simd_ratio=mix.simd_ratio * wobble(cls._UNIT_SPREAD),
            fp_ratio=mix.fp_ratio * wobble(cls._UNIT_SPREAD),
            mul_ratio=mix.mul_ratio * wobble(cls._UNIT_SPREAD),
            bit_ratio=mix.bit_ratio * wobble(cls._MIX_SPREAD),
            l1d_miss_ratio=mix.l1d_miss_ratio * wobble(0.05),
            branch_miss_ratio=mix.branch_miss_ratio * wobble(0.05),
        )

    @classmethod
    def _signature(cls, site: str) -> list[Phase]:
        """Build the site's nominal phase list (deterministic)."""
        p = _site_params(site)
        phases = []
        for name, mix, duration in cls._SKELETON:
            phases.append(Phase(
                name, cls._modulate_mix(mix, p), duration,
                duration_jitter=cls._RUN_DURATION_JITTER,
                intensity_jitter=cls._RUN_INTENSITY_JITTER))
        return phases

    def program_for(self, secret: str, rng: np.random.Generator) -> PhaseProgram:
        try:
            phases = self._signatures[secret]
        except KeyError as exc:
            raise ValueError(f"unknown site {secret!r}") from exc
        return PhaseProgram(phases=list(phases))
