"""Workload building blocks: instruction mixes, phases, phase programs.

A workload is a *phase program*: a sequence of phases, each with an
instruction mix (rates of loads, branches, FP ops, miss ratios, ...) and
a duration. Sampled at the monitor's 1 ms interval it yields a sequence
of :class:`~repro.cpu.core.ActivityBlock` slices. Per-run randomness
(intensity jitter, duration jitter) produces the Gaussian within-secret
spread of HPC values the paper observes (Fig. 3), while between-secret
phase differences carry the information the attacks extract.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cpu.core import ActivityBlock
from repro.cpu.signals import Signal, zero_signals
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class InstructionMix:
    """A self-consistent instruction mix, expressed as rates.

    ``ips`` is instructions per second; every other field is a ratio
    relative to the natural denominator (per instruction for operation
    shares, per access for miss ratios). :meth:`rate_vector` converts
    the mix into a per-second signal-rate vector with consistent derived
    quantities (L1D accesses = loads + stores, L2 accesses = L1D misses,
    and so on).
    """

    ips: float = 1e9
    uops_per_instr: float = 1.6
    load_ratio: float = 0.25
    store_ratio: float = 0.10
    branch_ratio: float = 0.18
    cond_branch_share: float = 0.8
    call_ratio: float = 0.01
    branch_miss_ratio: float = 0.02
    l1d_miss_ratio: float = 0.03
    l2_miss_ratio: float = 0.30
    llc_miss_ratio: float = 0.20
    dtlb_miss_ratio: float = 0.002
    itlb_miss_ratio: float = 0.0005
    l1i_miss_ratio: float = 0.005
    fp_ratio: float = 0.0
    simd_ratio: float = 0.0
    x87_ratio: float = 0.0
    crypto_ratio: float = 0.0
    div_ratio: float = 0.001
    mul_ratio: float = 0.01
    bit_ratio: float = 0.30
    stack_ratio: float = 0.04
    nop_ratio: float = 0.01
    prefetch_ratio: float = 0.002

    def rate_vector(self) -> np.ndarray:
        """Per-second signal rates implied by this mix."""
        if self.ips < 0:
            raise ValueError(f"ips must be non-negative, got {self.ips}")
        rates = zero_signals()
        instr = self.ips
        loads = instr * self.load_ratio
        stores = instr * self.store_ratio
        l1d_access = loads + stores
        l1d_miss = l1d_access * self.l1d_miss_ratio
        l2_access = l1d_miss
        l2_miss = l2_access * self.l2_miss_ratio
        llc_access = l2_miss
        llc_miss = llc_access * self.llc_miss_ratio
        branches = instr * self.branch_ratio
        rates[Signal.INSTRUCTIONS] = instr
        rates[Signal.UOPS] = instr * self.uops_per_instr
        rates[Signal.LOADS] = loads
        rates[Signal.STORES] = stores
        rates[Signal.L1D_ACCESS] = l1d_access
        rates[Signal.L1D_MISS] = l1d_miss
        rates[Signal.L1I_MISS] = instr * self.l1i_miss_ratio
        rates[Signal.L2_ACCESS] = l2_access
        rates[Signal.L2_MISS] = l2_miss
        rates[Signal.LLC_ACCESS] = llc_access
        rates[Signal.LLC_MISS] = llc_miss
        rates[Signal.MEM_READS] = llc_miss
        rates[Signal.MEM_WRITES] = llc_miss * 0.4
        rates[Signal.MAB_ALLOC] = l1d_miss
        rates[Signal.BRANCHES] = branches
        rates[Signal.COND_BRANCHES] = branches * self.cond_branch_share
        rates[Signal.BRANCH_MISS] = branches * self.branch_miss_ratio
        rates[Signal.CALLS] = instr * self.call_ratio
        rates[Signal.RETURNS] = instr * self.call_ratio
        rates[Signal.ITLB_MISS] = instr * self.itlb_miss_ratio
        rates[Signal.DTLB_MISS] = l1d_access * self.dtlb_miss_ratio
        rates[Signal.FP_OPS] = instr * self.fp_ratio
        rates[Signal.SIMD_OPS] = instr * self.simd_ratio
        rates[Signal.X87_OPS] = instr * self.x87_ratio
        rates[Signal.CRYPTO_OPS] = instr * self.crypto_ratio
        rates[Signal.DIV_OPS] = instr * self.div_ratio
        rates[Signal.MUL_OPS] = instr * self.mul_ratio
        rates[Signal.BIT_OPS] = instr * self.bit_ratio
        rates[Signal.STACK_OPS] = instr * self.stack_ratio
        rates[Signal.NOP_OPS] = instr * self.nop_ratio
        rates[Signal.PREFETCHES] = instr * self.prefetch_ratio
        return rates

    def scaled(self, factor: float) -> "InstructionMix":
        """Same mix at ``factor`` times the instruction rate."""
        return replace(self, ips=self.ips * factor)


def idle_mix() -> InstructionMix:
    """Background activity of an otherwise idle guest."""
    return InstructionMix(ips=4e6, load_ratio=0.22, store_ratio=0.08,
                          branch_ratio=0.2, l1d_miss_ratio=0.01)


@dataclass(frozen=True)
class Phase:
    """One workload phase: a mix active for a (jittered) duration."""

    name: str
    mix: InstructionMix
    duration_s: float
    duration_jitter: float = 0.1
    intensity_jitter: float = 0.08

    def sample_duration(self, rng: np.random.Generator) -> float:
        """Draw this execution's actual phase duration."""
        jitter = rng.normal(1.0, self.duration_jitter)
        return max(1e-4, self.duration_s * jitter)

    def sample_intensity(self, rng: np.random.Generator) -> float:
        """Draw this execution's intensity multiplier."""
        return max(0.05, rng.normal(1.0, self.intensity_jitter))


@dataclass
class PhaseProgram:
    """An ordered phase list executed once per workload run."""

    phases: list[Phase] = field(default_factory=list)

    def total_duration_s(self) -> float:
        """Nominal (unjittered) program duration."""
        return sum(p.duration_s for p in self.phases)

    def render_blocks(self, duration_s: float, slice_s: float,
                      rng: np.random.Generator,
                      baseline: InstructionMix | None = None
                      ) -> list[ActivityBlock]:
        """Render the program into fixed-width sampling slices.

        The program plays from t=0; once it finishes, the baseline
        (idle) mix fills the remainder of the window. Within a slice the
        active phase's rate vector is integrated over the overlap, with
        per-slice jitter so no two runs are identical.
        """
        blocks, _ = self.render_blocks_with_phases(duration_s, slice_s, rng,
                                                   baseline)
        return blocks

    def render_blocks_with_phases(self, duration_s: float, slice_s: float,
                                  rng: np.random.Generator,
                                  baseline: InstructionMix | None = None
                                  ) -> tuple[list[ActivityBlock], list[str]]:
        """Render slices plus the name of the dominant phase per slice.

        The phase labels give ground-truth frame alignment — what an
        attacker who controls the template VM has during offline
        training (the MEA case). Slices dominated by the idle baseline
        get the empty-string label.
        """
        if duration_s <= 0 or slice_s <= 0:
            raise ValueError("duration_s and slice_s must be positive")
        baseline = baseline or idle_mix()
        baseline_rates = baseline.rate_vector()
        num_slices = int(round(duration_s / slice_s))
        # Materialize the phase timeline for this run.
        timeline: list[tuple[float, float, np.ndarray, str]] = []
        t = 0.0
        for phase in self.phases:
            phase_duration = phase.sample_duration(rng)
            intensity = phase.sample_intensity(rng)
            rates = phase.mix.rate_vector() * intensity
            timeline.append((t, t + phase_duration, rates, phase.name))
            t += phase_duration
        blocks: list[ActivityBlock] = []
        labels: list[str] = []
        cursor = 0  # phases are time-ordered; avoid rescanning from zero
        for i in range(num_slices):
            start, end = i * slice_s, (i + 1) * slice_s
            signals = baseline_rates * slice_s
            best_overlap = 0.0
            best_name = ""
            while cursor < len(timeline) and timeline[cursor][1] <= start:
                cursor += 1
            j = cursor
            while j < len(timeline) and timeline[j][0] < end:
                ph_start, ph_end, rates, name = timeline[j]
                overlap = min(end, ph_end) - max(start, ph_start)
                if overlap > 0:
                    signals = signals + rates * overlap
                    if overlap > best_overlap:
                        best_overlap = overlap
                        best_name = name
                j += 1
            # Per-slice multiplicative jitter: microarchitectural noise
            # beyond measurement noise (scheduling, frequency wander).
            signals = signals * max(0.0, rng.normal(1.0, 0.012))
            blocks.append(ActivityBlock(signals=signals, duration_s=slice_s))
            labels.append(best_name if best_overlap >= 0.3 * slice_s else "")
        return blocks, labels


class Workload(abc.ABC):
    """A victim application parameterized by a secret."""

    #: Sampling-window length the paper uses (3 s at 1 ms).
    default_duration_s: float = 3.0
    default_slice_s: float = 1e-3

    @property
    @abc.abstractmethod
    def secrets(self) -> list:
        """All secret values this workload can execute."""

    @abc.abstractmethod
    def program_for(self, secret, rng: np.random.Generator) -> PhaseProgram:
        """Build this run's phase program for ``secret``."""

    def generate_blocks(self, secret, rng: "int | np.random.Generator | None" = None,
                        duration_s: float | None = None,
                        slice_s: float | None = None) -> list[ActivityBlock]:
        """Run the workload once; returns the sampled activity slices."""
        blocks, _ = self.generate_blocks_with_phases(secret, rng, duration_s,
                                                     slice_s)
        return blocks

    def generate_blocks_with_phases(
            self, secret, rng: "int | np.random.Generator | None" = None,
            duration_s: float | None = None, slice_s: float | None = None
    ) -> tuple[list[ActivityBlock], list[str]]:
        """Run once; returns (slices, dominant phase name per slice)."""
        if secret not in self.secrets:
            raise ValueError(f"unknown secret {secret!r} for {type(self).__name__}")
        gen = ensure_rng(rng)
        program = self.program_for(secret, gen)
        return program.render_blocks_with_phases(
            duration_s if duration_s is not None else self.default_duration_s,
            slice_s if slice_s is not None else self.default_slice_s,
            gen)
