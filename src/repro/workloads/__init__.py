"""Synthetic guest workloads.

Stand-ins for the paper's real victim applications (Chrome website
loads, xdotool keystrokes, PyTorch model inference). Each workload maps
a *secret* (which website, how many keystrokes, which DNN architecture)
to a phase-structured activity program whose per-slice signal emissions
give every secret a distinct — but noisy — HPC signature, exactly the
statistical structure the attacks learn from.
"""

from repro.workloads.base import (
    InstructionMix,
    Phase,
    PhaseProgram,
    Workload,
    idle_mix,
)
from repro.workloads.website import ALEXA_SITES, WebsiteWorkload
from repro.workloads.keystroke import KeystrokeWorkload
from repro.workloads.dnn import DNN_MODELS, DnnWorkload, LayerKind
from repro.workloads.crypto import RsaSignWorkload, random_key

__all__ = [
    "ALEXA_SITES",
    "DNN_MODELS",
    "DnnWorkload",
    "InstructionMix",
    "KeystrokeWorkload",
    "LayerKind",
    "Phase",
    "PhaseProgram",
    "RsaSignWorkload",
    "WebsiteWorkload",
    "Workload",
    "idle_mix",
    "random_key",
]
