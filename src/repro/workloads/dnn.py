"""DNN inference workload (the MEA victim).

The paper runs 30 common torchvision models inside the victim VM; the
model-extraction attacker recovers each model's *layer sequence* from
the HPC trace. Here each model is a layer program: every layer kind has
a characteristic instruction mix (convolutions are SIMD-heavy, fully
connected layers are memory-bound, activations are cheap elementwise
passes) and a duration proportional to its compute cost, so the layer
sequence is written into the time series the monitor samples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import InstructionMix, Phase, PhaseProgram, Workload


class LayerKind(enum.Enum):
    """DNN layer kinds distinguishable in the trace."""

    CONV = "conv"
    DWCONV = "dwconv"
    BN = "bn"
    RELU = "relu"
    POOL = "pool"
    FC = "fc"
    ADD = "add"
    CONCAT = "concat"
    GAP = "gap"
    ATTENTION = "attention"
    EMBED = "embed"


@dataclass(frozen=True)
class Layer:
    """One layer: kind plus a relative compute cost (GFLOP-ish units)."""

    kind: LayerKind
    cost: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"layer cost must be positive, got {self.cost}")


#: Per-kind instruction mixes. Rates are per-second at nominal intensity;
#: the layer's cost sets how long the mix stays active.
_LAYER_MIXES: dict[LayerKind, InstructionMix] = {
    LayerKind.CONV: InstructionMix(
        ips=2.8e9, load_ratio=0.32, store_ratio=0.12, simd_ratio=0.42,
        fp_ratio=0.1, l1d_miss_ratio=0.02, llc_miss_ratio=0.25,
        mul_ratio=0.05, prefetch_ratio=0.01, branch_ratio=0.06),
    LayerKind.DWCONV: InstructionMix(
        ips=1.6e9, load_ratio=0.42, store_ratio=0.18, simd_ratio=0.2,
        l1d_miss_ratio=0.06, llc_miss_ratio=0.4, branch_ratio=0.08),
    LayerKind.BN: InstructionMix(
        ips=1.2e9, load_ratio=0.4, store_ratio=0.2, fp_ratio=0.25,
        simd_ratio=0.1, l1d_miss_ratio=0.05, div_ratio=0.02),
    LayerKind.RELU: InstructionMix(
        ips=1.0e9, load_ratio=0.42, store_ratio=0.22, simd_ratio=0.12,
        branch_ratio=0.1, l1d_miss_ratio=0.05),
    LayerKind.POOL: InstructionMix(
        ips=1.1e9, load_ratio=0.48, store_ratio=0.12, simd_ratio=0.1,
        branch_ratio=0.12, l1d_miss_ratio=0.06, llc_miss_ratio=0.35),
    LayerKind.FC: InstructionMix(
        ips=1.8e9, load_ratio=0.5, store_ratio=0.06, simd_ratio=0.3,
        fp_ratio=0.06, l1d_miss_ratio=0.09, llc_miss_ratio=0.6,
        dtlb_miss_ratio=0.01, prefetch_ratio=0.02),
    LayerKind.ADD: InstructionMix(
        ips=1.0e9, load_ratio=0.5, store_ratio=0.24, simd_ratio=0.14,
        l1d_miss_ratio=0.06),
    LayerKind.CONCAT: InstructionMix(
        ips=0.9e9, load_ratio=0.46, store_ratio=0.4, l1d_miss_ratio=0.08,
        llc_miss_ratio=0.5),
    LayerKind.GAP: InstructionMix(
        ips=0.8e9, load_ratio=0.52, store_ratio=0.05, fp_ratio=0.2,
        l1d_miss_ratio=0.07),
    LayerKind.ATTENTION: InstructionMix(
        ips=2.4e9, load_ratio=0.36, store_ratio=0.12, simd_ratio=0.34,
        fp_ratio=0.12, div_ratio=0.01, l1d_miss_ratio=0.03,
        llc_miss_ratio=0.3, mul_ratio=0.04),
    LayerKind.EMBED: InstructionMix(
        ips=0.9e9, load_ratio=0.5, store_ratio=0.3, l1d_miss_ratio=0.1,
        llc_miss_ratio=0.55, dtlb_miss_ratio=0.02),
}

#: Seconds of execution per unit of layer cost. Calibrated so the
#: heaviest zoo member (resnet152) finishes inside the 3 s sampling
#: window while small layers (BN/ReLU) still span a monitor slice or
#: two — the regime where sequence decoding succeeds but is imperfect,
#: as in the paper (90.5% matched layers).
_SECONDS_PER_COST = 0.01


def _conv_block(cost: float, bn: bool = True) -> list[Layer]:
    # On CPU inference the elementwise layers are memory-bound and take
    # a sizable fraction of a convolution's time (they are not free as
    # on accelerators) — which is also what makes them visible to the
    # sequence-decoding attacker.
    layers = [Layer(LayerKind.CONV, cost)]
    if bn:
        layers.append(Layer(LayerKind.BN, cost * 0.30))
    layers.append(Layer(LayerKind.RELU, cost * 0.20))
    return layers


def _vgg(cfg: list[int]) -> list[Layer]:
    layers: list[Layer] = []
    cost = 2.0
    for stage in cfg:
        for _ in range(stage):
            layers.extend(_conv_block(cost, bn=False))
        layers.append(Layer(LayerKind.POOL, cost * 0.1))
        cost *= 0.85
    layers.extend([Layer(LayerKind.FC, 4.0), Layer(LayerKind.RELU, 0.2),
                   Layer(LayerKind.FC, 1.6), Layer(LayerKind.RELU, 0.1),
                   Layer(LayerKind.FC, 0.4)])
    return layers


def _resnet(blocks: list[int], bottleneck: bool) -> list[Layer]:
    layers: list[Layer] = [Layer(LayerKind.CONV, 2.4), Layer(LayerKind.BN, 0.2),
                           Layer(LayerKind.RELU, 0.1),
                           Layer(LayerKind.POOL, 0.2)]
    cost = 1.8
    for stage, count in enumerate(blocks):
        for _ in range(count):
            if bottleneck:
                layers.extend(_conv_block(cost * 0.4))
                layers.extend(_conv_block(cost))
                layers.extend(_conv_block(cost * 0.4))
            else:
                layers.extend(_conv_block(cost))
                layers.extend(_conv_block(cost))
            layers.append(Layer(LayerKind.ADD, cost * 0.15))
            layers.append(Layer(LayerKind.RELU, cost * 0.10))
        cost *= 0.8
    layers.extend([Layer(LayerKind.GAP, 0.1), Layer(LayerKind.FC, 0.3)])
    return layers


def _densenet(blocks: list[int]) -> list[Layer]:
    layers: list[Layer] = [Layer(LayerKind.CONV, 2.0), Layer(LayerKind.BN, 0.2),
                           Layer(LayerKind.RELU, 0.1),
                           Layer(LayerKind.POOL, 0.2)]
    cost = 0.9
    for count in blocks:
        for _ in range(count):
            layers.extend(_conv_block(cost * 0.3))
            layers.extend(_conv_block(cost))
            layers.append(Layer(LayerKind.CONCAT, cost * 0.15))
        layers.append(Layer(LayerKind.POOL, cost * 0.15))
        cost *= 0.85
    layers.extend([Layer(LayerKind.GAP, 0.1), Layer(LayerKind.FC, 0.3)])
    return layers


def _mobilenet(blocks: int, expansion_heavy: bool) -> list[Layer]:
    layers: list[Layer] = _conv_block(1.2)
    cost = 0.7
    for _ in range(blocks):
        layers.extend(_conv_block(cost * (1.4 if expansion_heavy else 0.9)))
        layers.append(Layer(LayerKind.DWCONV, cost))
        layers.append(Layer(LayerKind.BN, cost * 0.30))
        layers.append(Layer(LayerKind.RELU, cost * 0.20))
        layers.extend(_conv_block(cost * 0.8))
        layers.append(Layer(LayerKind.ADD, cost * 0.15))
        cost *= 0.92
    layers.extend([Layer(LayerKind.GAP, 0.08), Layer(LayerKind.FC, 0.25)])
    return layers


def _inception(stages: int) -> list[Layer]:
    layers: list[Layer] = _conv_block(2.2) + [Layer(LayerKind.POOL, 0.2)]
    cost = 1.0
    for _ in range(stages):
        for branch_cost in (cost * 0.5, cost, cost * 0.7, cost * 0.3):
            layers.extend(_conv_block(branch_cost))
        layers.append(Layer(LayerKind.CONCAT, cost * 0.15))
        cost *= 0.9
    layers.extend([Layer(LayerKind.GAP, 0.1), Layer(LayerKind.FC, 0.3)])
    return layers


def _squeezenet(fire_modules: int) -> list[Layer]:
    layers: list[Layer] = _conv_block(1.6, bn=False) + [Layer(LayerKind.POOL, 0.15)]
    cost = 0.8
    for _ in range(fire_modules):
        layers.extend(_conv_block(cost * 0.3, bn=False))  # squeeze
        layers.extend(_conv_block(cost * 0.6, bn=False))  # expand 1x1
        layers.extend(_conv_block(cost, bn=False))        # expand 3x3
        layers.append(Layer(LayerKind.CONCAT, cost * 0.15))
        cost *= 0.9
    layers.extend([Layer(LayerKind.CONV, 0.5), Layer(LayerKind.GAP, 0.1)])
    return layers


def _vit(depth: int) -> list[Layer]:
    layers: list[Layer] = [Layer(LayerKind.EMBED, 0.8)]
    for _ in range(depth):
        layers.append(Layer(LayerKind.ATTENTION, 1.6))
        layers.append(Layer(LayerKind.ADD, 0.18))
        layers.append(Layer(LayerKind.FC, 1.2))
        layers.append(Layer(LayerKind.RELU, 0.15))
        layers.append(Layer(LayerKind.ADD, 0.18))
    layers.append(Layer(LayerKind.FC, 0.3))
    return layers


def _alexnet() -> list[Layer]:
    layers: list[Layer] = []
    for cost in (2.2, 1.8, 1.2, 1.2, 0.9):
        layers.extend(_conv_block(cost, bn=False))
        if cost in (2.2, 1.8, 0.9):
            layers.append(Layer(LayerKind.POOL, 0.15))
    layers.extend([Layer(LayerKind.FC, 2.8), Layer(LayerKind.RELU, 0.15),
                   Layer(LayerKind.FC, 1.2), Layer(LayerKind.RELU, 0.1),
                   Layer(LayerKind.FC, 0.3)])
    return layers


#: The 30 models, torchvision-style names -> layer programs.
DNN_MODELS: dict[str, list[Layer]] = {
    "alexnet": _alexnet(),
    "vgg11": _vgg([1, 1, 2, 2, 2]),
    "vgg13": _vgg([2, 2, 2, 2, 2]),
    "vgg16": _vgg([2, 2, 3, 3, 3]),
    "vgg19": _vgg([2, 2, 4, 4, 4]),
    "resnet18": _resnet([2, 2, 2, 2], bottleneck=False),
    "resnet34": _resnet([3, 4, 6, 3], bottleneck=False),
    "resnet50": _resnet([3, 4, 6, 3], bottleneck=True),
    "resnet101": _resnet([3, 4, 23, 3], bottleneck=True),
    "resnet152": _resnet([3, 8, 36, 3], bottleneck=True),
    "wide_resnet50_2": _resnet([3, 4, 6, 3], bottleneck=True),
    "resnext50_32x4d": _resnet([3, 4, 6, 3], bottleneck=True),
    "squeezenet1_0": _squeezenet(8),
    "squeezenet1_1": _squeezenet(8),
    "densenet121": _densenet([6, 12, 24, 16]),
    "densenet169": _densenet([6, 12, 32, 32]),
    "densenet201": _densenet([6, 12, 48, 32]),
    "googlenet": _inception(9),
    "inception_v3": _inception(11),
    "mobilenet_v2": _mobilenet(17, expansion_heavy=True),
    "mobilenet_v3_small": _mobilenet(11, expansion_heavy=False),
    "mobilenet_v3_large": _mobilenet(15, expansion_heavy=True),
    "shufflenet_v2_x1_0": _mobilenet(16, expansion_heavy=False),
    "mnasnet1_0": _mobilenet(14, expansion_heavy=True),
    "efficientnet_b0": _mobilenet(16, expansion_heavy=True),
    "efficientnet_b1": _mobilenet(23, expansion_heavy=True),
    "regnet_x_400mf": _resnet([1, 2, 7, 12], bottleneck=True),
    "regnet_y_400mf": _resnet([1, 3, 6, 6], bottleneck=True),
    "convnext_tiny": _vit(9),
    "vit_b_16": _vit(12),
}


class DnnWorkload(Workload):
    """Runs one inference of a 30-model zoo inside the guest.

    The secret is the model name; :meth:`layer_sequence` exposes the
    ground-truth layer-kind sequence the MEA attacker tries to recover.
    """

    def __init__(self, models: dict[str, list[Layer]] | None = None,
                 seconds_per_cost: float = _SECONDS_PER_COST) -> None:
        self._models = dict(models) if models is not None else dict(DNN_MODELS)
        if not self._models:
            raise ValueError("models must be non-empty")
        if seconds_per_cost <= 0:
            raise ValueError(
                f"seconds_per_cost must be positive, got {seconds_per_cost}")
        self.seconds_per_cost = seconds_per_cost

    @property
    def secrets(self) -> list:
        return list(self._models)

    def layer_sequence(self, model_name: str) -> list[LayerKind]:
        """Ground-truth layer kinds of a model (the MEA label)."""
        try:
            return [layer.kind for layer in self._models[model_name]]
        except KeyError as exc:
            raise KeyError(f"unknown model {model_name!r}") from exc

    def inference_seconds(self, model_name: str) -> float:
        """Nominal single-inference latency of a model."""
        layers = self._models[model_name]
        return sum(l.cost for l in layers) * self.seconds_per_cost

    def program_for(self, secret: str, rng: np.random.Generator) -> PhaseProgram:
        try:
            layers = self._models[secret]
        except KeyError as exc:
            raise ValueError(f"unknown model {secret!r}") from exc
        phases = [
            Phase(layer.kind.value, _LAYER_MIXES[layer.kind],
                  layer.cost * self.seconds_per_cost,
                  duration_jitter=0.06, intensity_jitter=0.06)
            for layer in layers
        ]
        return PhaseProgram(phases=phases)
