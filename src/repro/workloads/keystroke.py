"""Keystroke workload (the KSA victim).

Following the paper's setup, the victim emits K keystrokes (K drawn
from [0, 9]) within the 3-second sampling window, generated xdotool
style. Each keystroke is a short interrupt-handling/input-processing
burst over an idle baseline — the timing pattern of these bursts is
what the sniffing attack counts.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import InstructionMix, Phase, PhaseProgram, Workload, idle_mix

#: Activity burst while the guest handles one key press + release.
_KEYSTROKE_BURST = InstructionMix(
    ips=1.4e9, load_ratio=0.3, store_ratio=0.14, branch_ratio=0.24,
    branch_miss_ratio=0.04, l1d_miss_ratio=0.025, call_ratio=0.02,
    stack_ratio=0.07)

#: Editor/terminal redraw following a keystroke.
_REDRAW = InstructionMix(
    ips=7e8, load_ratio=0.36, store_ratio=0.22, l1d_miss_ratio=0.05,
    llc_miss_ratio=0.4, simd_ratio=0.08)


class KeystrokeWorkload(Workload):
    """Emits ``secret`` keystrokes at random instants in the window.

    Parameters
    ----------
    max_keys:
        Secrets are 0..max_keys inclusive (paper: 9).
    burst_s:
        Nominal duration of one keystroke-handling burst.
    """

    def __init__(self, max_keys: int = 9, burst_s: float = 0.012) -> None:
        if max_keys < 0:
            raise ValueError(f"max_keys must be >= 0, got {max_keys}")
        if burst_s <= 0:
            raise ValueError(f"burst_s must be positive, got {burst_s}")
        self.max_keys = max_keys
        self.burst_s = burst_s

    @property
    def secrets(self) -> list:
        return list(range(self.max_keys + 1))

    def program_for(self, secret: int, rng: np.random.Generator) -> PhaseProgram:
        if not 0 <= secret <= self.max_keys:
            raise ValueError(
                f"secret must be in [0, {self.max_keys}], got {secret}")
        window = self.default_duration_s
        # Keystroke instants: sorted uniform draws, with a human-ish
        # minimum spacing enforced by rejection-free clipping.
        instants = np.sort(rng.uniform(0.0, window - 2 * self.burst_s,
                                       size=secret))
        phases: list[Phase] = []
        t = 0.0
        for instant in instants:
            gap = max(0.0, float(instant) - t)
            if gap > 0:
                phases.append(Phase("idle", idle_mix(), gap,
                                    duration_jitter=0.0, intensity_jitter=0.05))
            # Keystroke handling is a short, highly deterministic code
            # path, so its burst size varies little run to run.
            phases.append(Phase("keystroke", _KEYSTROKE_BURST, self.burst_s,
                                duration_jitter=0.04, intensity_jitter=0.04))
            phases.append(Phase("redraw", _REDRAW, self.burst_s * 0.8,
                                duration_jitter=0.06, intensity_jitter=0.05))
            t = float(instant) + 1.8 * self.burst_s
        return PhaseProgram(phases=phases)
