"""Keystroke sniffing attack (paper Section III-D).

The secret is the number of keystrokes K in [0, 9] typed during the
window; the paper reuses the WFA CNN for this classification, and so do
we.
"""

from __future__ import annotations

from repro.attacks.wfa import ClassificationAttack


class KeystrokeSniffingAttack(ClassificationAttack):
    """KSA: how many keystrokes landed in the sampling window?"""

    def __init__(self, max_keys: int = 9, **kwargs) -> None:
        kwargs.setdefault("head", "gap")  # counting is position-invariant
        # Counting adjacent K apart needs a long schedule: the per-key
        # GAP-feature difference is ~1/T of a burst response.
        kwargs.setdefault("epochs", 60)
        super().__init__(num_classes=max_keys + 1, **kwargs)
        self.max_keys = max_keys
