"""Website fingerprinting attack (paper Section III-C).

A compact CNN — four convolution layers and three fully connected
layers with batch normalization and dropout, as in the paper — maps a
4-event HPC trace of a page load to one of 45 websites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.collector import TraceDataset
from repro.attacks.features import Standardizer, downsample_trace
from repro.ml.layers import (
    AvgPool1d, BatchNorm, Conv1d, Dense, Dropout, Flatten, GlobalAvgPool1d,
    Relu)
from repro.ml.metrics import accuracy_score
from repro.ml.network import Network, TrainingHistory
from repro.ml.optimizers import Adam
from repro.utils.rng import ensure_rng, spawn_rng


@dataclass
class AttackResult:
    """Training curves plus held-out accuracy."""

    history: TrainingHistory
    test_accuracy: float


class ClassificationAttack:
    """Shared CNN classification pipeline (used by WFA and KSA).

    Parameters
    ----------
    num_classes:
        Label cardinality (45 websites / 10 keystroke counts).
    downsample:
        Time-pooling factor applied before the CNN.
    epochs / batch_size / lr:
        Training hyperparameters.
    """

    def __init__(self, num_classes: int, downsample: int = 10,
                 epochs: int = 40, batch_size: int = 32, lr: float = 1e-3,
                 head: str = "flatten",
                 rng: "int | np.random.Generator | None" = None) -> None:
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if head not in ("flatten", "gap"):
            raise ValueError(f"head must be 'flatten' or 'gap', got {head!r}")
        self.num_classes = num_classes
        self.downsample = downsample
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.head = head
        self._rng = ensure_rng(rng)
        self.network: Network | None = None
        self.standardizer = Standardizer()

    def build_network(self, num_events: int, trace_len: int) -> Network:
        """The paper's compact CNN: 4 conv + 3 FC with BN and dropout.

        ``head='flatten'`` keeps temporal position information (WFA:
        *where* a phase happens distinguishes sites); ``head='gap'``
        ends with global average pooling, which is position-invariant
        (KSA: the label is *how many* bursts occurred, wherever they
        land in the window).
        """
        rngs = spawn_rng(self._rng, 8)
        t = trace_len
        if self.head == "gap":
            # Counting head: stride-1 convs (no intermediate pooling —
            # max pooling merges adjacent bursts and destroys counts)
            # ending in global average pooling.
            layers = [
                Conv1d(num_events, 16, 7, padding=3, rng=rngs[0]),
                BatchNorm(16), Relu(),
                Conv1d(16, 32, 5, padding=2, rng=rngs[1]),
                BatchNorm(32), Relu(),
                Conv1d(32, 32, 3, padding=1, rng=rngs[2]),
                BatchNorm(32), Relu(),
                Conv1d(32, 64, 3, padding=1, rng=rngs[3]),
                BatchNorm(64), Relu(),
                GlobalAvgPool1d(),
            ]
            t_flat = 64
        else:
            # Average pooling (not max) between stages: the site
            # fingerprint is per-phase activity *level*, which averaging
            # preserves and denoises while max pooling discards.
            layers = [
                Conv1d(num_events, 16, 7, padding=3, rng=rngs[0]),
                BatchNorm(16), Relu(), AvgPool1d(2),
                Conv1d(16, 32, 5, padding=2, rng=rngs[1]),
                BatchNorm(32), Relu(), AvgPool1d(2),
                Conv1d(32, 32, 3, padding=1, rng=rngs[2]),
                BatchNorm(32), Relu(), AvgPool1d(2),
                Conv1d(32, 64, 3, padding=1, rng=rngs[3]),
                BatchNorm(64), Relu(), AvgPool1d(2),
                Flatten(),
            ]
            t_flat = 64 * (t // 16)
        layers.extend([
            Dense(t_flat, 128, rng=rngs[4]), Relu(), Dropout(0.4, rng=rngs[5]),
            Dense(128, 64, rng=rngs[6]), Relu(),
            Dense(64, self.num_classes, rng=rngs[7]),
        ])
        return Network(layers)

    def _prepare(self, traces: np.ndarray, fit: bool) -> np.ndarray:
        pooled = downsample_trace(traces, self.downsample)
        if fit:
            return self.standardizer.fit_transform(pooled)
        return self.standardizer.transform(pooled)

    def train(self, train_set: TraceDataset,
              val_set: TraceDataset) -> TrainingHistory:
        """Fit the CNN; returns the training curves (paper Fig. 1)."""
        x_train = self._prepare(train_set.traces, fit=True)
        x_val = self._prepare(val_set.traces, fit=False)
        self.network = self.build_network(x_train.shape[1], x_train.shape[2])
        return self.network.fit(
            x_train, train_set.labels, x_val, val_set.labels,
            epochs=self.epochs, batch_size=self.batch_size,
            optimizer=Adam(lr=self.lr), lr_decay=0.97, rng=self._rng)

    def predict(self, traces: np.ndarray) -> np.ndarray:
        """Predict labels for raw (N, E, T) traces."""
        if self.network is None:
            raise RuntimeError("attack model is not trained yet")
        return self.network.predict(self._prepare(traces, fit=False))

    def evaluate(self, test_set: TraceDataset) -> float:
        """Held-out attack accuracy."""
        return accuracy_score(test_set.labels, self.predict(test_set.traces))

    def run(self, dataset: TraceDataset, test_set: TraceDataset | None = None,
            train_fraction: float = 0.7) -> AttackResult:
        """Train/validate on ``dataset``, test on ``test_set`` (or val)."""
        train_set, val_set = dataset.split(train_fraction, rng=self._rng)
        history = self.train(train_set, val_set)
        target = test_set if test_set is not None else val_set
        return AttackResult(history=history,
                            test_accuracy=self.evaluate(target))


class WebsiteFingerprintingAttack(ClassificationAttack):
    """WFA: which of the 45 websites did the victim VM load?"""

    def __init__(self, num_sites: int = 45, **kwargs) -> None:
        super().__init__(num_classes=num_sites, **kwargs)
