"""Trace preprocessing shared by the attacks."""

from __future__ import annotations

import numpy as np


class Standardizer:
    """Per-event-channel standardization fit on the training split."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, traces: np.ndarray) -> "Standardizer":
        """Fit channel statistics on (N, E, T) traces."""
        if traces.ndim != 3:
            raise ValueError(f"traces must be (N, E, T), got {traces.shape}")
        self.mean = traces.mean(axis=(0, 2), keepdims=True)
        self.std = traces.std(axis=(0, 2), keepdims=True) + 1e-9
        return self

    def transform(self, traces: np.ndarray) -> np.ndarray:
        """Apply the fitted normalization."""
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer used before fit()")
        return (traces - self.mean) / self.std

    def fit_transform(self, traces: np.ndarray) -> np.ndarray:
        return self.fit(traces).transform(traces)


def downsample_trace(traces: np.ndarray, factor: int) -> np.ndarray:
    """Average-pool (N, E, T) traces along time by ``factor``.

    3000 raw 1 ms slices are overkill for the classifiers; pooling keeps
    the phase structure while shrinking the input (the paper's CNN does
    the equivalent with strided convolutions).
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return traces
    n, e, t = traces.shape
    t_out = t // factor
    return traces[:, :, :t_out * factor].reshape(n, e, t_out, factor).mean(axis=3)


def downsample_frame_labels(frame_labels: np.ndarray, factor: int) -> np.ndarray:
    """Downsample (N, T) frame labels by per-window majority vote."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return frame_labels
    n, t = frame_labels.shape
    t_out = t // factor
    windows = frame_labels[:, :t_out * factor].reshape(n, t_out, factor)
    num_classes = int(frame_labels.max()) + 1
    # Majority vote via bincount per window.
    out = np.empty((n, t_out), dtype=int)
    for i in range(n):
        for j in range(t_out):
            out[i, j] = int(np.bincount(windows[i, j],
                                        minlength=num_classes).argmax())
    return out
