"""Simple-power-analysis-style key extraction over HPC traces.

The finest-grained attack in this library (paper §X future work):
recover a private exponent bit by bit from one signature's HPC trace.
Square-and-multiply leaks twice — a set bit *lengthens* the schedule by
one operation, and the multiplication's instruction mix differs subtly
from the squaring's — so the attacker classifies operation windows and
decodes the S/M sequence: S followed by M is a 1, S followed by another
S is a 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.collector import TraceCollector
from repro.utils.rng import ensure_rng


@dataclass
class KeyRecoveryResult:
    """Outcome of attacking one set of signatures."""

    bit_accuracy: float
    full_key_rate: float
    keys_attacked: int


class KeyRecoveryAttack:
    """Template-calibrated square/multiply classifier and bit decoder.

    Parameters
    ----------
    op_slices:
        Sampling slices per modular operation (op_seconds / slice_s).
    activity_channel / ratio_channel:
        Trace rows used for activity gating (RETIRED_UOPS) and the
        square-vs-multiply discriminator (LS_DISPATCH / RETIRED_UOPS).
    """

    def __init__(self, op_slices: int, activity_channel: int = 0,
                 ratio_channel: int = 1) -> None:
        if op_slices < 1:
            raise ValueError(f"op_slices must be >= 1, got {op_slices}")
        self.op_slices = op_slices
        self.activity_channel = activity_channel
        self.ratio_channel = ratio_channel
        self._threshold: float | None = None
        self._activity_floor: float | None = None

    # -- calibration ----------------------------------------------------

    def calibrate(self, traces: np.ndarray, keys: "list[tuple]") -> None:
        """Fit the S/M ratio threshold from template traces.

        The attacker runs known keys on the template VM; operation
        windows are labelled from the key schedule and the per-class
        mean load/uop ratios fix the decision threshold.
        """
        square_ratios = []
        multiply_ratios = []
        for trace, key in zip(traces, keys):
            windows = self._operation_windows(trace)
            schedule = self._schedule(key)
            for ratio, op in zip(windows, schedule):
                (square_ratios if op == "S" else multiply_ratios).append(
                    ratio)
        if not square_ratios and not multiply_ratios:
            raise ValueError("calibration produced no operation windows; "
                             "are the traces long enough?")
        if not square_ratios or not multiply_ratios:
            # Heavy obfuscation can blur the schedule so badly that the
            # template windows all land in one class; the attacker falls
            # back to an uninformed threshold (attack ~= coin flips).
            everything = square_ratios + multiply_ratios
            self._threshold = float(np.median(everything))
            return
        self._threshold = (float(np.median(square_ratios))
                           + float(np.median(multiply_ratios))) / 2.0

    @staticmethod
    def _schedule(key: tuple) -> str:
        """The S/M operation string implied by a key."""
        ops = []
        for bit in key:
            ops.append("S")
            if bit:
                ops.append("M")
        return "".join(ops)

    # -- decoding ---------------------------------------------------------

    def _operation_windows(self, trace: np.ndarray) -> np.ndarray:
        """Per-operation load/uop ratios over the active prefix."""
        activity = trace[self.activity_channel]
        if self._activity_floor is None:
            floor = 0.1 * float(np.percentile(activity, 90))
        else:
            floor = self._activity_floor
        active = activity > floor
        # The signature is a burst starting at t=0; take everything up
        # to the last active slice (noise injection can blank or light
        # individual slices, so prefix-contiguity is not assumed).
        end = (int(np.flatnonzero(active).max()) + 1 if active.any()
               else 0)
        usable = (end // self.op_slices) * self.op_slices
        if usable == 0:
            return np.empty(0)
        loads = trace[self.ratio_channel, :usable]
        uops = activity[:usable]
        ratio = loads / np.maximum(uops, 1.0)
        return ratio.reshape(-1, self.op_slices).mean(axis=1)

    def recover_bits(self, trace: np.ndarray,
                     num_bits: int) -> "list[int]":
        """Decode ``num_bits`` exponent bits from one signature trace."""
        if self._threshold is None:
            raise RuntimeError("attack not calibrated; call calibrate()")
        windows = self._operation_windows(trace)
        classes = ["M" if ratio > self._threshold else "S"
                   for ratio in windows]
        bits: list[int] = []
        position = 0
        while position < len(classes) and len(bits) < num_bits:
            # Every bit starts with a squaring; a following multiply
            # marks a set bit.
            if position + 1 < len(classes) and classes[position + 1] == "M":
                bits.append(1)
                position += 2
            else:
                bits.append(0)
                position += 1
        bits.extend([0] * (num_bits - len(bits)))
        return bits

    # -- end-to-end -------------------------------------------------------

    def run(self, collector: TraceCollector, keys: "list[tuple]",
            calibration_runs: int = 2,
            rng: "int | np.random.Generator | None" = None
            ) -> KeyRecoveryResult:
        """Calibrate on half the keys, attack the other half."""
        gen = ensure_rng(rng)
        half = max(1, len(keys) // 2)
        template_keys = keys[:half]
        victim_keys = keys[half:]
        if not victim_keys:
            raise ValueError("need at least two keys (template + victim)")
        template_traces = []
        template_labels = []
        for key in template_keys:
            for _ in range(calibration_runs):
                trace, _ = collector.collect_one(key, rng=gen)
                template_traces.append(trace)
                template_labels.append(key)
        self.calibrate(np.stack(template_traces), template_labels)

        bit_hits = 0
        bit_total = 0
        exact = 0
        for key in victim_keys:
            trace, _ = collector.collect_one(key, rng=gen)
            recovered = self.recover_bits(trace, len(key))
            matches = sum(int(a == b) for a, b in zip(recovered, key))
            bit_hits += matches
            bit_total += len(key)
            exact += int(matches == len(key))
        return KeyRecoveryResult(
            bit_accuracy=bit_hits / bit_total if bit_total else 0.0,
            full_key_rate=exact / len(victim_keys),
            keys_attacked=len(victim_keys))
