"""The three HPC side-channel case-study attacks.

Each attack follows the paper's abstraction (Section III-B): offline,
the attacker profiles a template VM executing known secrets and collects
HPC leakage traces; a model f: X -> Y is trained; online, the model
predicts the victim's secret from its trace. The default monitored
events are the paper's four: RETIRED_UOPS, LS_DISPATCH,
MAB_ALLOCATION_BY_PIPE and DATA_CACHE_REFILLS_FROM_SYSTEM.
"""

from repro.attacks.collector import (
    DEFAULT_ATTACK_EVENTS,
    TraceCollector,
    TraceDataset,
)
from repro.attacks.features import Standardizer, downsample_trace
from repro.attacks.wfa import WebsiteFingerprintingAttack
from repro.attacks.ksa import KeystrokeSniffingAttack
from repro.attacks.mea import ModelExtractionAttack
from repro.attacks.spa import KeyRecoveryAttack, KeyRecoveryResult
from repro.attacks.projection import (
    estimate_noise_directions,
    project_out,
    strip_noise,
)

__all__ = [
    "DEFAULT_ATTACK_EVENTS",
    "KeyRecoveryAttack",
    "KeyRecoveryResult",
    "KeystrokeSniffingAttack",
    "ModelExtractionAttack",
    "Standardizer",
    "TraceCollector",
    "TraceDataset",
    "WebsiteFingerprintingAttack",
    "downsample_trace",
    "estimate_noise_directions",
    "project_out",
    "strip_noise",
]
