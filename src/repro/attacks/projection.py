"""The noise-subspace projection attacker.

A defense that always injects the *same* gadget mix adds noise along a
fixed direction in event space. An attacker who can estimate that
direction (e.g. from idle periods of defended traces, where everything
observed IS noise) can project the observations onto its orthogonal
complement and strip most of the injected noise before classifying.

This attacker motivates a design choice in the Event Obfuscator: the
minimal covering set is injected as a *randomized mix* of gadget
groups per slice, so the noise spans a subspace rather than a line —
see ``benchmarks/bench_ablation_projection.py``.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.collector import TraceDataset


def estimate_noise_directions(traces: np.ndarray, idle_mask: np.ndarray,
                              num_directions: int = 1) -> np.ndarray:
    """Principal noise directions from idle slices of defended traces.

    ``traces`` is (N, E, T); ``idle_mask`` marks the slices where the
    application is known to be idle, so per-event observations there
    are (almost) pure injected noise. Returns an orthonormal
    ``(num_directions, E)`` basis of the dominant noise directions.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 3:
        raise ValueError(f"traces must be (N, E, T), got {traces.shape}")
    idle_mask = np.asarray(idle_mask, dtype=bool)
    if idle_mask.shape != (traces.shape[2],):
        raise ValueError("idle_mask must have one entry per slice")
    if num_directions < 1 or num_directions >= traces.shape[1]:
        raise ValueError(
            f"num_directions must be in [1, E), got {num_directions}")
    idle = traces[:, :, idle_mask]                 # (N, E, T_idle)
    samples = idle.transpose(0, 2, 1).reshape(-1, traces.shape[1])
    if len(samples) < traces.shape[1]:
        raise ValueError("not enough idle slices to estimate directions")
    centered = samples - samples.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:num_directions]


def project_out(traces: np.ndarray, directions: np.ndarray) -> np.ndarray:
    """Remove the ``directions`` components from every slice vector."""
    traces = np.asarray(traces, dtype=np.float64)
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    if directions.shape[1] != traces.shape[1]:
        raise ValueError(
            f"direction dimension {directions.shape[1]} does not match "
            f"event count {traces.shape[1]}")
    # Orthonormalize defensively.
    q, _ = np.linalg.qr(directions.T)
    basis = q.T
    # traces: (N, E, T); project each per-slice (E,) vector.
    coeffs = np.einsum("net,de->ndt", traces, basis)
    removed = np.einsum("ndt,de->net", coeffs, basis)
    return traces - removed


def strip_noise(dataset: TraceDataset, idle_mask: np.ndarray,
                num_directions: int = 1) -> TraceDataset:
    """Return a dataset with the estimated noise subspace projected out."""
    directions = estimate_noise_directions(dataset.traces, idle_mask,
                                           num_directions)
    cleaned = project_out(dataset.traces, directions)
    return TraceDataset(traces=cleaned, labels=dataset.labels,
                        secrets=dataset.secrets,
                        event_names=dataset.event_names,
                        frame_labels=dataset.frame_labels,
                        frame_classes=dataset.frame_classes)
