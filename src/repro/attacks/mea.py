"""Model extraction attack (paper Section III-E).

The label is the *layer sequence* of the DNN running in the victim VM,
so the attack is sequence-to-sequence: a bidirectional GRU labels every
trace frame with a layer kind and a CTC-style decoder collapses the
frames into a predicted architecture. Accuracy is the paper's
matched-layer statistic (1 - normalized edit distance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.collector import TraceDataset
from repro.attacks.features import (
    Standardizer, downsample_frame_labels, downsample_trace)
from repro.ml.ctc import (
    bigram_counts, collapse_repeats, lm_beam_decode, sequence_accuracy)
from repro.ml.losses import softmax
from repro.ml.optimizers import Adam
from repro.ml.rnn import BiGruSequenceClassifier
from repro.utils.rng import ensure_rng


@dataclass
class MeaResult:
    """Per-epoch frame accuracy plus held-out sequence accuracy."""

    frame_accuracy_curve: list[float]
    test_sequence_accuracy: float


class ModelExtractionAttack:
    """MEA: recover the victim DNN's layer sequence from its trace.

    Parameters
    ----------
    downsample:
        Time pooling before the GRU (majority-vote for frame labels).
    hidden_size / epochs / batch_size / lr:
        BiGRU hyperparameters.
    """

    def __init__(self, downsample: int = 10, hidden_size: int = 32,
                 epochs: int = 12, batch_size: int = 8, lr: float = 3e-3,
                 training: str = "framewise",
                 rng: "int | np.random.Generator | None" = None) -> None:
        if training not in ("framewise", "ctc"):
            raise ValueError(
                f"training must be 'framewise' or 'ctc', got {training!r}")
        self.downsample = downsample
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.training = training
        self._rng = ensure_rng(rng)
        self.classifier: BiGruSequenceClassifier | None = None
        self.standardizer = Standardizer()
        self.frame_classes: list[str] = []
        self.transition_lm: np.ndarray | None = None

    def _prepare(self, traces: np.ndarray, fit: bool) -> np.ndarray:
        pooled = downsample_trace(traces, self.downsample)
        normed = (self.standardizer.fit_transform(pooled) if fit
                  else self.standardizer.transform(pooled))
        return normed.transpose(0, 2, 1)  # (N, T', E) for the GRU

    def train(self, train_set: TraceDataset) -> list[float]:
        """Fit the BiGRU; returns the training curve.

        ``training="framewise"`` uses the template VM's frame alignment
        (curve = per-epoch frame accuracy); ``training="ctc"`` is
        alignment-free, marginalizing over alignments with the CTC loss
        (curve = per-epoch mean negative log-likelihood).
        """
        if train_set.frame_labels is None:
            raise ValueError(
                "MEA needs frame-aligned traces; collect with "
                "with_frames=True")
        self.frame_classes = list(train_set.frame_classes)
        x = self._prepare(train_set.traces, fit=True)
        frames = downsample_frame_labels(train_set.frame_labels,
                                         self.downsample)
        num_classes = len(self.frame_classes) + 1  # + blank
        self.classifier = BiGruSequenceClassifier(
            x.shape[2], self.hidden_size, num_classes, rng=self._rng)
        # Bigram transition prior over collapsed template sequences —
        # the language model driving the beam-search decoder.
        template_sequences = [collapse_repeats(row, blank=0)
                              for row in frames]
        self.transition_lm = bigram_counts(template_sequences, num_classes)
        if self.training == "ctc":
            return self.classifier.fit_ctc(
                x, template_sequences, epochs=self.epochs,
                batch_size=max(2, self.batch_size // 2),
                optimizer=Adam(lr=self.lr), rng=self._rng)
        return self.classifier.fit_frames(
            x, frames, epochs=self.epochs, batch_size=self.batch_size,
            optimizer=Adam(lr=self.lr), rng=self._rng)

    @staticmethod
    def _median_smooth(row: np.ndarray, window: int = 3) -> np.ndarray:
        """Remove single-frame flicker before the CTC collapse.

        Boundary frames straddle two layers and misclassify; a 1-frame
        spike inside a homogeneous segment would otherwise insert a
        spurious layer into the decoded sequence.
        """
        if window <= 1 or len(row) < window:
            return row
        pad = window // 2
        padded = np.concatenate([row[:pad], row, row[-pad:]])
        out = np.empty_like(row)
        for i in range(len(row)):
            out[i] = np.median(padded[i:i + window])
        return out

    def predict_sequences(self, traces: np.ndarray,
                          smooth_window: int = 3,
                          use_beam: bool = True,
                          beam_width: int = 8,
                          lm_weight: float = 2.0) -> list[list[int]]:
        """Decode layer-kind id sequences for raw traces.

        ``use_beam`` enables the LM-guided CTC prefix beam search
        (paper: "the best predicted layer sequence is identified with
        the beam search"); otherwise the best path (argmax + collapse)
        is used.
        """
        if self.classifier is None:
            raise RuntimeError("attack model is not trained yet")
        x = self._prepare(traces, fit=False)
        if use_beam and self.transition_lm is not None:
            logits = self.classifier.forward(x, training=False)
            probs = softmax(logits, axis=2)
            return [lm_beam_decode(probs[i], self.transition_lm,
                                   beam_width=beam_width,
                                   lm_weight=lm_weight)
                    for i in range(len(probs))]
        frames = self.classifier.predict_frames(x)
        return [collapse_repeats(self._median_smooth(row, smooth_window),
                                 blank=0)
                for row in frames]

    def sequence_from_frames(self, frame_labels: np.ndarray) -> list[int]:
        """Ground-truth collapsed sequence from aligned frame labels."""
        pooled = downsample_frame_labels(frame_labels[None, :],
                                         self.downsample)[0]
        return collapse_repeats(pooled, blank=0)

    def evaluate(self, test_set: TraceDataset) -> float:
        """Mean matched-layer accuracy over the held-out traces."""
        if test_set.frame_labels is None:
            raise ValueError("test set lacks frame labels")
        predictions = self.predict_sequences(test_set.traces)
        scores = [
            sequence_accuracy(pred,
                              self.sequence_from_frames(test_set.frame_labels[i]))
            for i, pred in enumerate(predictions)
        ]
        return float(np.mean(scores)) if scores else 0.0

    def run(self, dataset: TraceDataset,
            test_set: TraceDataset | None = None,
            train_fraction: float = 0.7) -> MeaResult:
        """Train on a split of ``dataset``; evaluate held-out sequences."""
        train_set, val_set = dataset.split(train_fraction, rng=self._rng)
        curve = self.train(train_set)
        target = test_set if test_set is not None else val_set
        return MeaResult(frame_accuracy_curve=curve,
                         test_sequence_accuracy=self.evaluate(target))
