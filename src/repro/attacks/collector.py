"""HPC leakage-trace collection.

The collector plays a workload inside a (simulated) SEV guest while the
malicious host samples the victim vCPU's HPC events through the
perf_event interface — 3 seconds at a 1 ms interval in the paper, i.e. a
4 x 3000 tensor per run. An optional obfuscator hook lets the defense
inject noise gadgets into the guest's execution flow before the host
observes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.events import processor_catalog
from repro.cpu.interrupts import InterruptSource
from repro.cpu.signals import Signal
from repro.utils.rng import ensure_rng
from repro.vm.perf_event import PerfEventAttr, PerfEventMonitor
from repro.workloads.base import Workload

def _forward_fill(trace: np.ndarray) -> np.ndarray:
    """Replace NaN slices with the last observed value per event row."""
    filled = trace.copy()
    for row in filled:
        last = 0.0
        for t in range(len(row)):
            if np.isnan(row[t]):
                row[t] = last
            else:
                last = row[t]
    return filled


#: The four events the paper monitors (top-ranked by the profiler).
DEFAULT_ATTACK_EVENTS: tuple[str, ...] = (
    "RETIRED_UOPS",
    "LS_DISPATCH",
    "MAB_ALLOCATION_BY_PIPE",
    "DATA_CACHE_REFILLS_FROM_SYSTEM",
)


@dataclass
class TraceDataset:
    """Collected leakage traces with labels.

    ``traces`` is (N, E, T); ``labels`` indexes into ``secrets``;
    ``frame_labels`` (N, T), present when collected with frame
    alignment, holds per-slice phase-class ids (0 = idle/blank).
    """

    traces: np.ndarray
    labels: np.ndarray
    secrets: list
    event_names: list[str]
    frame_labels: np.ndarray | None = None
    frame_classes: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    def split(self, train_fraction: float = 0.7,
              rng: "int | np.random.Generator | None" = None
              ) -> tuple["TraceDataset", "TraceDataset"]:
        """Random train/validation split (paper: 70% / 30%)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {train_fraction}")
        gen = ensure_rng(rng)
        order = gen.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        first, second = order[:cut], order[cut:]

        def subset(idx: np.ndarray) -> TraceDataset:
            return TraceDataset(
                traces=self.traces[idx], labels=self.labels[idx],
                secrets=self.secrets, event_names=self.event_names,
                frame_labels=(None if self.frame_labels is None
                              else self.frame_labels[idx]),
                frame_classes=self.frame_classes)

        return subset(first), subset(second)


class TraceCollector:
    """Collects HPC traces of a workload under host monitoring.

    Parameters
    ----------
    workload:
        The victim application.
    events:
        HPC events the attacker monitors (max = hardware registers for
        un-multiplexed traces).
    processor_model:
        Host processor (event catalog source).
    duration_s / slice_s:
        Sampling window and interval (paper: 3 s at 1 ms).
    obfuscator:
        Optional defense hook with an ``obfuscate_matrix(matrix,
        slice_s, rng)`` method (see
        :class:`repro.core.obfuscator.EventObfuscator`).
    pid_filtered:
        Whether the host monitor follows only the victim vCPU.
    """

    def __init__(self, workload: Workload,
                 events: tuple[str, ...] = DEFAULT_ATTACK_EVENTS,
                 processor_model: str = "amd-epyc-7252",
                 duration_s: float = 3.0, slice_s: float = 1e-3,
                 obfuscator=None, pid_filtered: bool = True,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if duration_s <= 0 or slice_s <= 0:
            raise ValueError("duration_s and slice_s must be positive")
        self.workload = workload
        self.events = list(events)
        self.catalog = processor_catalog(processor_model)
        self.duration_s = duration_s
        self.slice_s = slice_s
        self.obfuscator = obfuscator
        self.pid_filtered = pid_filtered
        self._rng = ensure_rng(rng)
        self.num_slices = int(round(duration_s / slice_s))
        self._interrupts = InterruptSource(
            rng=np.random.default_rng(int(self._rng.integers(2**63))))

    # -- single trace --------------------------------------------------

    def collect_one(self, secret,
                    rng: "int | np.random.Generator | None" = None,
                    with_frames: bool = False
                    ) -> "tuple[np.ndarray, list[str]]":
        """Collect one (E, T) trace; also returns per-slice phase names."""
        gen = ensure_rng(rng) if rng is not None else self._rng
        blocks, phases = self.workload.generate_blocks_with_phases(
            secret, gen, self.duration_s, self.slice_s)
        matrix = np.stack([b.signals for b in blocks])  # (T, S)
        matrix = self._add_interrupt_noise(matrix, gen)
        if self.obfuscator is not None:
            matrix = self.obfuscator.obfuscate_matrix(matrix, self.slice_s,
                                                      gen)
        monitor = PerfEventMonitor(
            self.catalog, self.events,
            attr=PerfEventAttr(pid_filtered=self.pid_filtered),
            rng=np.random.default_rng(int(gen.integers(2**63))))
        trace = monitor.observe_trace(matrix, duration_s=self.slice_s)
        if monitor.multiplexed:
            # Time multiplexing leaves NaN gaps in unscheduled slices;
            # the attacker interpolates with the last scheduled value
            # (what perf's scaled estimates amount to).
            trace = _forward_fill(trace)
        if with_frames:
            return trace, phases
        return trace, []

    def _add_interrupt_noise(self, matrix: np.ndarray,
                             gen: np.random.Generator) -> np.ndarray:
        """Vectorized version of the core's per-slice interrupt model."""
        rate = self._interrupts.effective_rate_hz
        n_irq = gen.poisson(rate * self.slice_s, size=len(matrix))
        if n_irq.any():
            matrix = matrix.copy()
            matrix[:, Signal.INTERRUPTS] += n_irq
            matrix[:, Signal.INSTRUCTIONS] += 400.0 * n_irq
            matrix[:, Signal.UOPS] += 700.0 * n_irq
        return matrix

    # -- datasets -------------------------------------------------------

    def collect(self, runs_per_secret: int, secrets: list | None = None,
                with_frames: bool = False) -> TraceDataset:
        """Collect ``runs_per_secret`` traces for each secret."""
        if runs_per_secret < 1:
            raise ValueError(
                f"runs_per_secret must be >= 1, got {runs_per_secret}")
        secrets = list(secrets) if secrets is not None else self.workload.secrets
        traces = []
        labels = []
        frame_rows: list[list[str]] = []
        for label, secret in enumerate(secrets):
            for _ in range(runs_per_secret):
                trace, phases = self.collect_one(secret,
                                                 with_frames=with_frames)
                traces.append(trace)
                labels.append(label)
                if with_frames:
                    frame_rows.append(phases)
        frame_labels = None
        frame_classes: list[str] = []
        if with_frames:
            frame_classes = sorted({p for row in frame_rows for p in row
                                    if p})
            class_ids = {name: i + 1 for i, name in enumerate(frame_classes)}
            frame_labels = np.array(
                [[class_ids.get(p, 0) for p in row] for row in frame_rows],
                dtype=int)
        return TraceDataset(traces=np.stack(traces),
                            labels=np.array(labels, dtype=int),
                            secrets=secrets, event_names=list(self.events),
                            frame_labels=frame_labels,
                            frame_classes=frame_classes)
