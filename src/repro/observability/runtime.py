"""Process-global observability runtime.

Fifth subscriber to the :class:`repro.utils.runtime.ProcessGlobal`
pattern (after telemetry, cache, resilience, fleet): hot paths ask
:func:`active` for the process-global plane and check ``.enabled``
before paying for a clock read, so the disabled path stays one
function call and an attribute read — the same contract the <5%
telemetry overhead gate already holds the other runtimes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.observability.detectors import DetectorRegistry
from repro.observability.exposition import SnapshotExporter
from repro.observability.profiler import SamplingProfiler
from repro.observability.signals import SignalExtractor
from repro.observability.slo import NOOP_SLO, NoopSloTracker, SloTracker
from repro.telemetry import runtime as telemetry
from repro.utils.runtime import ProcessGlobal


@dataclass
class ObservabilityRuntime:
    """One configured observability plane."""

    slo: SloTracker
    extractor: SignalExtractor
    detectors: DetectorRegistry
    exporter: "SnapshotExporter | None" = None
    profiler: "SamplingProfiler | None" = None
    enabled: bool = True

    def ingest_read(self, tenant_id: str, slot: int, at: float) -> None:
        """Fold one host read into features and run the detectors."""
        stream = self.extractor.ingest(tenant_id, slot, at)
        self.detectors.evaluate(tenant_id, stream.features(), at)

    def export_snapshot(self) -> "int | None":
        """Append the live metrics snapshot; returns its seq number."""
        if self.exporter is None:
            return None
        return self.exporter.export(telemetry.metrics().snapshot())

    def snapshot(self) -> dict:
        """JSON-ready view for status outputs: SLO + ranked alerts."""
        return {"slo": self.slo.readouts(),
                "alerts": self.detectors.snapshot(ranked=True)}

    def close(self) -> None:
        """Stop the profiler and flush a final snapshot export."""
        if self.profiler is not None:
            self.profiler.stop()
        self.export_snapshot()


class _DisabledObservability:
    """Shared no-op plane handed out until something is configured."""

    enabled = False
    slo: NoopSloTracker = NOOP_SLO
    extractor = None
    detectors = None
    exporter = None
    profiler = None

    def ingest_read(self, tenant_id: str, slot: int, at: float) -> None:
        return None

    def export_snapshot(self) -> None:
        return None

    def snapshot(self) -> dict:
        return {"slo": {}, "alerts": []}

    def close(self) -> None:
        return None


NOOP_OBSERVABILITY = _DisabledObservability()

_slot: "ProcessGlobal[ObservabilityRuntime]" = \
    ProcessGlobal(NOOP_OBSERVABILITY)


def _build(export_path: "str | Path | None", slo_capacity: int,
           detectors: "DetectorRegistry | None", profile: bool,
           profile_interval_s: float) -> ObservabilityRuntime:
    runtime = ObservabilityRuntime(
        slo=SloTracker(capacity=slo_capacity),
        extractor=SignalExtractor(),
        detectors=(detectors if detectors is not None
                   else DetectorRegistry.default()),
        exporter=(SnapshotExporter(Path(export_path))
                  if export_path is not None else None),
        profiler=(SamplingProfiler(interval_s=profile_interval_s)
                  if profile else None))
    if runtime.profiler is not None:
        runtime.profiler.start()
    return runtime


def configure(export_path: "str | Path | None" = None,
              slo_capacity: int = 1024,
              detectors: "DetectorRegistry | None" = None,
              profile: bool = False,
              profile_interval_s: float = 0.05) -> ObservabilityRuntime:
    """Install a live observability plane; returns it."""
    return _slot.install(_build(export_path, slo_capacity, detectors,
                                profile, profile_interval_s))


def disable() -> None:
    """Restore the no-op plane."""
    active = _slot.active()
    if active is not NOOP_OBSERVABILITY:
        active.close()
    _slot.reset()


def enabled() -> bool:
    return _slot.enabled()


def active() -> ObservabilityRuntime:
    return _slot.active()


def session(export_path: "str | Path | None" = None,
            slo_capacity: int = 1024,
            detectors: "DetectorRegistry | None" = None,
            profile: bool = False,
            profile_interval_s: float = 0.05):
    """Scoped plane: configure, yield, close, restore the previous one."""
    return _slot.scoped(_build(export_path, slo_capacity, detectors,
                               profile, profile_interval_s),
                        on_exit=ObservabilityRuntime.close)
