"""The fleet observability plane: SLOs, attack detectors, exposition.

Layered on the telemetry runtime, three live capabilities:

- :mod:`repro.observability.slo` — sliding-window latency tracking
  with deterministic p50/p95/p99 readouts for the fleet's hot
  operations (``serve_window``, ``tick``, cache lookups, batch evals);
- :mod:`repro.observability.signals` + ``detectors`` — per-tenant
  host-read feature extraction and a pluggable detector registry that
  turns SEV-Step single-step cadences, polling bursts, and register
  rotation sweeps into a severity-ranked alert stream (detection only;
  policy reaction is a follow-up);
- :mod:`repro.observability.exposition` + ``dashboard`` — OpenMetrics
  text rendering, sequence-numbered JSONL snapshot export, and the
  ``fleet status --watch`` / ``repro top`` terminal frames.

Everything is scoped through the process-global runtime
(:mod:`repro.observability.runtime`): until configured, call sites see
the shared no-op plane and pay one attribute check.
"""

from repro.observability.dashboard import render_status_frame, render_top
from repro.observability.detectors import (
    SEVERITY_RANK,
    Alert,
    BurstPollingDetector,
    Detector,
    DetectorRegistry,
    EwmaDetector,
    RotationScanDetector,
    SingleStepCadenceDetector,
)
from repro.observability.exposition import (
    SnapshotExporter,
    metric_name,
    read_export,
    render_openmetrics,
    write_openmetrics,
)
from repro.observability.profiler import SamplingProfiler
from repro.observability.runtime import (
    NOOP_OBSERVABILITY,
    ObservabilityRuntime,
    active,
    configure,
    disable,
    enabled,
    session,
)
from repro.observability.signals import (
    DEFAULT_BURST_INTERVAL,
    SignalExtractor,
    TenantReadStream,
)
from repro.observability.slo import (
    NOOP_SLO,
    SLO_QUANTILES,
    NoopSloTracker,
    SloTracker,
    SloWindow,
)

__all__ = [
    "Alert",
    "BurstPollingDetector",
    "DEFAULT_BURST_INTERVAL",
    "Detector",
    "DetectorRegistry",
    "EwmaDetector",
    "NOOP_OBSERVABILITY",
    "NOOP_SLO",
    "NoopSloTracker",
    "ObservabilityRuntime",
    "RotationScanDetector",
    "SEVERITY_RANK",
    "SLO_QUANTILES",
    "SamplingProfiler",
    "SignalExtractor",
    "SingleStepCadenceDetector",
    "SloTracker",
    "SloWindow",
    "SnapshotExporter",
    "TenantReadStream",
    "active",
    "configure",
    "disable",
    "enabled",
    "metric_name",
    "read_export",
    "render_openmetrics",
    "render_status_frame",
    "render_top",
    "session",
    "write_openmetrics",
]
