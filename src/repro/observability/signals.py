"""Fold per-tenant host read streams into attack-signal features.

The host's only legitimate observation channel into a guest is the HPC
read path, so that is where attacks announce themselves: SEV-Step
single-steps a vCPU and reads counters at an exactly periodic cadence,
and profiling attacks poll in tight bursts that rotate across the
programmed registers. The extractor reduces each tenant's read stream
to O(1) state per tenant — no history is retained — and exposes the
features the detector registry thresholds on.

Determinism note: features are *run-local*. A "run" is a maximal chain
of reads whose inter-read intervals fall in ``(0, burst_interval]``;
any other interval (a scheduler-tick read on a coarser or different
timebase, a replay restart, a new window) resets the run. Benign
control-plane reads therefore can never extend an attack run, and the
feature trajectory during an injected attack depends only on the
attack's own reads — which is what makes alert sequences bit-identical
across load-generator concurrency levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Intervals above this are not part of a polling burst.
DEFAULT_BURST_INTERVAL = 0.01

#: Two intervals closer than this count as the same cadence period.
CADENCE_TOLERANCE = 1e-9


@dataclass
class TenantReadStream:
    """O(1) per-tenant stream state; one instance per tenant."""

    burst_interval: float = DEFAULT_BURST_INTERVAL
    total_reads: int = 0
    last_at: "float | None" = None
    last_interval: float = 0.0
    run_len: int = 0
    cadence_run: int = 0
    run_interval_sum: float = 0.0
    run_interval_min: float = math.inf
    run_interval_max: float = 0.0
    run_slot_counts: dict = field(default_factory=dict)
    _prev_interval: "float | None" = None

    def _reset_run(self, slot: int) -> None:
        self.run_len = 1
        self.cadence_run = 0
        self.run_interval_sum = 0.0
        self.run_interval_min = math.inf
        self.run_interval_max = 0.0
        self.run_slot_counts = {slot: 1}
        self._prev_interval = None

    def ingest(self, slot: int, at: float) -> None:
        """Account one host read of ``slot`` at logical time ``at``."""
        at = float(at)
        self.total_reads += 1
        if self.last_at is None:
            self.last_at = at
            self._reset_run(slot)
            return
        interval = at - self.last_at
        self.last_at = at
        self.last_interval = interval
        if not 0.0 < interval <= self.burst_interval:
            self._reset_run(slot)
            return
        self.run_len += 1
        self.run_slot_counts[slot] = self.run_slot_counts.get(slot, 0) + 1
        self.run_interval_sum += interval
        self.run_interval_min = min(self.run_interval_min, interval)
        self.run_interval_max = max(self.run_interval_max, interval)
        if self._prev_interval is not None \
                and abs(interval - self._prev_interval) <= CADENCE_TOLERANCE:
            self.cadence_run += 1
        else:
            self.cadence_run = 1
        self._prev_interval = interval

    def rotation_entropy(self) -> float:
        """Shannon entropy (bits) of the current run's slot histogram.

        0 for a single-register attack (SEV-Step pins one counter);
        log2(S) for a uniform rotation across S registers.
        """
        total = sum(self.run_slot_counts.values())
        if total <= 1:
            return 0.0
        entropy = 0.0
        for count in self.run_slot_counts.values():
            p = count / total
            entropy -= p * math.log2(p)
        return entropy

    def features(self) -> dict:
        """The feature vector the detectors threshold on."""
        intervals = self.run_len - 1
        return {
            "total_reads": self.total_reads,
            "last_interval": self.last_interval,
            "run_len": self.run_len,
            "cadence_run": self.cadence_run,
            "distinct_slots": len(self.run_slot_counts),
            "rotation_entropy": self.rotation_entropy(),
            "mean_run_interval": (self.run_interval_sum / intervals
                                  if intervals > 0 else 0.0),
            "min_run_interval": (self.run_interval_min
                                 if intervals > 0 else 0.0),
            "max_run_interval": self.run_interval_max,
        }


class SignalExtractor:
    """Per-tenant read streams, keyed by tenant id."""

    def __init__(self,
                 burst_interval: float = DEFAULT_BURST_INTERVAL) -> None:
        if burst_interval <= 0:
            raise ValueError(
                f"burst_interval must be > 0, got {burst_interval}")
        self.burst_interval = float(burst_interval)
        self._streams: dict[str, TenantReadStream] = {}

    def stream(self, tenant_id: str) -> TenantReadStream:
        stream = self._streams.get(tenant_id)
        if stream is None:
            stream = self._streams[tenant_id] = TenantReadStream(
                burst_interval=self.burst_interval)
        return stream

    def ingest(self, tenant_id: str, slot: int,
               at: float) -> TenantReadStream:
        stream = self.stream(tenant_id)
        stream.ingest(slot, at)
        return stream

    def features(self, tenant_id: str) -> dict:
        return self.stream(tenant_id).features()

    def tenants(self) -> list[str]:
        return sorted(self._streams)

    def clear(self) -> None:
        self._streams.clear()
