"""Opt-in interval sampling profiler with span attribution.

Samples the main thread's Python frame from a daemon thread and
attributes each sample to ``(innermost open span, file:function)``, so
a hot path shows up under the telemetry span that contains it without
any per-call instrumentation cost. Deliberately coarse: it answers
"which stage burns the time" for a live fleet run, not "which line" —
``cProfile`` remains the offline tool.

Off by default everywhere; the <5% telemetry-overhead gate is measured
without it, and it never runs unless explicitly enabled.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

from repro.telemetry import runtime as telemetry

#: Default sampling period (200 Hz would be intrusive; 20 Hz is not).
DEFAULT_INTERVAL_S = 0.05


class SamplingProfiler:
    """Span-attributed interval sampler for the main thread."""

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.samples: dict[tuple, int] = {}
        self.total_samples = 0
        self._target_ident = threading.main_thread().ident
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def sample_once(self, frame=None) -> "tuple | None":
        """Take one sample (injectable frame for deterministic tests)."""
        if frame is None:
            frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return None
        site = (f"{Path(frame.f_code.co_filename).name}:"
                f"{frame.f_code.co_name}")
        span = telemetry.tracer().current_span_name() or "<no-span>"
        key = (span, site)
        self.samples[key] = self.samples.get(key, 0) + 1
        self.total_samples += 1
        return key

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-profiler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def report(self, top: int = 10) -> list[dict]:
        """Heaviest sample sites, worst first (ties broken by name)."""
        ranked = sorted(self.samples.items(),
                        key=lambda item: (-item[1], item[0]))
        return [{"span": span, "site": site, "samples": count}
                for (span, site), count in ranked[:top]]
