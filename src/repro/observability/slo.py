"""Sliding-window SLO latency tracking.

ROADMAP item 4 asks for a p50/p99 read-latency objective on the fleet.
The tracker keeps one fixed-capacity ring buffer per tracked operation
(``fleet.serve_window``, ``fleet.tick``, ``cache.lookup``,
``batch.execute``), so the quantile readout always reflects the most
recent observations rather than the whole run. Every observation is
also mirrored into the telemetry metrics registry as a
latency-preset histogram (``slo.<name>.seconds``), which is what
survives the cross-process merge — the ring buffer gives exact
nearest-rank quantiles locally, the histogram gives interpolated ones
fleet-wide.
"""

from __future__ import annotations

from repro.telemetry import runtime as telemetry

#: Quantiles every readout reports.
SLO_QUANTILES = (0.5, 0.95, 0.99)

#: Default ring capacity: large enough to cover a whole smoke replay,
#: small enough that a sorted copy per readout is trivial.
DEFAULT_WINDOW = 1024


class SloWindow:
    """Fixed-capacity ring buffer of latency observations."""

    __slots__ = ("capacity", "count", "_values", "_cursor")

    def __init__(self, capacity: int = DEFAULT_WINDOW) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self._values: list[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            self._values[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity
        self.count += 1

    def values(self) -> list[float]:
        """Retained observations, oldest first."""
        return self._values[self._cursor:] + self._values[:self._cursor]

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile over the retained window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(int(-(-q * len(ordered) // 1)), 1)  # ceil, floor at 1
        return ordered[rank - 1]

    def readout(self) -> dict:
        values = self._values
        payload = {
            "count": self.count,
            "window": len(values),
            "mean": sum(values) / len(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }
        for q in SLO_QUANTILES:
            payload[f"p{int(q * 100)}"] = self.quantile(q)
        return payload


class SloTracker:
    """Named SLO windows plus the metrics-histogram mirror."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_WINDOW,
                 mirror_metrics: bool = True) -> None:
        self.capacity = int(capacity)
        self.mirror_metrics = mirror_metrics
        self._windows: dict[str, SloWindow] = {}

    def window(self, name: str) -> SloWindow:
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = SloWindow(self.capacity)
        return window

    def observe(self, name: str, seconds: float) -> None:
        self.window(name).observe(seconds)
        if self.mirror_metrics:
            registry = telemetry.metrics()
            if registry.enabled:
                registry.histogram(f"slo.{name}.seconds",
                                   "latency").observe(seconds)

    def names(self) -> list[str]:
        return sorted(self._windows)

    def readout(self, name: str) -> dict:
        return self.window(name).readout()

    def readouts(self) -> dict:
        """Every tracked operation's readout, name-sorted."""
        return {name: self._windows[name].readout()
                for name in sorted(self._windows)}

    def export_values(self) -> "dict[str, list[float]]":
        """Raw retained observations per window, oldest first.

        This is what crosses a process boundary: shard workers export
        their windows and the fleet supervisor merges them with
        :func:`merge_values` into fleet-wide quantiles — exact over the
        union of retained samples, not an average of averages.
        """
        return {name: self._windows[name].values()
                for name in sorted(self._windows)}

    def clear(self) -> None:
        self._windows.clear()


class NoopSloTracker:
    """Disabled tracker: observations vanish, readouts are empty."""

    enabled = False

    def window(self, name: str) -> SloWindow:
        raise RuntimeError("observability is disabled; no SLO windows")

    def observe(self, name: str, seconds: float) -> None:
        return None

    def names(self) -> list[str]:
        return []

    def readout(self, name: str) -> dict:
        return {"count": 0, "window": 0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def readouts(self) -> dict:
        return {}

    def clear(self) -> None:
        return None


NOOP_SLO = NoopSloTracker()


def merge_values(exports: "list[dict[str, list[float]]]",
                 capacity: "int | None" = None) -> dict:
    """Merge per-shard :meth:`SloTracker.export_values` payloads into
    fleet-wide readouts.

    Every shard's retained observations for one operation pour into a
    single window (sized to hold them all unless ``capacity`` caps it),
    so the resulting p50/p95/p99 are exact nearest-rank quantiles over
    the union — the fleet-level latency objective, not a mean of
    per-shard quantiles (which would be statistically meaningless).
    """
    pooled: dict[str, list[float]] = {}
    for export in exports:
        for name, values in export.items():
            pooled.setdefault(name, []).extend(values)
    merged = {}
    for name in sorted(pooled):
        values = pooled[name]
        window = SloWindow(capacity if capacity is not None
                           else max(1, len(values)))
        for value in values:
            window.observe(value)
        merged[name] = window.readout()
    return merged
