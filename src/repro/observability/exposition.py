"""Exposition: OpenMetrics text rendering and JSONL snapshot export.

Two deterministic serializations of a metrics snapshot:

- :func:`render_openmetrics` produces the OpenMetrics text format
  (counter ``_total`` samples, cumulative ``_bucket{le=...}`` series,
  ``# EOF`` terminator) so any Prometheus-compatible scraper can read
  a run's metrics straight off disk;
- :class:`SnapshotExporter` appends numbered snapshots to a JSONL
  file. Sequence numbers start at 0 and increment per export, so two
  identical runs produce byte-identical export files apart from the
  metric values themselves — and bit-identical ones when the metrics
  are deterministic too.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize a registry name into an OpenMetrics metric name."""
    name = _NAME_SANITIZER.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(snapshot: dict) -> str:
    """The OpenMetrics text exposition of one metrics snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        sample = metric_name(name)
        lines.append(f"# TYPE {sample} counter")
        lines.append(
            f"{sample}_total {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        sample = metric_name(name)
        lines.append(f"# TYPE {sample} gauge")
        lines.append(f"{sample} {_fmt(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        sample = metric_name(name)
        lines.append(f"# TYPE {sample} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += int(count)
            lines.append(
                f'{sample}_bucket{{le="{float(bound):g}"}} {cumulative}')
        cumulative += int(payload["counts"][len(payload["bounds"])])
        lines.append(f'{sample}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{sample}_sum {_fmt(payload['total'])}")
        lines.append(f"{sample}_count {int(payload['count'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(snapshot: dict, path: "str | Path") -> Path:
    """Atomically write the OpenMetrics exposition to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(render_openmetrics(snapshot), encoding="utf-8")
    os.replace(tmp, path)
    return path


class SnapshotExporter:
    """Appends numbered metric snapshots to a JSONL file."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.seq = 0

    def export(self, snapshot: dict) -> int:
        """Append one snapshot; returns its sequence number."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"seq": self.seq, "metrics": snapshot},
                          sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        seq = self.seq
        self.seq += 1
        return seq


def read_export(path: "str | Path") -> list[dict]:
    """Parse a snapshot export file back into its records."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
