"""Pluggable attack-signal detectors over host-read features.

"Fight Hardware with Hardware" classifies attacks from counter
behaviour itself; here the defended side does the mirror image,
classifying the *host's read behaviour* against known attack
signatures. Detection only: alerts are recorded (metrics via the
ε-ledger, a ranked in-memory stream, the status snapshot) but policy
reaction is deliberately left to a follow-up change.

Alert emission is rising-edge: a detector that stays above threshold
across consecutive reads produces one alert, and re-arms only after
its condition clears (which run-local features guarantee at every
burst boundary). Sequence numbers are assigned in emission order, so
for a deterministic read stream the full alert sequence — numbers,
severities, scores — is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry import runtime as telemetry

#: Severity sort order, worst first.
SEVERITY_RANK = {"critical": 3, "high": 2, "medium": 1, "low": 0}


@dataclass(frozen=True)
class Alert:
    """One emitted detection, fingerprintable for replay comparison."""

    seq: int
    tenant_id: str
    detector: str
    severity: str
    score: float
    detail: str
    at: float

    def fingerprint(self) -> tuple:
        return (self.seq, self.tenant_id, self.detector, self.severity,
                round(self.score, 12))

    def to_dict(self) -> dict:
        return {"seq": self.seq, "tenant_id": self.tenant_id,
                "detector": self.detector, "severity": self.severity,
                "score": self.score, "detail": self.detail, "at": self.at}


class Detector:
    """Base detector: a named, severity-tagged feature threshold."""

    name = "detector"
    severity = "low"

    def evaluate(self, tenant_id: str,
                 features: dict) -> "tuple[float, str] | None":
        """``(score, detail)`` when firing, ``None`` otherwise."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop any per-tenant state (stateless detectors: no-op)."""
        return None


class SingleStepCadenceDetector(Detector):
    """SEV-Step signature: long, exactly periodic single-register reads.

    Single-stepping reads the same counter once per instruction-step
    at machine-regular cadence — many consecutive equal intervals,
    sub-burst latency, near-zero register rotation.
    """

    name = "single-step-cadence"
    severity = "critical"

    def __init__(self, min_cadence_run: int = 24,
                 max_interval: float = 0.005,
                 max_entropy: float = 0.5) -> None:
        self.min_cadence_run = int(min_cadence_run)
        self.max_interval = float(max_interval)
        self.max_entropy = float(max_entropy)

    def evaluate(self, tenant_id: str,
                 features: dict) -> "tuple[float, str] | None":
        if features["cadence_run"] >= self.min_cadence_run \
                and 0.0 < features["last_interval"] <= self.max_interval \
                and features["rotation_entropy"] <= self.max_entropy:
            return (features["last_interval"],
                    f"{features['cadence_run']} equal intervals of "
                    f"{features['last_interval']:.6f}s on "
                    f"{features['distinct_slots']} register(s)")
        return None


class BurstPollingDetector(Detector):
    """Profiling signature: a long multi-register polling burst."""

    name = "burst-polling"
    severity = "high"

    def __init__(self, min_run: int = 32, min_slots: int = 2) -> None:
        self.min_run = int(min_run)
        self.min_slots = int(min_slots)

    def evaluate(self, tenant_id: str,
                 features: dict) -> "tuple[float, str] | None":
        if features["run_len"] >= self.min_run \
                and features["distinct_slots"] >= self.min_slots:
            return (features["mean_run_interval"],
                    f"burst of {features['run_len']} reads across "
                    f"{features['distinct_slots']} registers, mean "
                    f"interval {features['mean_run_interval']:.6f}s")
        return None


class RotationScanDetector(Detector):
    """Sweep signature: a burst rotating uniformly over registers."""

    name = "register-rotation"
    severity = "medium"

    def __init__(self, min_run: int = 32,
                 min_entropy: float = 1.5) -> None:
        self.min_run = int(min_run)
        self.min_entropy = float(min_entropy)

    def evaluate(self, tenant_id: str,
                 features: dict) -> "tuple[float, str] | None":
        if features["run_len"] >= self.min_run \
                and features["rotation_entropy"] >= self.min_entropy:
            return (features["rotation_entropy"],
                    f"rotation entropy "
                    f"{features['rotation_entropy']:.3f} bits over "
                    f"{features['distinct_slots']} registers")
        return None


class EwmaDetector(Detector):
    """Adaptive read-rate detector (pluggable, not in the defaults).

    Tracks an exponentially weighted moving average of each tenant's
    inter-read interval; fires when the smoothed interval collapses
    below a floor. Its state spans run boundaries, so it trades the
    bit-identity guarantee of the default threshold detectors for
    sensitivity to slow drifts — register it explicitly when that
    trade is wanted.
    """

    name = "ewma-interval"
    severity = "low"

    def __init__(self, alpha: float = 0.2, floor: float = 0.002,
                 min_reads: int = 16) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.floor = float(floor)
        self.min_reads = int(min_reads)
        self._ewma: dict[str, float] = {}

    def evaluate(self, tenant_id: str,
                 features: dict) -> "tuple[float, str] | None":
        interval = features["last_interval"]
        if interval <= 0.0:
            return None
        previous = self._ewma.get(tenant_id)
        ewma = interval if previous is None \
            else self.alpha * interval + (1.0 - self.alpha) * previous
        self._ewma[tenant_id] = ewma
        if features["total_reads"] >= self.min_reads \
                and ewma <= self.floor:
            return (ewma, f"EWMA inter-read interval {ewma:.6f}s "
                          f"below {self.floor:.6f}s floor")
        return None

    def clear(self) -> None:
        self._ewma.clear()


class DetectorRegistry:
    """Evaluates registered detectors into a ranked alert stream."""

    def __init__(self, detectors: "list[Detector] | None" = None) -> None:
        self.detectors: list[Detector] = list(detectors or [])
        self._alerts: list[Alert] = []
        self._active: dict[tuple, bool] = {}
        self._seq = 0

    @classmethod
    def default(cls) -> "DetectorRegistry":
        """The pinned default panel (deterministic detectors only)."""
        return cls([SingleStepCadenceDetector(), BurstPollingDetector(),
                    RotationScanDetector()])

    def register(self, detector: Detector) -> Detector:
        self.detectors.append(detector)
        return detector

    def evaluate(self, tenant_id: str, features: dict,
                 at: float) -> list[Alert]:
        """Run every detector; emit rising-edge alerts."""
        emitted: list[Alert] = []
        for detector in self.detectors:
            verdict = detector.evaluate(tenant_id, features)
            key = (tenant_id, detector.name)
            if verdict is None:
                self._active[key] = False
                continue
            if self._active.get(key):
                continue
            self._active[key] = True
            score, detail = verdict
            alert = Alert(seq=self._seq, tenant_id=tenant_id,
                          detector=detector.name,
                          severity=detector.severity,
                          score=float(score), detail=detail,
                          at=float(at))
            self._seq += 1
            self._alerts.append(alert)
            telemetry.ledger().record_alert(detector.name, tenant_id,
                                            detector.severity)
            emitted.append(alert)
        return emitted

    def alerts(self, ranked: bool = False) -> list[Alert]:
        """Emission-ordered by default; ``ranked`` puts worst first."""
        if not ranked:
            return list(self._alerts)
        return sorted(self._alerts,
                      key=lambda a: (-SEVERITY_RANK.get(a.severity, -1),
                                     a.seq))

    def counts(self) -> dict:
        """Alert totals per detector name, name-sorted."""
        totals: dict[str, int] = {}
        for alert in self._alerts:
            totals[alert.detector] = totals.get(alert.detector, 0) + 1
        return {name: totals[name] for name in sorted(totals)}

    def snapshot(self, ranked: bool = True) -> list[dict]:
        return [alert.to_dict() for alert in self.alerts(ranked=ranked)]

    def clear(self) -> None:
        self._alerts.clear()
        self._active.clear()
        self._seq = 0
        for detector in self.detectors:
            detector.clear()
