"""Terminal dashboards: fleet status frames and ``repro top``.

Pure functions from snapshots to text, so the ``--watch`` loop and the
tests share one renderer and a frame is reproducible from its inputs.
"""

from __future__ import annotations

from repro.analysis.ascii_chart import bar_chart
from repro.telemetry.metrics import histogram_quantile

#: Counter namespaces the ``top`` panel hides (rendered elsewhere).
_TOP_HIDDEN_PREFIXES = ("privacy.", "obs.alert")


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _slo_lines(slo: dict) -> list[str]:
    lines = []
    width = max((len(name) for name in slo), default=0)
    for name in sorted(slo):
        readout = slo[name]
        lines.append(
            f"{name:<{width}s}  p50 {_fmt_ms(readout['p50'])}  "
            f"p95 {_fmt_ms(readout['p95'])}  "
            f"p99 {_fmt_ms(readout['p99'])}  "
            f"(n={readout['count']})")
    return lines


def _alert_lines(alerts: list, limit: int = 5) -> list[str]:
    lines = []
    for alert in alerts[:limit]:
        lines.append(
            f"[{alert['severity']:>8s}] #{alert['seq']} "
            f"{alert['detector']} tenant={alert['tenant_id']} "
            f"score={alert['score']:.6g} — {alert['detail']}")
    if len(alerts) > limit:
        lines.append(f"... {len(alerts) - limit} more")
    return lines


def render_status_frame(status: dict,
                        frame: "int | None" = None) -> str:
    """One ``fleet status`` frame from a control-plane snapshot."""
    title = f"# Fleet status — tick {status.get('ticks', 0)}"
    if frame is not None:
        title += f" (frame {frame})"
    lines = [title]
    health = status.get("health")
    summary = (f"windows: {status.get('admitted_windows', 0)} admitted, "
               f"{status.get('rejected_windows', 0)} rejected")
    if health is not None:
        summary += " | health: " + ("OK" if health.get("healthy")
                                    else "DEGRADED")
    lines.append(summary)
    if health is not None:
        for reason in health.get("reasons", []):
            lines.append(f"  !! {reason}")
    tenants = status.get("tenants", {})
    if tenants:
        rows = [("tenant", "workload", "buffer", "windows", "slices",
                 "hpc", "beat", "restarts", "stalls")]
        for tenant_id in sorted(tenants):
            tenant = tenants[tenant_id]
            rows.append((
                tenant_id, tenant["workload"],
                f"{tenant['buffer_available']}/{tenant['buffer_capacity']}",
                str(tenant["windows_served"]),
                str(tenant["slices_served"]),
                str(tenant["hpc_reads"]),
                str(tenant["daemon_heartbeat"]),
                str(tenant["daemon_restarts"]),
                str(tenant["provision_stalls"])))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines.append("")
        for row in rows:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths))
                         .rstrip())
    observability = status.get("observability")
    if observability is not None:
        slo = observability.get("slo", {})
        if slo:
            lines.append("")
            lines.append("## SLO latency")
            lines.extend(_slo_lines(slo))
        alerts = observability.get("alerts", [])
        lines.append("")
        lines.append(f"## Alerts ({len(alerts)})")
        if alerts:
            lines.extend(_alert_lines(alerts))
        else:
            lines.append("(none)")
    defense = status.get("defense")
    if defense is not None:
        states = defense.get("states", {})
        lines.append("")
        lines.append("## Defense ("
                     + defense.get("profile", {}).get("name", "?") + ")")
        lines.append("  ".join(f"{state}={count}"
                               for state, count in states.items())
                     + f"  faults={defense.get('policy_faults', 0)}")
        for tenant_id, row in sorted(defense.get("tenants", {}).items()):
            if row["state"] == "NORMAL" and not row["transitions"]:
                continue
            lines.append(
                f"[{row['state']:>11s}] {tenant_id} "
                f"alerts={row['alerts_seen']} "
                f"transitions={len(row['transitions'])} "
                f"quarantined={row['quarantined_windows']}"
                + (" FAULT-FORCED" if row.get("fault_forced") else ""))
    return "\n".join(lines).rstrip() + "\n"


def render_top(snapshot: dict, alerts: "list[dict] | None" = None,
               profile: "list[dict] | None" = None,
               top: int = 8) -> str:
    """A ``repro top`` frame from a metrics snapshot.

    SLO quantiles come from the merged ``slo.*.seconds`` histograms
    (interpolated, so the panel works across process boundaries), the
    busiest-counter chart from everything not already shown elsewhere.
    """
    lines = ["# repro top"]
    histograms = snapshot.get("histograms", {})
    slo = {
        name[len("slo."):-len(".seconds")]: {
            "p50": histogram_quantile(payload, 0.5),
            "p95": histogram_quantile(payload, 0.95),
            "p99": histogram_quantile(payload, 0.99),
            "count": int(payload["count"]),
        }
        for name, payload in histograms.items()
        if name.startswith("slo.") and name.endswith(".seconds")
        and payload["count"]}
    if slo:
        lines.append("")
        lines.append("## SLO latency")
        lines.extend(_slo_lines(slo))
    counters = {name: value
                for name, value in snapshot.get("counters", {}).items()
                if not name.startswith(_TOP_HIDDEN_PREFIXES) and value}
    if counters:
        busiest = sorted(counters.items(),
                         key=lambda item: (-item[1], item[0]))[:top]
        lines.append("")
        lines.append("## Busiest counters")
        lines.append(bar_chart([(name, value)
                                for name, value in busiest]))
    alert_count = snapshot.get("counters", {}).get("obs.alerts", 0)
    if alert_count or alerts:
        lines.append("")
        lines.append(f"## Alerts ({int(alert_count or len(alerts))})")
        if alerts:
            lines.extend(_alert_lines(alerts))
    if profile:
        lines.append("")
        lines.append("## Profile (sampled)")
        width = max(len(entry["span"]) for entry in profile)
        for entry in profile:
            lines.append(f"{entry['span']:<{width}s}  "
                         f"{entry['site']}  x{entry['samples']}")
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines).rstrip() + "\n"
