"""Counters, gauges, and fixed-bucket histograms.

Cheap enough to leave on in hot paths: instruments are plain attribute
updates behind a memoized name lookup, and the disabled registry hands
back shared no-op singletons so instrumented code needs no ``if``
guards. Snapshots are plain dicts; :func:`merge_snapshots` is the
deterministic cross-process reduction (counters and histogram buckets
sum, gauges take the maximum — both associative and commutative, so the
merge is invariant to worker count and completion order).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

#: Default histogram bucket upper bounds (last bucket is +inf overflow).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   50.0, 100.0)

#: Latency-tuned bounds: ``serve_window`` and friends complete in tens
#: of microseconds to single-digit milliseconds, where DEFAULT_BUCKETS
#: collapses everything into its first two buckets. Roughly
#: 1-2.5-5 per decade from 1 µs to 1 s.
LATENCY_BUCKETS = (1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
                   1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
                   1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0)

#: Named bound presets accepted wherever ``bounds`` is: callers across
#: processes that name the same preset get byte-identical bounds, so
#: the cross-process bucket reduction in :func:`merge_snapshots` never
#: sees a mismatch.
BUCKET_PRESETS = {"default": DEFAULT_BUCKETS, "latency": LATENCY_BUCKETS}


def resolve_bounds(bounds: "Iterable[float] | str") -> tuple:
    """Bucket bounds for ``bounds`` (a preset name or an iterable)."""
    if isinstance(bounds, str):
        try:
            return BUCKET_PRESETS[bounds]
        except KeyError as exc:
            raise ValueError(
                f"unknown bucket preset {bounds!r}; choose from "
                f"{sorted(BUCKET_PRESETS)}") from exc
    return tuple(float(b) for b in bounds)


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bounds`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self,
                 bounds: "Iterable[float] | str" = DEFAULT_BUCKETS) -> None:
        bounds = resolve_bounds(bounds)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NoopInstrument:
    """Shared disabled counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    total = 0.0
    count = 0
    mean = 0.0
    bounds: tuple = ()
    counts: list = []

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NOOP_INSTRUMENT = _NoopInstrument()


class MetricsRegistry:
    """Named instruments, memoized by name."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str,
                  bounds: "Iterable[float] | str" = DEFAULT_BUCKETS
                  ) -> Histogram:
        bounds = resolve_bounds(bounds)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        elif instrument.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, requested {bounds}")
        return instrument

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, keys sorted."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {"bounds": list(h.bounds), "counts": list(h.counts),
                       "total": h.total, "count": h.count}
                for name, h in sorted(self._histograms.items())},
        }

    def write(self, path: "str | Path") -> Path:
        """Atomically export the snapshot as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
        return path


class NoopMetricsRegistry:
    """Disabled registry: every lookup returns the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def histogram(self, name: str,
                  bounds: "Iterable[float] | str" = DEFAULT_BUCKETS
                  ) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def clear(self) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_METRICS = NoopMetricsRegistry()


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Deterministically reduce metric snapshots from many processes.

    Counters and histogram bucket counts sum; gauges take the maximum.
    Both reductions are associative and commutative, so the result is
    independent of process count and merge order.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in snapshot.get("gauges", {}).items():
            value = float(value)
            gauges[name] = max(gauges.get(name, value), value)
        for name, payload in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(payload["bounds"]),
                    "counts": list(payload["counts"]),
                    "total": float(payload["total"]),
                    "count": int(payload["count"])}
                continue
            if merged["bounds"] != list(payload["bounds"]):
                raise ValueError(
                    f"histogram {name!r} has mismatched bucket bounds")
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], payload["counts"])]
            merged["total"] += float(payload["total"])
            merged["count"] += int(payload["count"])
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


def histogram_quantile(payload: dict, q: float) -> float:
    """Estimate quantile ``q`` from a snapshot histogram payload.

    Prometheus-style linear interpolation inside the bucket that holds
    the target rank. Observations in the overflow bucket clamp to the
    last finite bound. Deterministic for a given payload.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    bounds = list(payload["bounds"])
    counts = list(payload["counts"])
    count = int(payload["count"])
    if count == 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative < rank:
            continue
        if i >= len(bounds):  # overflow: no upper edge to interpolate to
            return float(bounds[-1])
        lo = bounds[i - 1] if i else 0.0
        hi = bounds[i]
        return lo + (hi - lo) * ((rank - previous) / bucket_count)
    return float(bounds[-1])


def read_snapshot(path: "str | Path") -> dict:
    """Load a metrics snapshot JSON file."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
