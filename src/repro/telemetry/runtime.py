"""Process-global telemetry runtime.

Instrumented library code never owns a tracer: it asks this module for
the process-global one (:func:`tracer`, :func:`metrics`,
:func:`ledger`). Until :func:`configure` is called those accessors hand
back shared no-op singletons, so instrumentation costs one function
call and a dict miss on the disabled path — cheap enough to leave on in
hot loops.

:func:`session` scopes a configuration: campaign workers open a
per-shard session (``process="shard-00003"``) around each shard so its
spans and metrics land in shard-owned files that the parent merges
deterministically (:mod:`repro.telemetry.aggregate`), then the previous
runtime — the parent's, under fork — is restored. The global slot is a
:class:`repro.utils.runtime.ProcessGlobal`, the helper all four
runtime modules (telemetry, cache, resilience, fleet) share.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.ledger import NOOP_LEDGER, PrivacyLedger
from repro.telemetry.metrics import (
    NOOP_METRICS,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.telemetry.spans import NOOP_TRACER, NoopTracer, Tracer
from repro.utils.runtime import ProcessGlobal


@dataclass
class TelemetryRuntime:
    """One configured (tracer, metrics, ledger) triple."""

    tracer: "Tracer | NoopTracer"
    metrics: "MetricsRegistry | NoopMetricsRegistry"
    ledger: "PrivacyLedger | object"
    trace_dir: "Path | None"
    process: str

    def flush(self) -> "list[Path]":
        """Write this process's trace + metrics files under trace_dir."""
        if self.trace_dir is None:
            return []
        written = []
        if isinstance(self.tracer, Tracer):
            written.append(self.tracer.write(
                self.trace_dir / f"trace-{self.process}.jsonl"))
        if isinstance(self.metrics, MetricsRegistry):
            written.append(self.metrics.write(
                self.trace_dir / f"metrics-{self.process}.json"))
        return written


_DISABLED = TelemetryRuntime(tracer=NOOP_TRACER, metrics=NOOP_METRICS,
                             ledger=NOOP_LEDGER, trace_dir=None,
                             process="noop")

_slot: "ProcessGlobal[TelemetryRuntime]" = ProcessGlobal(_DISABLED)


def _build(trace_dir: "str | Path | None", metrics_enabled: bool,
           process: str) -> TelemetryRuntime:
    registry = MetricsRegistry() if metrics_enabled else NOOP_METRICS
    return TelemetryRuntime(
        tracer=Tracer(process=process),
        metrics=registry,
        ledger=(PrivacyLedger(registry) if metrics_enabled else NOOP_LEDGER),
        trace_dir=(Path(trace_dir) if trace_dir is not None else None),
        process=process)


def configure(trace_dir: "str | Path | None" = None,
              metrics_enabled: bool = True,
              process: str = "main") -> TelemetryRuntime:
    """Install a live runtime; returns it.

    ``trace_dir=None`` keeps everything in memory (still queryable via
    the accessors); with a directory, :func:`flush` exports
    ``trace-<process>.jsonl`` and ``metrics-<process>.json``.
    """
    return _slot.install(_build(trace_dir, metrics_enabled, process))


def disable() -> None:
    """Restore the no-op runtime."""
    _slot.reset()


def enabled() -> bool:
    return _slot.enabled()


def active() -> TelemetryRuntime:
    return _slot.active()


def tracer() -> "Tracer | NoopTracer":
    return _slot.active().tracer


def metrics() -> "MetricsRegistry | NoopMetricsRegistry":
    return _slot.active().metrics


def ledger():
    return _slot.active().ledger


def trace_dir() -> "Path | None":
    return _slot.active().trace_dir


def flush() -> "list[Path]":
    """Export the active runtime's files (no-op when disabled)."""
    return _slot.active().flush()


def session(trace_dir: "str | Path | None" = None,
            metrics_enabled: bool = True, process: str = "main"):
    """Scoped runtime: configure, yield, flush, restore the previous one.

    Flushing happens even when the body raises, so a crashed stage still
    leaves its partial telemetry on disk for post-mortems.
    """
    return _slot.scoped(_build(trace_dir, metrics_enabled, process),
                        on_exit=TelemetryRuntime.flush)
