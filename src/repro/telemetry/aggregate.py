"""Deterministic cross-process merge of a run's telemetry files.

A traced run leaves one ``trace-<process>.jsonl`` and one
``metrics-<process>.json`` per participating process under the trace
directory — ``main`` for the parent, ``shard-NNNNN`` for each campaign
shard (whether it ran in-process or on a pool worker). The merge is a
pure function of those files: spans are ordered by (process class,
process name, span id) and metrics are reduced with the commutative
rules of :func:`repro.telemetry.metrics.merge_snapshots`, so a
1-worker and an N-worker campaign produce the identical merged report
apart from wall-clock values.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.ledger import epsilon_summary
from repro.telemetry.metrics import merge_snapshots, read_snapshot
from repro.telemetry.spans import SpanRecord, read_spans

#: Merged artifact names (deliberately outside the per-process globs).
MERGED_TRACE = "trace.jsonl"
MERGED_METRICS = "metrics.json"


def _process_sort_key(process: str) -> tuple:
    """main first, then shards in index order, then anything else."""
    if process == "main":
        return (0, "")
    if process.startswith("shard-"):
        return (1, process)
    return (2, process)


def per_process_trace_files(trace_dir: "str | Path") -> list[Path]:
    return sorted(Path(trace_dir).glob("trace-*.jsonl"),
                  key=lambda p: _process_sort_key(p.stem[len("trace-"):]))


def per_process_metric_files(trace_dir: "str | Path") -> list[Path]:
    return sorted(Path(trace_dir).glob("metrics-*.json"),
                  key=lambda p: _process_sort_key(p.stem[len("metrics-"):]))


@dataclass
class RunTelemetry:
    """The merged telemetry of one run."""

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def structural_key(self) -> tuple:
        """Deterministic view: span structure + metrics, no wall times."""
        return (tuple(span.structural_key() for span in self.spans),
                json.dumps(self.metrics, sort_keys=True))

    # -- queries over the merged run ---------------------------------

    def stage_seconds(self) -> "dict[str, float]":
        """Wall seconds of the main process's top-level spans."""
        stages: dict[str, float] = {}
        for span in self.spans:
            if span.process == "main" and span.parent_id is None:
                stages[span.name] = stages.get(span.name, 0.0) \
                    + span.duration_s
        return stages

    def shard_spans(self) -> list[SpanRecord]:
        """The per-shard screening spans, in shard order."""
        shards = [span for span in self.spans
                  if span.name == "fuzz.screen_shard"]
        return sorted(shards, key=lambda s: s.attrs.get("shard", -1))

    def shard_seconds(self) -> list[float]:
        return [span.duration_s for span in self.shard_spans()]

    def epsilon(self) -> dict:
        """Composed privacy guarantee recorded by the ε-ledger."""
        return epsilon_summary(self.metrics)

    def span_counts(self) -> "dict[str, int]":
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts


def merge_run(trace_dir: "str | Path", write: bool = True) -> RunTelemetry:
    """Merge every per-process telemetry file under ``trace_dir``.

    With ``write=True`` the merged artifacts are persisted as
    ``trace.jsonl`` and ``metrics.json`` in the same directory
    (atomically, so a crashed merge never leaves half a report).
    """
    trace_dir = Path(trace_dir)
    spans: list[SpanRecord] = []
    for path in per_process_trace_files(trace_dir):
        spans.extend(read_spans(path))
    spans.sort(key=lambda s: (_process_sort_key(s.process), s.span_id))
    snapshots = [read_snapshot(path)
                 for path in per_process_metric_files(trace_dir)]
    merged = RunTelemetry(spans=spans, metrics=merge_snapshots(snapshots))
    if write:
        trace_path = trace_dir / MERGED_TRACE
        tmp = trace_path.with_suffix(".jsonl.tmp")
        tmp.write_text(
            "".join(json.dumps(s.to_dict()) + "\n" for s in spans),
            encoding="utf-8")
        os.replace(tmp, trace_path)
        metrics_path = trace_dir / MERGED_METRICS
        tmp = metrics_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(merged.metrics, indent=2, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, metrics_path)
    return merged


def load_run(trace_dir: "str | Path") -> RunTelemetry:
    """Load a previously merged run (re-merging if artifacts are absent)."""
    trace_dir = Path(trace_dir)
    trace_path = trace_dir / MERGED_TRACE
    metrics_path = trace_dir / MERGED_METRICS
    if not trace_path.exists() or not metrics_path.exists():
        return merge_run(trace_dir, write=False)
    return RunTelemetry(spans=read_spans(trace_path),
                        metrics=read_snapshot(metrics_path))
