"""Span-based tracing with nested spans and JSONL export.

A :class:`Tracer` records *spans* — named, attributed intervals measured
with the monotonic clock — in a parent/child tree::

    with tracer.span("fuzz.screen_shard", shard=3):
        with tracer.span("fuzz.measure"):
            ...

Span ids are assigned in start order, so the *structure* of a trace
(names, ids, parents, attributes) is deterministic for a deterministic
program even though durations are not. The disabled path is a shared
no-op context manager: zero allocation, safe to leave in hot paths.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

#: Span fields that carry wall-clock measurements (non-deterministic).
TIMING_FIELDS = ("start_s", "duration_s")


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    span_id: int
    parent_id: "int | None"
    process: str
    start_s: float
    duration_s: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(name=payload["name"], span_id=int(payload["span_id"]),
                   parent_id=(None if payload["parent_id"] is None
                              else int(payload["parent_id"])),
                   process=payload["process"],
                   start_s=float(payload["start_s"]),
                   duration_s=float(payload["duration_s"]),
                   status=payload.get("status", "ok"),
                   attrs=dict(payload.get("attrs", {})))

    def structural_key(self) -> tuple:
        """Everything deterministic about the span (no wall times)."""
        return (self.process, self.span_id, self.parent_id, self.name,
                self.status, tuple(sorted(self.attrs.items())))


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent_id",
                 "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._span_id = tracer._next_id
        tracer._next_id += 1
        self._parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._span_id)
        tracer._name_stack.append(self._name)
        self._start = tracer._clock()
        return self

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered while the span runs."""
        self._attrs[key] = value

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer._name_stack.pop()
        tracer._records.append(SpanRecord(
            name=self._name, span_id=self._span_id,
            parent_id=self._parent_id, process=tracer.process,
            start_s=self._start - tracer._epoch,
            duration_s=end - self._start,
            status="error" if exc_type is not None else "ok",
            attrs=self._attrs))


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested spans for one process.

    Parameters
    ----------
    process:
        Label identifying the emitting process in merged traces
        (``"main"``, ``"shard-00003"``, ...).
    clock:
        Monotonic time source (injectable for tests).
    """

    enabled = True

    def __init__(self, process: str = "main",
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.process = process
        self._clock = clock
        self._epoch = clock()
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._name_stack: list[str] = []
        self._next_id = 0

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def current_span_name(self) -> "str | None":
        """Name of the innermost open span, for sample attribution."""
        return self._name_stack[-1] if self._name_stack else None

    def records(self) -> list[SpanRecord]:
        """Finished spans sorted in start order."""
        return sorted(self._records, key=lambda r: r.span_id)

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._name_stack.clear()
        self._next_id = 0

    def to_jsonl(self) -> str:
        """One JSON object per finished span, start-ordered."""
        return "".join(json.dumps(r.to_dict()) + "\n"
                       for r in self.records())

    def write(self, path: "str | Path") -> Path:
        """Atomically export the trace as a JSONL file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(self.to_jsonl(), encoding="utf-8")
        os.replace(tmp, path)
        return path


class NoopTracer:
    """Disabled tracer: ``span`` hands back one shared no-op object."""

    enabled = False
    process = "noop"

    def span(self, name: str, **attrs) -> _NoopSpan:
        return NOOP_SPAN

    def current_span_name(self) -> "str | None":
        return None

    def records(self) -> list[SpanRecord]:
        return []

    def clear(self) -> None:
        return None

    def to_jsonl(self) -> str:
        return ""


NOOP_TRACER = NoopTracer()


def read_spans(path: "str | Path") -> list[SpanRecord]:
    """Parse a JSONL trace file back into span records."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records
