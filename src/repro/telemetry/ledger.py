"""The ε-ledger: live privacy-budget accounting as metrics.

Every noise release recorded by a
:class:`~repro.core.obfuscator.budget.PrivacyAccountant` is mirrored
into the metrics registry, so the composed (sequential + advanced)
guarantee of everything released so far is queryable mid-run — from the
live registry, from a per-process snapshot file, or from the merged run
report.

Metric names (the ``privacy.`` namespace):

- ``privacy.slices_released`` (counter) — total released slices.
- ``privacy.windows`` (counter) — obfuscated monitoring windows.
- ``privacy.per_slice_epsilon`` (gauge) — ε of each slice's release.
- ``privacy.epsilon_basic`` (gauge) — sequential composition T·ε.
- ``privacy.epsilon_advanced`` (gauge) — advanced composition bound.
- ``privacy.epsilon_spent`` (gauge) — the tighter of the two.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.obfuscator.budget import PrivacyAccountant

#: Gauge names the ledger maintains, in render order.
LEDGER_GAUGES = ("privacy.per_slice_epsilon", "privacy.epsilon_basic",
                 "privacy.epsilon_advanced", "privacy.epsilon_spent")

#: Numeric severity levels for the ``obs.tenant.<id>.last_severity``
#: gauge (max-merged across processes, so higher must mean worse).
_SEVERITY_LEVELS = {"low": 1, "medium": 2, "high": 3, "critical": 4}


class PrivacyLedger:
    """Mirrors accountant state into a metrics registry."""

    enabled = True

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def record_release(self, accountant: "PrivacyAccountant",
                       slices: int) -> None:
        """Account ``slices`` fresh releases already recorded on
        ``accountant`` and refresh the composed-guarantee gauges."""
        registry = self._registry
        registry.counter("privacy.slices_released").inc(slices)
        registry.counter("privacy.windows").inc()
        self.sync(accountant)

    def record_stall(self, slices: int = 1) -> None:
        """A fail-closed stall: ``slices`` were requested but withheld.

        A stalled release spends no budget and leaks no value, so the
        composed guarantee is unchanged — the counter exists so chaos
        runs can prove exhaustion never turned into an un-noised
        emission.
        """
        self._registry.counter("privacy.stalled_slices").inc(slices)

    def sync(self, accountant: "PrivacyAccountant") -> None:
        """Refresh the gauges from the accountant's current state."""
        registry = self._registry
        registry.gauge("privacy.per_slice_epsilon").set(
            accountant.per_slice_epsilon)
        registry.gauge("privacy.epsilon_basic").set(
            accountant.basic_epsilon)
        registry.gauge("privacy.epsilon_advanced").set(
            accountant.advanced_epsilon)
        registry.gauge("privacy.epsilon_spent").set(
            accountant.tightest_epsilon)

    def sync_tenant(self, tenant_id: str,
                    accountant: "PrivacyAccountant") -> None:
        """Refresh one fleet tenant's budget gauges.

        Per-tenant names live under ``privacy.tenant.<id>.*`` next to
        the fleet-wide aggregates, so a run report can state each
        tenant's composed guarantee (and remaining quota) separately —
        the multi-tenant ledger is per-tenant state plus these gauges,
        never one pooled accountant.
        """
        registry = self._registry
        prefix = f"privacy.tenant.{tenant_id}"
        registry.gauge(f"{prefix}.epsilon_spent").set(
            accountant.tightest_epsilon)
        registry.gauge(f"{prefix}.epsilon_basic").set(
            accountant.basic_epsilon)
        remaining = accountant.remaining_slices
        if remaining is not None:
            registry.gauge(f"{prefix}.remaining_slices").set(remaining)

    def record_alert(self, detector: str, tenant_id: str,
                     severity: str) -> None:
        """Account one attack-signal alert in the ``obs.`` namespace.

        Alerts live in the ε-ledger because a detected read pattern is a
        budget-relevant event: the follow-up policy PR will spend or
        clamp budget in response, and the ledger is where budget-facing
        evidence is aggregated across processes.
        """
        registry = self._registry
        registry.counter("obs.alerts").inc()
        registry.counter(f"obs.alert.{detector}").inc()
        registry.gauge(
            f"obs.tenant.{tenant_id}.last_severity").set(
            _SEVERITY_LEVELS.get(severity, 0))

    def composed(self) -> dict:
        """The live composed guarantee, straight from the registry."""
        registry = self._registry
        return {
            "slices_released": registry.counter(
                "privacy.slices_released").value,
            "windows": registry.counter("privacy.windows").value,
            "per_slice_epsilon": registry.gauge(
                "privacy.per_slice_epsilon").value,
            "epsilon_basic": registry.gauge("privacy.epsilon_basic").value,
            "epsilon_advanced": registry.gauge(
                "privacy.epsilon_advanced").value,
            "epsilon_spent": registry.gauge("privacy.epsilon_spent").value,
        }


class NoopPrivacyLedger:
    """Disabled ledger."""

    enabled = False

    def record_release(self, accountant, slices: int) -> None:
        return None

    def record_stall(self, slices: int = 1) -> None:
        return None

    def sync(self, accountant) -> None:
        return None

    def sync_tenant(self, tenant_id: str, accountant) -> None:
        return None

    def record_alert(self, detector: str, tenant_id: str,
                     severity: str) -> None:
        return None

    def composed(self) -> dict:
        return {"slices_released": 0.0, "windows": 0.0,
                "per_slice_epsilon": 0.0, "epsilon_basic": 0.0,
                "epsilon_advanced": 0.0, "epsilon_spent": 0.0}


NOOP_LEDGER = NoopPrivacyLedger()


def epsilon_summary(metrics_snapshot: dict) -> dict:
    """Read the ledger state back out of a (merged) metrics snapshot."""
    counters = metrics_snapshot.get("counters", {})
    gauges = metrics_snapshot.get("gauges", {})
    return {
        "slices_released": counters.get("privacy.slices_released", 0.0),
        "windows": counters.get("privacy.windows", 0.0),
        "per_slice_epsilon": gauges.get("privacy.per_slice_epsilon", 0.0),
        "epsilon_basic": gauges.get("privacy.epsilon_basic", 0.0),
        "epsilon_advanced": gauges.get("privacy.epsilon_advanced", 0.0),
        "epsilon_spent": gauges.get("privacy.epsilon_spent", 0.0),
    }
