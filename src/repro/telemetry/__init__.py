"""End-to-end telemetry: spans, metrics, and the privacy ε-ledger.

Four layers, all cheap enough to leave compiled into hot paths:

- :mod:`repro.telemetry.spans` — nested span tracing with monotonic
  timing and JSONL export; span structure (names/ids/attrs) is
  deterministic even though durations are not.
- :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms; the disabled registry returns shared no-op singletons.
- :mod:`repro.telemetry.ledger` — every DP noise release updates
  ``privacy.*`` metrics so the composed (sequential + advanced)
  guarantee is queryable live.
- :mod:`repro.telemetry.aggregate` — campaign workers emit per-shard
  telemetry files that the parent merges deterministically into one
  ``trace.jsonl`` + ``metrics.json`` run report, rendered by
  :mod:`repro.telemetry.render`.

Library code uses the process-global accessors::

    from repro import telemetry

    with telemetry.tracer().span("fuzz.screen_shard", shard=i):
        telemetry.metrics().counter("fuzz.gadgets_screened").inc()

which are no-ops until :func:`configure` (or a :func:`session`) is
active — the CLI's ``--trace-dir`` / ``--metrics`` flags turn them on.
"""

from repro.telemetry.aggregate import (
    MERGED_METRICS,
    MERGED_TRACE,
    RunTelemetry,
    load_run,
    merge_run,
)
from repro.telemetry.ledger import (
    NOOP_LEDGER,
    NoopPrivacyLedger,
    PrivacyLedger,
    epsilon_summary,
)
from repro.telemetry.metrics import (
    BUCKET_PRESETS,
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    read_snapshot,
    resolve_bounds,
)
from repro.telemetry.render import render_run, render_trace_dir
from repro.telemetry.runtime import (
    TelemetryRuntime,
    active,
    configure,
    disable,
    enabled,
    flush,
    ledger,
    metrics,
    session,
    trace_dir,
    tracer,
)
from repro.telemetry.spans import (
    NOOP_TRACER,
    NoopTracer,
    SpanRecord,
    Tracer,
    read_spans,
)

__all__ = [
    "BUCKET_PRESETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "LATENCY_BUCKETS",
    "Histogram",
    "MERGED_METRICS",
    "MERGED_TRACE",
    "MetricsRegistry",
    "NOOP_LEDGER",
    "NOOP_METRICS",
    "NOOP_TRACER",
    "NoopMetricsRegistry",
    "NoopPrivacyLedger",
    "NoopTracer",
    "PrivacyLedger",
    "RunTelemetry",
    "SpanRecord",
    "TelemetryRuntime",
    "Tracer",
    "active",
    "configure",
    "disable",
    "enabled",
    "epsilon_summary",
    "flush",
    "histogram_quantile",
    "ledger",
    "load_run",
    "merge_run",
    "merge_snapshots",
    "metrics",
    "read_snapshot",
    "read_spans",
    "render_run",
    "render_trace_dir",
    "resolve_bounds",
    "session",
    "trace_dir",
    "tracer",
]
