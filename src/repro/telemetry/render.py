"""Render a merged telemetry run as a terminal report.

Reuses the benchmark suite's ASCII chart helpers: stage timings as a
bar chart, shard load balance as a sparkline plus imbalance ratio, and
the ε-ledger's composed guarantee as a closing statement.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.telemetry.aggregate import RunTelemetry, load_run
from repro.telemetry.metrics import histogram_quantile


def _fmt_seconds(seconds: float) -> float:
    return round(seconds, 4)


def render_run(run: RunTelemetry) -> str:
    """The full text report for one merged run."""
    lines: list[str] = ["# Aegis run telemetry", ""]

    stages = run.stage_seconds()
    if stages:
        lines.append("## Stage timings (wall seconds)")
        lines.append(bar_chart(
            [(name, _fmt_seconds(seconds))
             for name, seconds in stages.items()], unit="s"))
        lines.append("")

    shard_seconds = run.shard_seconds()
    if shard_seconds:
        total = sum(shard_seconds)
        mean = total / len(shard_seconds)
        peak = max(shard_seconds)
        balance = peak / mean if mean > 0 else 1.0
        lines.append("## Shard balance")
        lines.append(f"{len(shard_seconds)} shards, "
                     f"{total:.2f}s total screening work")
        lines.append(f"per-shard seconds: {sparkline(shard_seconds)} "
                     f"(mean {mean:.3f}s, max {peak:.3f}s, "
                     f"imbalance {balance:.2f}x)")
        lines.append("")

    counters = run.metrics.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    lookups = hits + misses
    if lookups:
        lines.append("## Measurement cache")
        lines.append(f"{hits:,.0f}/{lookups:,.0f} lookups hit "
                     f"({hits / lookups:.1%}); "
                     f"{counters.get('cache.bytes', 0):,.0f} bytes "
                     f"written to the disk tier")
        executions = counters.get("fuzz.executions")
        if executions is not None:
            lines.append(f"screening executions actually run: "
                         f"{executions:,.0f}")
        lines.append("")

    faults = {name: value for name, value in counters.items()
              if name.startswith(("fault.", "retry.", "checkpoint.",
                                  "daemon.", "kernel.restarts",
                                  "cache.tmp_swept"))}
    stalled = counters.get("privacy.stalled_slices", 0)
    if faults or stalled:
        lines.append("## Resilience")
        injected = faults.get("fault.injected", 0)
        if injected:
            points = ", ".join(
                f"{name.removeprefix('fault.')} x{value:,.0f}"
                for name, value in sorted(faults.items())
                if name.startswith("fault.") and name != "fault.injected"
                and name != "fault.quarantined")
            lines.append(f"{injected:,.0f} faults injected"
                         + (f" ({points})" if points else ""))
        retries = faults.get("retry.shards", 0)
        if retries:
            lines.append(
                f"{retries:,.0f} shard retries "
                f"({faults.get('retry.shard_failures', 0):,.0f} failures, "
                f"{faults.get('retry.bisections', 0):,.0f} bisections, "
                f"{faults.get('retry.pool_restarts', 0):,.0f} pool "
                f"restarts)")
        quarantined = faults.get("fault.quarantined", 0)
        if quarantined:
            lines.append(f"{quarantined:,.0f} gadgets quarantined")
        rollbacks = faults.get("checkpoint.rollbacks", 0)
        if rollbacks:
            lines.append(f"{rollbacks:,.0f} checkpoint rollbacks to the "
                         f"previous generation")
        stalls = faults.get("daemon.noise_stalls", 0)
        if stalls or stalled:
            lines.append(f"noise refill stalls: {stalls:,.0f}; "
                         f"slices withheld fail-closed: {stalled:,.0f} "
                         f"(zero un-noised values released)")
        restarts = (faults.get("daemon.restarts", 0),
                    faults.get("kernel.restarts", 0))
        if any(restarts):
            lines.append(f"restarts: daemon {restarts[0]:,.0f}, "
                         f"kernel module {restarts[1]:,.0f}")
        swept = faults.get("cache.tmp_swept", 0)
        if swept:
            lines.append(f"{swept:,.0f} stale cache temp files swept")
        lines.append("")

    slo = {name: payload
           for name, payload in run.metrics.get("histograms", {}).items()
           if name.startswith("slo.") and name.endswith(".seconds")
           and payload["count"]}
    alerts = counters.get("obs.alerts", 0)
    if slo or alerts:
        lines.append("## Observability")
        for name in sorted(slo):
            payload = slo[name]
            operation = name[len("slo."):-len(".seconds")]
            lines.append(
                f"{operation}: "
                f"p50 {histogram_quantile(payload, 0.5) * 1e3:.3f}ms, "
                f"p95 {histogram_quantile(payload, 0.95) * 1e3:.3f}ms, "
                f"p99 {histogram_quantile(payload, 0.99) * 1e3:.3f}ms "
                f"over {payload['count']:,d} observations")
        if alerts:
            per_detector = ", ".join(
                f"{name.removeprefix('obs.alert.')} x{value:,.0f}"
                for name, value in sorted(counters.items())
                if name.startswith("obs.alert."))
            lines.append(f"attack-signal alerts: {alerts:,.0f}"
                         + (f" ({per_detector})" if per_detector else ""))
        lines.append("")

    interesting = {name: value for name, value in counters.items()
                   if not name.startswith(("privacy.", "obs."))}
    if interesting:
        lines.append("## Counters")
        width = max(len(name) for name in interesting)
        for name in sorted(interesting):
            lines.append(f"{name:<{width}s} {interesting[name]:,.0f}")
        lines.append("")

    epsilon = run.epsilon()
    if epsilon["slices_released"] == 0 \
            and epsilon["per_slice_epsilon"] > 0:
        lines.append("## Privacy budget (ε-ledger)")
        lines.append(
            f"obfuscator armed at eps={epsilon['per_slice_epsilon']:g} "
            f"per slice; no slices released yet (budget untouched)")
        lines.append("")
    elif epsilon["slices_released"] > 0:
        lines.append("## Privacy budget (ε-ledger)")
        lines.append(
            f"released {epsilon['slices_released']:,.0f} slices over "
            f"{epsilon['windows']:,.0f} windows at "
            f"eps={epsilon['per_slice_epsilon']:g} per slice")
        tightest = min(epsilon["epsilon_basic"],
                       epsilon["epsilon_advanced"])
        bound = ("advanced" if tightest == epsilon["epsilon_advanced"]
                 else "basic")
        lines.append(
            f"composed guarantee: basic {epsilon['epsilon_basic']:.4g}, "
            f"advanced {epsilon['epsilon_advanced']:.4g} -> "
            f"eps_spent {tightest:.4g} via {bound} composition")
        lines.append("")

    if len(lines) == 2:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines).rstrip() + "\n"


def render_trace_dir(trace_dir: "str | Path") -> str:
    """Load (or merge) ``trace_dir`` and render the report."""
    return render_run(load_run(Path(trace_dir)))
