"""Aegis — the paper's primary contribution.

Three modules compose the defense (paper Fig. 2):

- :mod:`repro.core.profiler` (offline): profile the protected
  application against every HPC event, filter the responsive ones, rank
  them by mutual information with the secret.
- :mod:`repro.core.fuzzer` (offline): grammar-based fuzzing over the ISA
  to find instruction gadgets that perturb each vulnerable event.
- :mod:`repro.core.obfuscator` (online): inject differential-privacy
  calibrated amounts of those gadgets into the VM's execution flow.

:class:`repro.core.aegis.Aegis` wires them into the end-to-end pipeline.
"""

from repro.core.profiler import ApplicationProfiler, ProfilerReport
from repro.core.fuzzer import EventFuzzer, FuzzingReport, Gadget
from repro.core.obfuscator import (
    DstarMechanism,
    EventObfuscator,
    LaplaceMechanism,
)
from repro.core.aegis import Aegis, AegisDeployment

__all__ = [
    "Aegis",
    "AegisDeployment",
    "ApplicationProfiler",
    "DstarMechanism",
    "EventFuzzer",
    "EventObfuscator",
    "FuzzingReport",
    "Gadget",
    "LaplaceMechanism",
    "ProfilerReport",
]
