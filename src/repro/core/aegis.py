"""The end-to-end Aegis pipeline (paper Fig. 2).

Offline, run once: the Application Profiler finds the vulnerable HPC
events, the Event Fuzzer finds the gadgets that perturb them and the
minimal covering set. Online: the Event Obfuscator injects
DP-calibrated repetitions of that covering segment into the protected
VM's execution flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fuzzer.campaign import FuzzingCampaign
from repro.core.fuzzer.fuzzer import EventFuzzer, FuzzingReport
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.obfuscator.obfuscator import EventObfuscator, estimate_sensitivity
from repro.core.profiler.profiler import ApplicationProfiler, ProfilerReport
from repro.cpu.signals import Signal
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng, spawn_rng
from repro.workloads.base import Workload


@dataclass
class AegisDeployment:
    """Everything the offline stage produced, ready for the VM."""

    profiler_report: ProfilerReport
    fuzzing_report: FuzzingReport
    obfuscator: EventObfuscator

    @property
    def covered_events(self) -> int:
        return sum(len(v) for v in self.fuzzing_report.covering_set.values())

    @property
    def covering_gadgets(self) -> int:
        return len(self.fuzzing_report.covering_set)


class Aegis:
    """The unified defense framework.

    Parameters
    ----------
    workload:
        The customer's protected application.
    processor_model:
        Cloud host processor family (from the attestation report).
    mechanism / epsilon:
        Online DP mechanism and privacy budget.
    workers / shard_size / checkpoint_dir / resume / cache_dir /
    fault_plan / shard_timeout / max_retries:
        Fuzzing-campaign execution knobs, forwarded to
        :class:`FuzzingCampaign`. They change how the screening budget
        is scheduled (parallel workers, checkpoint artifacts, the
        shared measurement cache, fault injection and retry policy),
        never the resulting covering set for a fixed seed.
    """

    def __init__(self, workload: Workload,
                 processor_model: str = "amd-epyc-7252",
                 mechanism: str = "laplace", epsilon: float = 1.0,
                 runs_per_secret: int = 10, gadget_budget: int = 1500,
                 mi_threshold_bits: float = 0.1, workers: int = 1,
                 shard_size: int | None = None,
                 checkpoint_dir: str | None = None, resume: bool = False,
                 cache_dir: str | None = None,
                 fault_plan=None, shard_timeout: float | None = None,
                 max_retries: int = 2,
                 rng: "int | np.random.Generator | None" = None) -> None:
        root = ensure_rng(rng)
        self._prof_rng, self._fuzz_rng, self._obf_rng, self._sens_rng = \
            spawn_rng(root, 4)
        self.workload = workload
        self.processor_model = processor_model
        self.mechanism = mechanism
        self.epsilon = epsilon
        self.runs_per_secret = runs_per_secret
        self.gadget_budget = gadget_budget
        self.mi_threshold_bits = mi_threshold_bits
        self.workers = workers
        self.shard_size = shard_size
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.cache_dir = cache_dir
        self.fault_plan = fault_plan
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries

    # -- offline stage ---------------------------------------------------

    def profile(self, secrets: list | None = None) -> ProfilerReport:
        """Stage 1: Application Profiler."""
        profiler = ApplicationProfiler(
            self.workload, processor_model=self.processor_model,
            runs_per_secret=self.runs_per_secret, rng=self._prof_rng)
        return profiler.profile(secrets=secrets)

    def fuzz(self, profiler_report: ProfilerReport) -> FuzzingReport:
        """Stage 2: Event Fuzzer over the vulnerable events.

        Runs as a sharded campaign; ``workers``/``checkpoint_dir``/
        ``resume`` scale it out and make it interruptible without
        changing the covering set for a fixed seed.
        """
        vulnerable = profiler_report.ranking.vulnerable_indices(
            self.mi_threshold_bits)
        kwargs = {} if self.shard_size is None \
            else {"shard_size": self.shard_size}
        fuzzer = EventFuzzer(processor_model=self.processor_model,
                             gadget_budget=self.gadget_budget,
                             rng=self._fuzz_rng, **kwargs)
        campaign = FuzzingCampaign(fuzzer, workers=self.workers,
                                   checkpoint_dir=self.checkpoint_dir,
                                   resume=self.resume,
                                   cache_dir=self.cache_dir,
                                   fault_plan=self.fault_plan,
                                   shard_timeout=self.shard_timeout,
                                   max_retries=self.max_retries)
        return campaign.run(vulnerable)

    def _covering_segment(self, fuzzing_report: FuzzingReport) -> np.ndarray:
        """Per-gadget signal profiles of the covering set (K, SIGNALS).

        Each covering gadget becomes one injection component: the
        online injector mixes them randomly per slice, so the noise
        spans a subspace of event space rather than one fixed
        direction an attacker could project out.
        """
        from repro.cpu.core import Core
        from repro.cpu.signals import Signal
        core = Core(self.processor_model, rng=self._obf_rng)
        harness = ExecutionHarness(core, rng=self._obf_rng)
        components = []
        reference_weights = core.catalog.weights[
            core.catalog.index_of("RETIRED_UOPS")]
        for gadget in fuzzing_report.covering_set:
            profile = np.maximum(harness.gadget_signal_profile(gadget), 0.0)
            # Only components that move the reference event can be
            # dosed by the injector's counts-per-rep conversion.
            if profile @ reference_weights > 0 \
                    and profile[Signal.CYCLES] > 0:
                components.append(profile)
        if not components:
            raise RuntimeError(
                "fuzzing produced no covering gadgets; increase "
                "gadget_budget")
        return np.stack(components)

    def _estimate_sensitivity(self, secrets: list | None,
                              reference_event: str) -> float:
        """Delta from clean reference-event profiling traces."""
        from repro.cpu.events import processor_catalog
        catalog = processor_catalog(self.processor_model)
        weights = catalog.weights[catalog.index_of(reference_event)]
        secrets = (list(secrets) if secrets is not None
                   else self.workload.secrets)
        traces = []
        labels = []
        for label, secret in enumerate(secrets):
            for _ in range(max(8, self.runs_per_secret)):
                blocks = self.workload.generate_blocks(
                    secret, self._sens_rng, duration_s=3.0, slice_s=0.01)
                matrix = np.stack([b.signals for b in blocks])
                traces.append(matrix @ weights)
                labels.append(label)
        return estimate_sensitivity(np.stack(traces), np.array(labels))

    def build_obfuscator(self, fuzzing_report: FuzzingReport,
                         secrets: list | None = None,
                         reference_event: str = "RETIRED_UOPS",
                         clip_bound: float = np.inf) -> EventObfuscator:
        """Stage 3: assemble the online Event Obfuscator."""
        segment = self._covering_segment(fuzzing_report)
        if np.any(segment[:, Signal.CYCLES] <= 0):
            raise RuntimeError("a covering component has no cycle cost")
        sensitivity = self._estimate_sensitivity(secrets, reference_event)
        return EventObfuscator(
            mechanism=self.mechanism, epsilon=self.epsilon,
            sensitivity=sensitivity, reference_event=reference_event,
            processor_model=self.processor_model,
            segment_signals=segment, clip_bound=clip_bound,
            rng=self._obf_rng)

    def deploy(self, secrets: list | None = None) -> AegisDeployment:
        """Run the whole offline pipeline; returns the deployment."""
        tracer = telemetry.tracer()
        with tracer.span("aegis.profile"):
            profiler_report = self.profile(secrets=secrets)
        with tracer.span("aegis.fuzz"):
            fuzzing_report = self.fuzz(profiler_report)
        with tracer.span("aegis.obfuscate"):
            obfuscator = self.build_obfuscator(fuzzing_report,
                                               secrets=secrets)
        return AegisDeployment(profiler_report=profiler_report,
                               fuzzing_report=fuzzing_report,
                               obfuscator=obfuscator)
