"""Warm-up profiling (paper Section V-B).

Most of a processor's monitorable events cannot reflect activity inside
a guest VM. The warm-up pass measures every event twice — once with the
application running, once with the VM idle — and drops the events whose
counts do not change. Repeated a few times (the paper uses 5), this
compacts thousands of events to a few hundred, and its cost is

    T_W = (M * t_w * 2) / C

for M events, a per-event monitoring window of t_w and C hardware
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.events import EventCatalog, EventType
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng
from repro.workloads.base import Workload, idle_mix


@dataclass
class WarmupReport:
    """Outcome of warm-up profiling."""

    surviving_indices: np.ndarray
    total_events: int
    repetitions: int
    simulated_seconds: float
    type_histogram_before: dict[EventType, int] = field(default_factory=dict)
    type_histogram_after: dict[EventType, int] = field(default_factory=dict)

    @property
    def surviving_count(self) -> int:
        return len(self.surviving_indices)

    @property
    def surviving_fraction(self) -> float:
        return self.surviving_count / self.total_events if self.total_events else 0.0

    def remaining_share_by_type(self) -> dict[EventType, float]:
        """Per-type fraction of events that survived (paper Table II)."""
        shares = {}
        for event_type, before in self.type_histogram_before.items():
            after = self.type_histogram_after.get(event_type, 0)
            shares[event_type] = after / before if before else 0.0
        return shares


class WarmupProfiler:
    """Active-vs-idle differential screening of the full event list.

    Parameters
    ----------
    catalog:
        Full event catalog of the template server's processor.
    workload:
        The protected application (run with an arbitrary secret).
    monitor_window_s:
        t_w: how long each event is monitored per measurement.
    num_registers:
        C: concurrently monitorable events.
    repetitions:
        How many active/idle comparisons each event must pass.
    threshold_sigmas:
        Count change must exceed this many noise standard deviations.
    """

    def __init__(self, catalog: EventCatalog, workload: Workload,
                 monitor_window_s: float = 1.0, num_registers: int = 4,
                 repetitions: int = 5, threshold_sigmas: float = 4.0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if monitor_window_s <= 0:
            raise ValueError("monitor_window_s must be positive")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.catalog = catalog
        self.workload = workload
        self.monitor_window_s = monitor_window_s
        self.num_registers = num_registers
        self.repetitions = repetitions
        self.threshold_sigmas = threshold_sigmas
        self._rng = ensure_rng(rng)

    def _active_signals(self, secret, rng: np.random.Generator) -> np.ndarray:
        """Total signals of one application run in the window."""
        blocks = self.workload.generate_blocks(
            secret, rng, duration_s=self.monitor_window_s,
            slice_s=self.monitor_window_s / 50)
        return np.sum([b.signals for b in blocks], axis=0)

    def _idle_signals(self, rng: np.random.Generator) -> np.ndarray:
        """Total signals of the idle VM in the window."""
        rates = idle_mix().rate_vector()
        jitter = max(0.0, rng.normal(1.0, 0.02))
        return rates * self.monitor_window_s * jitter

    def run(self, secret=None) -> WarmupReport:
        """Screen every catalog event; returns the survivors.

        The comparison needs a secret that actually *exercises* the
        application; by default the last secret is used (for the
        keystroke workload, secret 0 means zero keystrokes — an idle
        VM — which would make active and idle indistinguishable).
        """
        secret = secret if secret is not None else self.workload.secrets[-1]
        num_events = len(self.catalog)
        tracer = telemetry.tracer()
        repetition_counter = telemetry.metrics().counter(
            "profile.warmup_repetitions")
        # The repetitions are submitted as one batch: each draws its
        # active/idle measurement pair in repetition order (so the RNG
        # stream is consumed exactly as a one-at-a-time loop would),
        # then the pass/fail screen runs vectorized over the whole
        # (repetitions, events) matrix instead of per repetition.
        batch = np.empty((self.repetitions, 2, num_events))
        for repetition in range(self.repetitions):
            with tracer.span("profile.warmup_pass",
                             repetition=repetition):
                batch[repetition] = self._measure_pass(secret)
            repetition_counter.inc()
        passes = self._screen_batch(batch)
        surviving = np.flatnonzero(passes == self.repetitions)
        # Paper's T_W = (M * t_w * 2) / C counts one active/idle pass;
        # the repetitions reuse the same measurements for confirmation.
        simulated = (num_events * self.monitor_window_s * 2) \
            / self.num_registers
        before = self.catalog.type_histogram()
        after: dict[EventType, int] = {t: 0 for t in EventType}
        for index in surviving:
            after[self.catalog.specs[index].event_type] += 1
        return WarmupReport(
            surviving_indices=surviving, total_events=num_events,
            repetitions=self.repetitions, simulated_seconds=simulated,
            type_histogram_before=before, type_histogram_after=after)

    def _measure_pass(self, secret) -> np.ndarray:
        """One active/idle measurement pair, shape ``(2, events)``."""
        active = self._active_signals(secret, self._rng)
        idle = self._idle_signals(self._rng)
        noisy_active = self.catalog.counts_for(active, rng=self._rng)
        noisy_idle = self.catalog.counts_for(idle, rng=self._rng)
        return np.stack([noisy_active, noisy_idle])

    def _screen_batch(self, batch: np.ndarray) -> np.ndarray:
        """Vectorized pass counts for a ``(R, 2, events)`` batch.

        Elementwise over the batch axis, so the result is identical to
        screening each repetition on its own.
        """
        noisy_active = batch[:, 0, :]
        noisy_idle = batch[:, 1, :]
        # Noise scale of the difference of two measurements.
        sigma = (self.catalog.noise_rel * np.maximum(noisy_active,
                                                     noisy_idle)
                 + self.catalog.noise_abs) * np.sqrt(2.0)
        changed = np.abs(noisy_active - noisy_idle) \
            > self.threshold_sigmas * sigma
        return changed.sum(axis=0)
