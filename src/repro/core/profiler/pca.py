"""Principal component analysis for trace feature extraction.

The profiler reduces each event's time-series trace to one scalar by
projecting onto the first principal component of the per-event trace
matrix (paper Section V-B), preserving most of the variance while making
the Gaussian modelling univariate.
"""

from __future__ import annotations

import numpy as np


def first_principal_component(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """First PC scores and loading vector of ``data`` (rows = samples).

    Returns ``(scores, component)`` where ``scores`` has one entry per
    row and ``component`` is the unit-norm loading vector. The component
    sign is fixed (largest-magnitude entry positive) so results are
    deterministic.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if len(data) < 2:
        raise ValueError("need at least two samples for PCA")
    centered = data - data.mean(axis=0)
    # SVD of the centered matrix: right singular vectors are components.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    component = vt[0]
    anchor = np.argmax(np.abs(component))
    if component[anchor] < 0:
        component = -component
    scores = centered @ component
    return scores, component


def explained_variance_ratio(data: np.ndarray, k: int = 1) -> float:
    """Fraction of variance captured by the top ``k`` components."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) < 2:
        raise ValueError("data must be 2-D with at least two samples")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    centered = data - data.mean(axis=0)
    singular = np.linalg.svd(centered, compute_uv=False)
    variance = singular ** 2
    total = variance.sum()
    if total == 0:
        return 1.0
    return float(variance[:k].sum() / total)
