"""The Application Profiler orchestrator (paper Section V).

Launches a template VM on a template server whose processor model comes
from the SEV attestation report, runs warm-up profiling to compact the
event list, then ranks the survivors by mutual information with the
secret.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profiler.ranking import EventRanking, VulnerabilityRanker
from repro.core.profiler.warmup import WarmupProfiler, WarmupReport
from repro.cpu.events import processor_catalog
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng, spawn_rng
from repro.workloads.base import Workload


@dataclass
class ProfilerReport:
    """Combined output of warm-up profiling and vulnerability ranking."""

    processor_model: str
    warmup: WarmupReport
    ranking: EventRanking

    @property
    def total_simulated_hours(self) -> float:
        """T_W + T_P in simulated hours."""
        return (self.warmup.simulated_seconds
                + self.ranking.simulated_seconds) / 3600.0

    def top_events(self, n: int = 4) -> list[str]:
        """The n most vulnerable event names (the attacker's choice)."""
        return [name for name, _ in self.ranking.top(n)]


class ApplicationProfiler:
    """End-to-end offline profiling of a protected application.

    Parameters
    ----------
    workload:
        The protected application with its customer-specified secrets.
    processor_model:
        Template server processor (must match the cloud host's family;
        obtained from the SEV attestation report in deployment).
    runs_per_secret:
        Profiling repetitions per secret (paper: 100; default 10 — the
        paper notes 10 is "enough for a rough analysis").
    """

    def __init__(self, workload: Workload,
                 processor_model: str = "amd-epyc-7252",
                 runs_per_secret: int = 10, warmup_repetitions: int = 5,
                 window_s: float = 1.0, slice_s: float = 0.01,
                 num_registers: int = 4,
                 rng: "int | np.random.Generator | None" = None) -> None:
        root = ensure_rng(rng)
        warmup_rng, ranking_rng = spawn_rng(root, 2)
        self.workload = workload
        self.processor_model = processor_model
        self.catalog = processor_catalog(processor_model)
        self.warmup_profiler = WarmupProfiler(
            self.catalog, workload, monitor_window_s=window_s,
            num_registers=num_registers, repetitions=warmup_repetitions,
            rng=warmup_rng)
        self.ranker = VulnerabilityRanker(
            self.catalog, workload, runs_per_secret=runs_per_secret,
            window_s=window_s, slice_s=slice_s,
            num_registers=num_registers, rng=ranking_rng)

    def profile(self, secrets: list | None = None) -> ProfilerReport:
        """Run warm-up profiling then MI ranking; returns the report."""
        tracer = telemetry.tracer()
        with tracer.span("profile.warmup",
                         events=len(self.catalog)):
            warmup = self.warmup_profiler.run()
        if warmup.surviving_count == 0:
            raise RuntimeError(
                "warm-up profiling found no responsive events; the "
                "workload may be empty or the threshold too strict")
        with tracer.span("profile.rank",
                         events=warmup.surviving_count):
            ranking = self.ranker.rank(warmup.surviving_indices,
                                       secrets=secrets)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("profile.events_screened").inc(
                warmup.total_events)
            registry.counter("profile.events_surviving").inc(
                warmup.surviving_count)
            registry.counter("profile.events_ranked").inc(
                len(ranking.event_indices))
        return ProfilerReport(processor_model=self.processor_model,
                              warmup=warmup, ranking=ranking)
