"""Event vulnerability ranking (paper Section V-B, "Event ranking").

For each warm-up survivor, the application is executed repeatedly with
every customer-specified secret while the event is monitored. Each
run's time series is reduced to one scalar with PCA; per-secret
Gaussians are fitted; the event's vulnerability score is the mutual
information I(Y; X) of paper Eq. 1. The profiling cost is

    T_P = (N * S * m * t_p) / C

for N events, S secrets, m runs per secret, a per-run window of t_p and
C hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profiler.gaussian import fit_class_gaussians, mutual_information
from repro.core.profiler.pca import first_principal_component
from repro.cpu.events import EventCatalog
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng
from repro.workloads.base import Workload


@dataclass
class EventRanking:
    """Mutual-information ranking over profiled events."""

    event_indices: np.ndarray
    event_names: list[str]
    mutual_information_bits: np.ndarray
    secret_entropy_bits: float
    runs_per_secret: int
    simulated_seconds: float
    order: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.order = np.argsort(-self.mutual_information_bits)

    def top(self, n: int) -> list[tuple[str, float]]:
        """The ``n`` most vulnerable events as (name, MI bits)."""
        return [(self.event_names[i], float(self.mutual_information_bits[i]))
                for i in self.order[:n]]

    def sorted_mi(self) -> np.ndarray:
        """MI values in descending order (paper Fig. 8 curves)."""
        return self.mutual_information_bits[self.order]

    def vulnerable_indices(self, mi_threshold_bits: float = 0.0) -> np.ndarray:
        """Catalog indices of events with MI above the threshold."""
        keep = self.mutual_information_bits > mi_threshold_bits
        return self.event_indices[keep]


class VulnerabilityRanker:
    """Computes the MI ranking for the warm-up survivors.

    Parameters
    ----------
    catalog / workload:
        Template processor catalog and the protected application.
    runs_per_secret:
        m: repeated executions per secret (paper: 100; 10 suffices for a
        rough analysis and is the test default).
    window_s / slice_s:
        t_p and the sampling interval of each profiling run.
    num_registers:
        C, for the cost accounting.
    """

    def __init__(self, catalog: EventCatalog, workload: Workload,
                 runs_per_secret: int = 10, window_s: float = 1.0,
                 slice_s: float = 0.01, num_registers: int = 4,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if runs_per_secret < 2:
            raise ValueError(
                f"runs_per_secret must be >= 2, got {runs_per_secret}")
        self.catalog = catalog
        self.workload = workload
        self.runs_per_secret = runs_per_secret
        self.window_s = window_s
        self.slice_s = slice_s
        self.num_registers = num_registers
        self._rng = ensure_rng(rng)

    def _collect_signal_runs(self, secrets: list
                             ) -> tuple[np.ndarray, np.ndarray]:
        """All runs' per-slice signal matrices and labels.

        Signals are workload-level and event-agnostic, so one set of
        runs feeds every event's trace computation (the simulation
        equivalent of re-running the application per event group — the
        cost accounting still charges the full T_P).
        """
        runs = []
        labels = []
        tracer = telemetry.tracer()
        run_counter = telemetry.metrics().counter("profile.rank_runs")
        for label, secret in enumerate(secrets):
            with tracer.span("profile.rank_secret", secret=label,
                             runs=self.runs_per_secret):
                for _ in range(self.runs_per_secret):
                    blocks = self.workload.generate_blocks(
                        secret, self._rng, duration_s=self.window_s,
                        slice_s=self.slice_s)
                    runs.append(np.stack([b.signals for b in blocks]))
                    labels.append(label)
                    run_counter.inc()
        return np.stack(runs), np.array(labels)

    def rank(self, event_indices: np.ndarray,
             secrets: list | None = None) -> EventRanking:
        """Rank ``event_indices`` by mutual information with the secret."""
        event_indices = np.asarray(event_indices, dtype=int)
        if len(event_indices) == 0:
            raise ValueError("event_indices must be non-empty")
        secrets = list(secrets) if secrets is not None else self.workload.secrets
        signal_runs, labels = self._collect_signal_runs(secrets)
        num_runs, num_slices, _ = signal_runs.shape
        mi_values = np.empty(len(event_indices))
        for i, event_index in enumerate(event_indices):
            weights = self.catalog.weights[event_index]
            traces = signal_runs @ weights                   # (R, T)
            traces = np.maximum(traces, 0.0)
            sigma = (self.catalog.noise_rel[event_index] * traces
                     + self.catalog.noise_abs[event_index])
            traces = np.maximum(
                traces + self._rng.normal(0.0, sigma), 0.0)
            if np.allclose(traces.std(axis=0).sum(), 0.0):
                mi_values[i] = 0.0
                continue
            scores, _ = first_principal_component(traces)
            model = fit_class_gaussians(scores, labels)
            mi_values[i] = mutual_information(model)
        priors = np.full(len(secrets), 1.0 / len(secrets))
        entropy_bits = float(-(priors * np.log2(priors)).sum())
        simulated = (len(event_indices) * len(secrets) * self.runs_per_secret
                     * self.window_s) / self.num_registers
        names = [self.catalog.specs[j].name for j in event_indices]
        return EventRanking(
            event_indices=event_indices, event_names=names,
            mutual_information_bits=mi_values,
            secret_entropy_bits=entropy_bits,
            runs_per_secret=self.runs_per_secret,
            simulated_seconds=simulated)
