"""Gaussian modelling of event values and mutual information.

The paper fits a univariate Gaussian N(mu, sigma^2) to each secret's
event-value distribution (validated against a Q-Q plot, Fig. 3) and
computes the mutual information

    I(Y; X) = H(Y) - integral p(x) H(Y | X = x) dx          (Eq. 1)

by numerical integration. That value is the event's vulnerability
score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GaussianClassModel:
    """Per-secret Gaussians over an event's feature values."""

    means: np.ndarray
    stds: np.ndarray
    priors: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.means) == len(self.stds) == len(self.priors)):
            raise ValueError("means, stds and priors must be equal length")
        if np.any(self.stds <= 0):
            raise ValueError("stds must be strictly positive")
        if not np.isclose(self.priors.sum(), 1.0):
            raise ValueError(f"priors must sum to 1, got {self.priors.sum()}")

    @property
    def num_classes(self) -> int:
        return len(self.means)

    def likelihood(self, x: np.ndarray) -> np.ndarray:
        """p(x | y) for every class: shape (len(x), num_classes)."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        z = (x[:, None] - self.means[None, :]) / self.stds[None, :]
        return np.exp(-0.5 * z * z) / (self.stds[None, :] * np.sqrt(2 * np.pi))


def fit_class_gaussians(values: np.ndarray, labels: np.ndarray,
                        min_std: float = 1e-9) -> GaussianClassModel:
    """Fit one Gaussian per class from labelled feature values."""
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels)
    if values.shape != labels.shape:
        raise ValueError("values and labels must have the same shape")
    classes = np.unique(labels)
    means, stds, priors = [], [], []
    spread = float(values.std()) if len(values) > 1 else 1.0
    floor = max(min_std, 1e-6 * max(spread, 1.0))
    for cls in classes:
        member = values[labels == cls]
        means.append(float(member.mean()))
        stds.append(max(float(member.std()), floor))
        priors.append(len(member) / len(values))
    return GaussianClassModel(means=np.array(means), stds=np.array(stds),
                              priors=np.array(priors))


def entropy(priors: np.ndarray) -> float:
    """Shannon entropy in bits."""
    priors = np.asarray(priors, dtype=np.float64)
    nonzero = priors[priors > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def mutual_information(model: GaussianClassModel,
                       grid_points: int = 1024,
                       span_sigmas: float = 5.0) -> float:
    """I(Y; X) in bits for a Gaussian class model (paper Eq. 1).

    Integrates H(Y | X = x) against p(x) on a grid covering every class
    mean +/- ``span_sigmas`` standard deviations.
    """
    if grid_points < 16:
        raise ValueError(f"grid_points must be >= 16, got {grid_points}")
    lo = float((model.means - span_sigmas * model.stds).min())
    hi = float((model.means + span_sigmas * model.stds).max())
    if hi <= lo:
        return 0.0
    grid = np.linspace(lo, hi, grid_points)
    lik = model.likelihood(grid)                       # (G, C)
    joint = lik * model.priors[None, :]                # p(x, y)
    p_x = joint.sum(axis=1)                            # (G,)
    with np.errstate(divide="ignore", invalid="ignore"):
        posterior = np.where(p_x[:, None] > 0, joint / p_x[:, None], 0.0)
        log_post = np.where(posterior > 0, np.log2(posterior), 0.0)
    h_y_given_x = -(posterior * log_post).sum(axis=1)  # (G,)
    conditional = float(np.trapezoid(p_x * h_y_given_x, grid))
    h_y = entropy(model.priors)
    value = h_y - conditional
    # Numerical integration can drift a hair outside [0, H(Y)].
    return float(np.clip(value, 0.0, h_y))
