"""Application Profiler (paper Section V).

Offline module: profiles the protected application inside a template VM
while the (friendly) host measures every available HPC event, discards
the events that do not respond to guest activity (warm-up profiling),
and ranks the survivors by mutual information between their values and
the application secret.
"""

from repro.core.profiler.warmup import WarmupProfiler, WarmupReport
from repro.core.profiler.pca import first_principal_component
from repro.core.profiler.gaussian import (
    GaussianClassModel,
    fit_class_gaussians,
    mutual_information,
)
from repro.core.profiler.ranking import EventRanking, VulnerabilityRanker
from repro.core.profiler.profiler import ApplicationProfiler, ProfilerReport

__all__ = [
    "ApplicationProfiler",
    "EventRanking",
    "GaussianClassModel",
    "ProfilerReport",
    "VulnerabilityRanker",
    "WarmupProfiler",
    "WarmupReport",
    "first_principal_component",
    "fit_class_gaussians",
    "mutual_information",
]
