"""Event Obfuscator (paper Section VII).

Online module living inside the victim VM: a kernel module monitors the
HPC values (needed by the d* mechanism) and signals a userspace daemon,
whose noise calculator draws differential-privacy noise from a
precomputed buffer and whose injector executes the corresponding number
of instruction-gadget repetitions on the protected vCPU.
"""

from repro.core.obfuscator.dp import (
    DpMechanism,
    DstarMechanism,
    LaplaceMechanism,
    laplace_sample,
)
from repro.core.obfuscator.budget import (
    BudgetExhausted,
    PrivacyAccountant,
    advanced_composition,
    sequential_composition,
)
from repro.core.obfuscator.noise import NoiseCalculator, NoiseExhausted
from repro.core.obfuscator.injector import (
    InjectionReport,
    NoiseInjector,
    RandomNoiseInjector,
    SecretTiedNoise,
    default_noise_components,
    default_noise_segment,
)
from repro.core.obfuscator.kernel_module import (
    KernelModule,
    KernelModuleCrashed,
    NetlinkChannel,
)
from repro.core.obfuscator.daemon import UserspaceDaemon
from repro.core.obfuscator.obfuscator import EventObfuscator, estimate_sensitivity

__all__ = [
    "BudgetExhausted",
    "DpMechanism",
    "DstarMechanism",
    "EventObfuscator",
    "InjectionReport",
    "KernelModule",
    "KernelModuleCrashed",
    "LaplaceMechanism",
    "NetlinkChannel",
    "NoiseCalculator",
    "NoiseExhausted",
    "NoiseInjector",
    "PrivacyAccountant",
    "RandomNoiseInjector",
    "SecretTiedNoise",
    "UserspaceDaemon",
    "advanced_composition",
    "default_noise_components",
    "default_noise_segment",
    "estimate_sensitivity",
    "laplace_sample",
    "sequential_composition",
]
