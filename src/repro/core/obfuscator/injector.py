"""The noise injector (paper Section VII-C).

The injector owns the *code segment*: the minimal covering gadget set
(43 gadgets for the paper's 137 events) stacked into one block that is
executed repeatedly; the repetition count per sampling slice comes from
the noise calculator. Injection consumes real cycles on the protected
vCPU — that consumption is the defense's latency/CPU overhead, so the
injector accounts for it precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.signals import NUM_SIGNALS, Signal, zero_signals
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng

#: Buckets for the per-slice gadget-repetition histogram.
_REPS_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                 500.0, 1000.0)


def default_noise_components() -> np.ndarray:
    """Diverse per-gadget-group signal profiles (K, NUM_SIGNALS).

    A fixed noise direction in event space is a weakness: an attacker
    can project the observations onto the orthogonal complement of the
    injected profile and strip the noise. Injecting a *random mix* of
    diverse gadget groups each slice makes the noise span a subspace
    instead of a line. These six components stand in for clusters of a
    covering set (uop-, load-, branch-, SIMD-, FP-, and cache-heavy);
    real campaigns supply their own per-gadget profiles.
    """
    base = default_noise_segment()
    components = []
    emphasis = {
        "uops": {Signal.UOPS: 1.6, Signal.INSTRUCTIONS: 1.6,
                 Signal.BIT_OPS: 1.8, Signal.NOP_OPS: 2.0},
        "loads": {Signal.LOADS: 2.5, Signal.STORES: 2.5,
                  Signal.L1D_ACCESS: 2.5, Signal.STACK_OPS: 2.0,
                  Signal.DTLB_MISS: 2.0},
        "branches": {Signal.BRANCHES: 2.5, Signal.COND_BRANCHES: 2.5,
                     Signal.BRANCH_MISS: 2.5, Signal.CALLS: 2.5,
                     Signal.RETURNS: 2.5},
        "simd": {Signal.SIMD_OPS: 2.5, Signal.MUL_OPS: 2.0,
                 Signal.CRYPTO_OPS: 2.5},
        "fp": {Signal.FP_OPS: 2.5, Signal.X87_OPS: 2.5,
               Signal.DIV_OPS: 2.5},
        "cache": {Signal.L1D_MISS: 3.0, Signal.L2_ACCESS: 3.0,
                  Signal.L2_MISS: 3.0, Signal.LLC_ACCESS: 3.0,
                  Signal.LLC_MISS: 3.0, Signal.MEM_READS: 3.0,
                  Signal.MAB_ALLOC: 3.0, Signal.CACHE_FLUSHES: 2.0,
                  Signal.PREFETCHES: 2.0},
    }
    for scales in emphasis.values():
        component = base.copy()
        for signal, scale in scales.items():
            component[signal] *= scale
        # Re-derive the cycle cost for the emphasized mix.
        component[Signal.CYCLES] = (component[Signal.UOPS] / 4.0
                                    + 10.0 * component[Signal.L1D_MISS]
                                    + 30.0 * component[Signal.L2_MISS]
                                    + 140.0 * component[Signal.LLC_MISS]
                                    + 16.0 * component[Signal.BRANCH_MISS])
        components.append(component)
    return np.stack(components)


def default_noise_segment() -> np.ndarray:
    """A representative stacked-gadget signal profile (per repetition).

    Used when no fuzzing campaign output is supplied: a uop-dense block
    (cheap ALU/SIMD work keeps cycles-per-count low) that still touches
    every guest-visible signal family, so all vulnerable events are
    perturbed. ``Signal.CYCLES`` holds the per-repetition cycle cost.
    """
    segment = zero_signals()
    segment[Signal.INSTRUCTIONS] = 96.0
    segment[Signal.UOPS] = 128.0
    segment[Signal.LOADS] = 18.0
    segment[Signal.STORES] = 8.0
    segment[Signal.L1D_ACCESS] = 26.0
    segment[Signal.L1D_MISS] = 0.6
    segment[Signal.L2_ACCESS] = 0.6
    segment[Signal.L2_MISS] = 0.12
    segment[Signal.LLC_ACCESS] = 0.12
    segment[Signal.LLC_MISS] = 0.05
    segment[Signal.MEM_READS] = 0.05
    segment[Signal.MEM_WRITES] = 0.02
    segment[Signal.MAB_ALLOC] = 0.6
    segment[Signal.BRANCHES] = 12.0
    segment[Signal.COND_BRANCHES] = 10.0
    segment[Signal.BRANCH_MISS] = 0.15
    segment[Signal.CALLS] = 0.8
    segment[Signal.RETURNS] = 0.8
    segment[Signal.ITLB_MISS] = 0.01
    segment[Signal.DTLB_MISS] = 0.06
    segment[Signal.FP_OPS] = 14.0
    segment[Signal.SIMD_OPS] = 20.0
    segment[Signal.X87_OPS] = 2.0
    segment[Signal.DIV_OPS] = 0.3
    segment[Signal.MUL_OPS] = 5.0
    segment[Signal.BIT_OPS] = 28.0
    segment[Signal.CRYPTO_OPS] = 1.0
    segment[Signal.STACK_OPS] = 3.0
    segment[Signal.NOP_OPS] = 4.0
    segment[Signal.PREFETCHES] = 1.0
    segment[Signal.CACHE_FLUSHES] = 1.5
    segment[Signal.SERIALIZING] = 0.05
    segment[Signal.TLB_FLUSHES] = 0.01
    # Cycle cost: throughput-bound uops plus the (rare) miss penalties.
    segment[Signal.CYCLES] = (segment[Signal.UOPS] / 4.0
                              + 10.0 * segment[Signal.L1D_MISS]
                              + 30.0 * segment[Signal.L2_MISS]
                              + 140.0 * segment[Signal.LLC_MISS]
                              + 16.0 * segment[Signal.BRANCH_MISS])
    return segment


@dataclass
class InjectionReport:
    """Accounting for one obfuscated window."""

    repetitions: np.ndarray
    injected_reference_counts: np.ndarray
    injected_cycles: np.ndarray
    clipped_slices: int

    @property
    def total_reference_counts(self) -> float:
        return float(self.injected_reference_counts.sum())

    @property
    def total_cycles(self) -> float:
        return float(self.injected_cycles.sum())

    def latency_overhead(self, app_cycles: np.ndarray,
                         active_mask: np.ndarray | None = None) -> float:
        """Execution-time overhead: injected / application cycles.

        Injection is pinned to the protected vCPU, so the application
        is slowed only while it actually runs; ``active_mask`` selects
        those slices (all slices when omitted).
        """
        app_cycles = np.asarray(app_cycles, dtype=np.float64)
        if active_mask is None:
            active_mask = np.ones(len(app_cycles), dtype=bool)
        app = app_cycles[active_mask].sum()
        if app <= 0:
            return 0.0
        return float(self.injected_cycles[active_mask].sum() / app)

    def cpu_usage_overhead(self, slice_cycles: float) -> float:
        """Extra CPU utilization: injected cycles / core capacity."""
        capacity = slice_cycles * len(self.injected_cycles)
        if capacity <= 0:
            return 0.0
        return float(self.total_cycles / capacity)


class NoiseInjector:
    """Converts noise values (reference-event counts) into injections.

    Parameters
    ----------
    segment_signals:
        Per-repetition signal profile(s) of the covering gadget set:
        either one stacked vector ``(NUM_SIGNALS,)`` or a component
        stack ``(K, NUM_SIGNALS)`` — one row per gadget group. With
        components, every slice executes a *random mix* of groups, so
        the injected noise spans a K-dimensional subspace of event
        space instead of a fixed line an attacker could project out.
        (``Signal.CYCLES`` entries = per-repetition cycle costs.)
    reference_weights:
        The reference event's weight row; fixes the counts-per-
        repetition conversion.
    clip_bound:
        B_u: per-slice injected reference counts are clipped to
        [0, B_u] (noise cannot be negative — gadgets only add counts).
    """

    def __init__(self, segment_signals: np.ndarray,
                 reference_weights: np.ndarray,
                 clip_bound: float = np.inf,
                 rng: "int | np.random.Generator | None" = None) -> None:
        segment_signals = np.asarray(segment_signals, dtype=np.float64)
        reference_weights = np.asarray(reference_weights, dtype=np.float64)
        if segment_signals.ndim == 1:
            segment_signals = segment_signals[None, :]
        if segment_signals.ndim != 2 \
                or segment_signals.shape[1] != NUM_SIGNALS:
            raise ValueError(
                "segment_signals must be (NUM_SIGNALS,) or "
                "(K, NUM_SIGNALS)")
        if reference_weights.shape != (NUM_SIGNALS,):
            raise ValueError("reference_weights must be one weight row")
        if clip_bound <= 0:
            raise ValueError(f"clip_bound must be positive, got {clip_bound}")
        self.components = segment_signals
        component_counts = segment_signals @ reference_weights
        if np.any(component_counts <= 0):
            raise ValueError(
                "a gadget component does not move the reference event; "
                "pick a different covering set or reference event")
        self._component_reference_counts = component_counts
        self._component_cycles = segment_signals[:, Signal.CYCLES]
        self.clip_bound = float(clip_bound)
        self._rng = ensure_rng(rng)

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def segment_signals(self) -> np.ndarray:
        """Mean per-repetition profile (back-compat single-segment view)."""
        return self.components.mean(axis=0)

    @property
    def reference_counts_per_rep(self) -> float:
        """Mean reference counts per repetition across components."""
        return float(self._component_reference_counts.mean())

    @property
    def cycles_per_rep(self) -> float:
        """Mean cycle cost per repetition across components."""
        return float(self._component_cycles.mean())

    def inject(self, matrix: np.ndarray, noise_counts: np.ndarray
               ) -> tuple[np.ndarray, InjectionReport]:
        """Add gadget repetitions realizing ``noise_counts`` per slice.

        With multiple components each slice draws Dirichlet mixing
        weights, splits the (clipped) target counts across components,
        and rounds per-component repetitions. Returns the obfuscated
        signal matrix and the accounting report.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        noise_counts = np.asarray(noise_counts, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != NUM_SIGNALS:
            raise ValueError("matrix must be (T, NUM_SIGNALS)")
        if noise_counts.shape != (len(matrix),):
            raise ValueError("noise_counts must have one entry per slice")
        clipped = np.clip(noise_counts, 0.0, self.clip_bound)
        clipped_slices = int(((noise_counts < 0)
                              | (noise_counts > self.clip_bound)).sum())
        k = self.num_components
        if k == 1:
            mix = np.ones((len(matrix), 1))
        else:
            mix = self._rng.dirichlet(np.ones(k), size=len(matrix))
        # Per-component repetitions: split the count target by mix
        # weight, convert with each component's own counts-per-rep.
        per_component = np.round(
            clipped[:, None] * mix / self._component_reference_counts)
        injected = per_component @ self.components
        repetitions = per_component.sum(axis=1)
        report = InjectionReport(
            repetitions=repetitions,
            injected_reference_counts=per_component
            @ self._component_reference_counts,
            injected_cycles=per_component @ self._component_cycles,
            clipped_slices=clipped_slices)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("inject.windows").inc()
            registry.counter("inject.slices").inc(len(matrix))
            registry.counter("inject.clipped_slices").inc(clipped_slices)
            registry.counter("inject.repetitions").inc(
                float(repetitions.sum()))
            registry.counter("inject.cycles").inc(report.total_cycles)
            histogram = registry.histogram("inject.reps_per_slice",
                                           _REPS_BUCKETS)
            for value in repetitions:
                histogram.observe(float(value))
        return matrix + injected, report


class RandomNoiseInjector:
    """Uniform-random noise baseline (paper Fig. 11).

    Injects ``U(0, bound)`` reference counts per slice — no privacy
    guarantee, and empirically needs several times more noise than the
    DP mechanisms for the same attack degradation.
    """

    def __init__(self, injector: NoiseInjector, bound: float,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self.injector = injector
        self.bound = float(bound)
        self._rng = ensure_rng(rng)

    def obfuscate_matrix(self, matrix: np.ndarray, slice_s: float,
                         rng: "np.random.Generator | None" = None
                         ) -> np.ndarray:
        gen = rng if rng is not None else self._rng
        noise = gen.uniform(0.0, self.bound, size=len(matrix))
        obfuscated, self.last_report = self.injector.inject(matrix, noise)
        return obfuscated


class SecretTiedNoise:
    """Constant secret-dependent noise (paper Section IX-B extension).

    Against an attacker who averages many traces of the same secret, a
    constant per-secret offset cannot be averaged out. The offset is a
    deterministic keyed hash of the secret, so re-runs of the same
    secret always add the same counts.
    """

    def __init__(self, injector: NoiseInjector, scale: float,
                 key: int = 0x5EC12E7) -> None:
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        self.injector = injector
        self.scale = float(scale)
        self.key = key

    def offset_for(self, secret) -> float:
        """Per-slice constant reference counts for ``secret``."""
        import zlib
        digest = zlib.crc32(f"{self.key}:{secret!r}".encode("utf-8"))
        return self.scale * (digest / 2**32)

    def obfuscate_matrix_for_secret(self, matrix: np.ndarray,
                                    secret) -> np.ndarray:
        """Add the secret's constant offset to every slice."""
        offset = self.offset_for(secret)
        noise = np.full(len(matrix), offset)
        obfuscated, self.last_report = self.injector.inject(matrix, noise)
        return obfuscated
