"""The in-guest kernel module and its netlink channel (paper Fig. 7).

The kernel module is the controller: it receives the customer's launch
signal, wakes the userspace daemon, and — when the d* mechanism is
selected — reads the live HPC values with RDPMC and streams them to the
daemon over a netlink socket (noise generation is computation-heavy and
stays in userspace).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.resilience import runtime as resilience
from repro.resilience.faults import InjectedFault
from repro.telemetry import runtime as telemetry


class KernelModuleCrashed(RuntimeError):
    """The kernel module died mid-read (``kernel_module.read`` fault).

    The module marks itself not-running before raising, so every later
    read fails fast until :meth:`KernelModule.restart` re-arms it.
    """


@dataclass(frozen=True)
class HpcSample:
    """One RDPMC reading forwarded to the daemon."""

    slice_index: int
    value: float


class NetlinkChannel:
    """An in-guest kernel->user message queue (netlink socket model)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[HpcSample] = deque()
        self.dropped = 0

    def send(self, sample: HpcSample) -> bool:
        """Enqueue a sample; drops (and counts) on overflow."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            telemetry.metrics().counter("kernel.samples_dropped").inc()
            return False
        self._queue.append(sample)
        return True

    def receive(self) -> HpcSample | None:
        """Dequeue the oldest sample, or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def drain(self) -> list[HpcSample]:
        """Dequeue everything."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)


class KernelModule:
    """Controller side of the Event Obfuscator."""

    def __init__(self, channel: NetlinkChannel | None = None) -> None:
        self.channel = channel or NetlinkChannel()
        self.running = False
        self.monitor_hpcs = False
        self._slice_index = 0
        self.restarts = 0

    def launch(self, monitor_hpcs: bool) -> None:
        """Customer launch signal: wake the daemon, start monitoring.

        ``monitor_hpcs`` is True for the d* mechanism (it needs live
        values) and False for Laplace.
        """
        self.running = True
        self.monitor_hpcs = monitor_hpcs
        self._slice_index = 0

    def stop(self) -> None:
        """Stop the protection service."""
        self.running = False

    def restart(self) -> None:
        """Re-arm after a crash *without* resetting the d* slice state.

        Unlike :meth:`launch`, the monitoring flag and the slice index
        are preserved: the restarted module resumes the reconstruction
        exactly where the crash interrupted it, so the daemon's noise
        sequence is identical to a fault-free run.
        """
        if not self.running:
            self.restarts += 1
            telemetry.metrics().counter("kernel.restarts").inc()
        self.running = True

    def on_hpc_read(self, value: float) -> None:
        """RDPMC tick: forward the reading to the daemon when needed.

        A ``kernel_module.read`` fault crashes the module: nothing is
        forwarded (the slice index does not advance, so a retry after
        :meth:`restart` re-reads the same slice) and every read raises
        :class:`KernelModuleCrashed` until the module is restarted.
        """
        if not self.running:
            raise RuntimeError("kernel module not launched")
        try:
            resilience.check("kernel_module.read", key=self._slice_index)
        except InjectedFault as exc:
            self.running = False
            raise KernelModuleCrashed(
                f"kernel module crashed reading slice "
                f"{self._slice_index}") from exc
        telemetry.metrics().counter("kernel.hpc_reads").inc()
        if self.monitor_hpcs:
            self.channel.send(HpcSample(self._slice_index, float(value)))
        self._slice_index += 1
