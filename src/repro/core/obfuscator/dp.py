"""Differential-privacy mechanisms (paper Section VII-B).

Two mechanisms generate the per-slice noise:

- **Laplace**: x~[t] = x[t] + Lap(Delta/epsilon) — satisfies
  epsilon-DP (paper Theorem 1). Simple, stateless, suited even to a
  threat model where the host manipulates the RDPMC reads.
- **d***: the binary-tree mechanism of Chan et al., using the distance
  metric d*(x, x') = sum_t |(x[t]-x[t-1]) - (x'[t]-x'[t-1])|. The noisy
  value is reconstructed as x~[t] = x~[G(t)] + (x[t] - x[G(t)]) + r_t
  with G and the noise scales of paper Eq. 4/5 — satisfies
  (d*, 2*epsilon)-privacy (paper Theorem 2). Correlated noise, stronger
  protection for time series at equal budget, but needs live HPC values.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.utils.rng import ensure_rng


def laplace_sample(scale: float, rng: np.random.Generator,
                   size: "int | tuple | None" = None) -> "float | np.ndarray":
    """Draw Laplace noise by inverse-CDF transform of uniforms.

    The paper's daemon transforms uniform draws directly because
    "using library APIs introduces much longer latency"; we follow the
    same construction: u ~ U(-1/2, 1/2), x = -b * sign(u) * ln(1-2|u|).
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if scale == 0:
        return 0.0 if size is None else np.zeros(size)
    u = rng.random(size) - 0.5
    return -scale * np.sign(u) * np.log1p(-2.0 * np.abs(u))


class DpMechanism(abc.ABC):
    """Common interface: a per-slice noise sequence for a value trace."""

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)

    @abc.abstractmethod
    def noise_sequence(self, values: np.ndarray,
                       rng: "int | np.random.Generator | None" = None
                       ) -> np.ndarray:
        """Noise r[t] such that x~[t] = x[t] + r[t], for t = 0..T-1."""

    @property
    @abc.abstractmethod
    def privacy_guarantee(self) -> str:
        """Human-readable statement of the proved guarantee."""


class LaplaceMechanism(DpMechanism):
    """i.i.d. Laplace noise: epsilon-DP (paper Theorem 1)."""

    def noise_sequence(self, values: np.ndarray,
                       rng: "int | np.random.Generator | None" = None
                       ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        gen = ensure_rng(rng)
        scale = self.sensitivity / self.epsilon
        return np.asarray(laplace_sample(scale, gen, size=values.shape))

    @property
    def privacy_guarantee(self) -> str:
        return f"{self.epsilon:g}-differential privacy (Laplace mechanism)"


def largest_dividing_power_of_two(t: int) -> int:
    """D(t): the largest power of two dividing t (t >= 1)."""
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    return t & (-t)


def dstar_parent(t: int) -> int:
    """G(t) of paper Eq. 4 (1-indexed time)."""
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    d = largest_dividing_power_of_two(t)
    if t == 1:
        return 0
    if t == d:  # t is a power of two >= 2
        return t // 2
    return t - d


class DstarMechanism(DpMechanism):
    """Binary-tree d* mechanism: (d*, 2*epsilon)-privacy (Theorem 2).

    ``noise_sequence`` consumes the *actual* trace values because the
    reconstruction is anchored at G(t) — this is why the paper's kernel
    module must stream live RDPMC readings to the daemon.
    """

    def noise_scale_at(self, t: int) -> float:
        """Laplace scale for r_t (paper Eq. 5, 1-indexed t)."""
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        if t == largest_dividing_power_of_two(t):
            return self.sensitivity / self.epsilon
        return self.sensitivity * math.floor(math.log2(t)) / self.epsilon

    def noise_sequence(self, values: np.ndarray,
                       rng: "int | np.random.Generator | None" = None
                       ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        gen = ensure_rng(rng)
        t_len = len(values)
        noisy = np.empty(t_len + 1)  # index 0 is the anchor x~[0] = x[0]
        padded = np.empty(t_len + 1)
        padded[0] = values[0] if t_len else 0.0
        padded[1:] = values
        noisy[0] = padded[0]
        for t in range(1, t_len + 1):
            parent = dstar_parent(t)
            r_t = float(laplace_sample(self.noise_scale_at(t), gen))
            noisy[t] = noisy[parent] + (padded[t] - padded[parent]) + r_t
        return noisy[1:] - padded[1:]

    @property
    def privacy_guarantee(self) -> str:
        return (f"(d*, {2 * self.epsilon:g})-privacy "
                f"(binary-tree d* mechanism)")
