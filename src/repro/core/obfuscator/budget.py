"""Privacy-budget accounting across a monitoring window.

The paper states per-slice guarantees: Laplace noise gives each slice
ε-DP, and the d* mechanism gives the whole sequence (d*, 2ε)-privacy.
A monitoring window contains thousands of slices, so the *composed*
guarantee of the Laplace mechanism over the window is weaker than the
per-slice ε suggests. This module makes that explicit: sequential
composition (T·ε) and the advanced composition bound of Dwork,
Rothblum & Vadhan (2010), so a deployment can state exactly what is
guaranteed for a full trace.

Every :meth:`PrivacyAccountant.record` call also feeds the telemetry
ε-ledger (a no-op unless telemetry is configured), and accountants
serialize to plain dicts so budget accounting can be checkpointed and
restored across a crash instead of silently resetting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.telemetry import runtime as _telemetry


class BudgetExhausted(RuntimeError):
    """Raised when a release would push composed ε past the cap.

    Mirrors :class:`repro.core.obfuscator.noise.NoiseExhausted`: the
    fail-closed answer to running out of budget is to refuse the
    release, never to serve an unnoised (or under-accounted) value.
    """


def sequential_composition(epsilon: float, releases: int) -> float:
    """Basic composition: ``releases`` ε-DP outputs are (T·ε)-DP."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if releases < 1:
        raise ValueError(f"releases must be >= 1, got {releases}")
    return epsilon * releases


def advanced_composition(epsilon: float, releases: int,
                         delta: float = 1e-6) -> float:
    """Advanced composition: the (ε', T·0+δ)-DP bound over T releases.

    ε' = sqrt(2 T ln(1/δ)) ε + T ε (e^ε − 1); tighter than T·ε when
    ε is small and T is large.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if releases < 1:
        raise ValueError(f"releases must be >= 1, got {releases}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return (math.sqrt(2.0 * releases * math.log(1.0 / delta)) * epsilon
            + releases * epsilon * (math.exp(epsilon) - 1.0))


@dataclass
class PrivacyAccountant:
    """Tracks the privacy budget consumed by released slices.

    Parameters
    ----------
    per_slice_epsilon:
        The ε of each slice's Laplace release.
    delta:
        Failure probability for the advanced-composition statement.
    epsilon_cap:
        Hard quota on the *basic* composed ε ``releases ·
        per_slice_epsilon``. Checked against the basic bound because it
        is monotone in ``releases`` (the advanced bound can cross back
        under it), so an admitted window can never un-exhaust the
        budget. ``inf`` (the default) disables the cap.
    """

    per_slice_epsilon: float
    delta: float = 1e-6
    epsilon_cap: float = math.inf
    releases: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.per_slice_epsilon <= 0:
            raise ValueError("per_slice_epsilon must be positive")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.epsilon_cap <= 0:
            raise ValueError("epsilon_cap must be positive")

    def would_exceed(self, slices: int = 1) -> bool:
        """Whether recording ``slices`` more releases would break the cap."""
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        if math.isinf(self.epsilon_cap):
            return False
        projected = sequential_composition(self.per_slice_epsilon,
                                           self.releases + slices)
        return projected > self.epsilon_cap

    @property
    def remaining_slices(self) -> "int | None":
        """Slices left under the cap, or ``None`` when uncapped."""
        if math.isinf(self.epsilon_cap):
            return None
        total = int(math.floor(self.epsilon_cap / self.per_slice_epsilon
                               + 1e-9))
        return max(0, total - self.releases)

    @property
    def exhausted(self) -> bool:
        """Whether not even one more slice fits under the cap."""
        return self.would_exceed(1)

    def record(self, slices: int = 1) -> None:
        """Record ``slices`` additional releases (and feed the ε-ledger).

        Raises :class:`BudgetExhausted` — recording nothing — when the
        releases would push basic composed ε past ``epsilon_cap``.
        """
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        if self.would_exceed(slices):
            raise BudgetExhausted(
                f"recording {slices} slice(s) at eps="
                f"{self.per_slice_epsilon:g} would exceed the cap "
                f"{self.epsilon_cap:g} (composed eps now "
                f"{self.basic_epsilon:g})")
        self.releases += slices
        _telemetry.ledger().record_release(self, slices)

    @property
    def basic_epsilon(self) -> float:
        """Sequentially composed ε of everything released so far."""
        if self.releases == 0:
            return 0.0
        return sequential_composition(self.per_slice_epsilon, self.releases)

    @property
    def advanced_epsilon(self) -> float:
        """Advanced-composition ε (valid with probability 1 − δ)."""
        if self.releases == 0:
            return 0.0
        return advanced_composition(self.per_slice_epsilon, self.releases,
                                    self.delta)

    @property
    def tightest_epsilon(self) -> float:
        """The tighter of the two composed bounds."""
        if self.releases == 0:
            return 0.0
        return min(self.basic_epsilon, self.advanced_epsilon)

    @property
    def composition_bound(self) -> str:
        """Which composition theorem currently gives the tighter ε."""
        if self.releases == 0:
            return "none"
        return ("advanced" if self.tightest_epsilon == self.advanced_epsilon
                else "basic")

    def statement(self) -> str:
        """Human-readable guarantee for the released window."""
        if self.releases == 0:
            return "no slices released; budget untouched"
        return (f"{self.releases} slices at eps={self.per_slice_epsilon:g} "
                f"each: window guarantee ({self.tightest_epsilon:.4g}, "
                f"{self.delta:g})-DP via {self.composition_bound} "
                f"composition")

    # -- checkpoint round trip -----------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict state for checkpoints and artifacts.

        An uncapped accountant serializes ``epsilon_cap`` as ``None``
        so the payload stays strict-JSON (no ``Infinity`` literal).
        """
        return {"per_slice_epsilon": self.per_slice_epsilon,
                "delta": self.delta, "releases": self.releases,
                "epsilon_cap": (None if math.isinf(self.epsilon_cap)
                                else self.epsilon_cap)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PrivacyAccountant":
        """Rebuild an accountant, restoring its released-slice count."""
        cap = payload.get("epsilon_cap")
        accountant = cls(
            per_slice_epsilon=float(payload["per_slice_epsilon"]),
            delta=float(payload.get("delta", 1e-6)),
            epsilon_cap=(math.inf if cap is None else float(cap)))
        releases = int(payload.get("releases", 0))
        if releases < 0:
            raise ValueError(f"releases must be >= 0, got {releases}")
        # Restore directly: the restored slices were already accounted
        # (and ledgered) by the run that checkpointed them.
        accountant.releases = releases
        return accountant
