"""The Event Obfuscator facade.

Wires kernel module, daemon, mechanism and injector together, estimates
the DP sensitivity from profiling traces, and exposes the
``obfuscate_matrix`` hook that the trace collector (i.e. the guest's
execution flow) calls per sampling window.
"""

from __future__ import annotations

import numpy as np

from repro.core.obfuscator.budget import PrivacyAccountant
from repro.core.obfuscator.daemon import UserspaceDaemon
from repro.core.obfuscator.dp import DpMechanism, DstarMechanism, LaplaceMechanism
from repro.core.obfuscator.injector import (
    InjectionReport, NoiseInjector, default_noise_components)
from repro.core.obfuscator.kernel_module import KernelModule
from repro.core.obfuscator.noise import NoiseCalculator, SupplierFn
from repro.cpu.events import EventCatalog, processor_catalog
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng


def estimate_sensitivity(traces: np.ndarray, labels: np.ndarray,
                         mode: str = "mean-gap") -> float:
    """DP sensitivity Delta from clean profiling traces.

    ``traces`` is (N, T) reference-event values, ``labels`` the secret
    per trace.

    ``mode="mean-gap"`` — the largest per-slice gap between any two
    secrets' *mean* traces. Right for workloads whose secrets shift
    sustained activity levels (website fingerprints).

    ``mode="adjacent-peak"`` — the per-trace dynamic range (max slice
    value minus the 10th-percentile baseline), taken as the median
    within each class and the max across classes. Right for transient
    workloads: adjacent secrets (K vs K+1 keystrokes) differ by a full
    activity burst at some instant, which position-averaged means
    drastically underestimate — and which global percentiles miss when
    bursts are sparse.
    """
    traces = np.asarray(traces, dtype=np.float64)
    labels = np.asarray(labels)
    if traces.ndim != 2 or len(traces) != len(labels):
        raise ValueError("traces must be (N, T) aligned with labels")
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("need at least two secrets to estimate sensitivity")
    if mode == "mean-gap":
        means = np.stack([traces[labels == c].mean(axis=0)
                          for c in classes])
        gap = means.max(axis=0) - means.min(axis=0)
        # 98th percentile over slices: the max is dominated by
        # finite-sample noise at phase boundaries when the per-class
        # means come from few runs.
        return float(np.percentile(gap, 98))
    if mode == "adjacent-peak":
        ranges = traces.max(axis=1) - np.percentile(traces, 10, axis=1)
        per_class = [float(np.median(ranges[labels == c]))
                     for c in classes]
        return max(max(per_class), 1e-12)
    raise ValueError(
        f"mode must be 'mean-gap' or 'adjacent-peak', got {mode!r}")


class EventObfuscator:
    """The online defense deployed inside the victim VM.

    Parameters
    ----------
    mechanism:
        ``"laplace"`` or ``"dstar"`` (or a ready
        :class:`~repro.core.obfuscator.dp.DpMechanism`).
    epsilon:
        Privacy budget.
    sensitivity:
        Delta in reference-event counts per slice; estimate it with
        :func:`estimate_sensitivity` from profiling traces.
    reference_event:
        Event whose counts calibrate the injection (default: the
        paper's RETIRED_UOPS).
    segment_signals:
        Per-repetition signal profile(s) of the covering gadget set —
        one vector or a (K, NUM_SIGNALS) component stack (default:
        :func:`default_noise_components`, six diverse gadget groups;
        fuzzing campaigns supply their own per-gadget profiles via
        :meth:`repro.core.aegis.Aegis.build_obfuscator`).
    clip_bound:
        B_u: per-slice injected counts are clipped to [0, B_u].
    accountant:
        A restored :class:`PrivacyAccountant` carrying budget already
        spent by a previous process (e.g. loaded from a deployment
        artifact after a crash); a fresh one is created when omitted.
    noise_supplier:
        Optional external source backing the daemon's noise calculator
        (``supplier(count) -> ndarray``) — the fleet provisioner hands
        each tenant's obfuscator a supplier reading that tenant's
        precomputed buffer, keeping noise generation central while the
        fail-closed serving path stays stock.
    """

    def __init__(self, mechanism: "str | DpMechanism" = "laplace",
                 epsilon: float = 1.0, sensitivity: float = 1.0,
                 reference_event: str = "RETIRED_UOPS",
                 processor_model: str = "amd-epyc-7252",
                 catalog: EventCatalog | None = None,
                 segment_signals: np.ndarray | None = None,
                 clip_bound: float = np.inf,
                 accountant: PrivacyAccountant | None = None,
                 noise_supplier: "SupplierFn | None" = None,
                 rng: "int | np.random.Generator | None" = None) -> None:
        self.catalog = catalog or processor_catalog(processor_model)
        self.reference_event = reference_event
        self._reference_index = self.catalog.index_of(reference_event)
        self._reference_weights = self.catalog.weights[self._reference_index]
        if isinstance(mechanism, str):
            if mechanism == "laplace":
                mechanism = LaplaceMechanism(epsilon, sensitivity)
            elif mechanism == "dstar":
                mechanism = DstarMechanism(epsilon, sensitivity)
            else:
                raise ValueError(
                    f"mechanism must be 'laplace' or 'dstar', got "
                    f"{mechanism!r}")
        self.mechanism = mechanism
        segment = (segment_signals if segment_signals is not None
                   else default_noise_components())
        self._rng = ensure_rng(rng)
        self.injector = NoiseInjector(
            segment, self._reference_weights, clip_bound=clip_bound,
            rng=np.random.default_rng(int(self._rng.integers(2**63))))
        self.kernel_module = KernelModule()
        calculator = None
        if noise_supplier is not None:
            calculator = NoiseCalculator(
                self.mechanism.sensitivity / self.mechanism.epsilon,
                rng=self._rng, supplier=noise_supplier)
        self.daemon = UserspaceDaemon(self.mechanism, self.injector,
                                      self.kernel_module, rng=self._rng,
                                      calculator=calculator)
        if accountant is not None \
                and accountant.per_slice_epsilon != self.mechanism.epsilon:
            raise ValueError(
                f"restored accountant was calibrated for eps="
                f"{accountant.per_slice_epsilon:g} per slice, but the "
                f"mechanism releases at eps={self.mechanism.epsilon:g}")
        self.accountant = accountant if accountant is not None \
            else PrivacyAccountant(per_slice_epsilon=self.mechanism.epsilon)
        telemetry.ledger().sync(self.accountant)
        self.last_report: InjectionReport | None = None
        self.reports: list[InjectionReport] = []

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    @property
    def privacy_guarantee(self) -> str:
        return self.mechanism.privacy_guarantee

    def obfuscate_matrix(self, matrix: np.ndarray, slice_s: float,
                         rng: "np.random.Generator | None" = None
                         ) -> np.ndarray:
        """Inject DP noise into one window of guest signal slices.

        This is the hook the guest's execution flow (the trace
        collector) calls; the hypervisor only ever sees counters
        derived from the returned matrix.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        with telemetry.tracer().span("obfuscate.window",
                                     slices=len(matrix)):
            reference = matrix @ self._reference_weights
            obfuscated = self.daemon.obfuscate(matrix, reference)
        if len(matrix):
            self.accountant.record(len(matrix))
        self.last_report = self.daemon.last_report
        if self.last_report is not None:
            self.reports.append(self.last_report)
        return obfuscated

    def reset_reports(self) -> None:
        """Clear accumulated injection accounting."""
        self.reports.clear()
        self.last_report = None

    def mean_latency_overhead(self, app_cycles_per_window: np.ndarray,
                              active_masks: "list[np.ndarray] | None" = None
                              ) -> float:
        """Average latency overhead across the recorded windows."""
        if not self.reports:
            return 0.0
        overheads = []
        for i, report in enumerate(self.reports):
            mask = active_masks[i] if active_masks is not None else None
            overheads.append(report.latency_overhead(
                app_cycles_per_window[i], active_mask=mask))
        return float(np.mean(overheads))
