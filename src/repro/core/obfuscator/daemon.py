"""The userspace daemon (paper Fig. 7).

Two components: the *noise calculator* (buffered Laplace draws, or the
d* reconstruction fed by HPC samples streamed from the kernel module)
and the *noise injector* (gadget repetitions on the protected vCPU).
"""

from __future__ import annotations

import numpy as np

from repro.core.obfuscator.dp import DpMechanism, DstarMechanism, LaplaceMechanism
from repro.core.obfuscator.injector import InjectionReport, NoiseInjector
from repro.core.obfuscator.kernel_module import KernelModule
from repro.core.obfuscator.noise import NoiseCalculator
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng


class UserspaceDaemon:
    """Computes per-slice noise and drives the injector.

    Parameters
    ----------
    mechanism:
        The DP mechanism generating the noise.
    injector:
        Converts noise counts into gadget repetitions.
    kernel_module:
        Source of live HPC samples (required by the d* mechanism).
    """

    def __init__(self, mechanism: DpMechanism, injector: NoiseInjector,
                 kernel_module: KernelModule | None = None,
                 rng: "int | np.random.Generator | None" = None) -> None:
        self.mechanism = mechanism
        self.injector = injector
        self.kernel_module = kernel_module or KernelModule()
        self._rng = ensure_rng(rng)
        # The Laplace path pre-buffers draws at the mechanism's scale.
        scale = mechanism.sensitivity / mechanism.epsilon
        self.calculator = NoiseCalculator(scale, rng=self._rng)
        self.last_report: InjectionReport | None = None

    @property
    def needs_hpc_monitoring(self) -> bool:
        """d* anchors its reconstruction on live values; Laplace doesn't."""
        return isinstance(self.mechanism, DstarMechanism)

    def start(self) -> None:
        """Receive the kernel module's launch signal."""
        self.kernel_module.launch(monitor_hpcs=self.needs_hpc_monitoring)

    def compute_noise(self, reference_values: np.ndarray) -> np.ndarray:
        """Per-slice noise for one window of reference-event values."""
        with telemetry.tracer().span(
                "obfuscate.noise",
                mechanism=type(self.mechanism).__name__):
            return self._compute_noise(reference_values)

    def _compute_noise(self, reference_values: np.ndarray) -> np.ndarray:
        reference_values = np.asarray(reference_values, dtype=np.float64)
        if self.needs_hpc_monitoring:
            if not self.kernel_module.running:
                self.start()
            # Stream the readings through the netlink channel, exactly
            # as the kernel module would deliver them.
            for value in reference_values:
                self.kernel_module.on_hpc_read(float(value))
            samples = self.kernel_module.channel.drain()
            values = np.array([s.value for s in samples])
            return self.mechanism.noise_sequence(values, rng=self._rng)
        if isinstance(self.mechanism, LaplaceMechanism):
            # Serve Laplace noise from the precomputed buffer.
            return self.calculator.take(len(reference_values))
        return self.mechanism.noise_sequence(reference_values, rng=self._rng)

    def obfuscate(self, matrix: np.ndarray,
                  reference_values: np.ndarray) -> np.ndarray:
        """Compute noise for the window and inject it."""
        noise = self.compute_noise(reference_values)
        with telemetry.tracer().span("obfuscate.inject"):
            obfuscated, self.last_report = self.injector.inject(matrix,
                                                                noise)
        return obfuscated
