"""The userspace daemon (paper Fig. 7).

Two components: the *noise calculator* (buffered Laplace draws, or the
d* reconstruction fed by HPC samples streamed from the kernel module)
and the *noise injector* (gadget repetitions on the protected vCPU).
"""

from __future__ import annotations

import numpy as np

import logging

from repro.core.obfuscator.dp import DpMechanism, DstarMechanism, LaplaceMechanism
from repro.core.obfuscator.injector import InjectionReport, NoiseInjector
from repro.core.obfuscator.kernel_module import KernelModule, KernelModuleCrashed
from repro.core.obfuscator.noise import NoiseCalculator
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng

logger = logging.getLogger(__name__)


class UserspaceDaemon:
    """Computes per-slice noise and drives the injector.

    Parameters
    ----------
    mechanism:
        The DP mechanism generating the noise.
    injector:
        Converts noise counts into gadget repetitions.
    kernel_module:
        Source of live HPC samples (required by the d* mechanism).
    calculator:
        Optional replacement for the default buffered
        :class:`NoiseCalculator` — e.g. one whose ``supplier`` pulls
        from a fleet-provisioned per-tenant buffer. The daemon uses it
        as-is; it must serve draws at the mechanism's scale.
    """

    def __init__(self, mechanism: DpMechanism, injector: NoiseInjector,
                 kernel_module: KernelModule | None = None,
                 rng: "int | np.random.Generator | None" = None,
                 calculator: "NoiseCalculator | None" = None) -> None:
        self.mechanism = mechanism
        self.injector = injector
        self.kernel_module = kernel_module or KernelModule()
        self._rng = ensure_rng(rng)
        # The Laplace path pre-buffers draws at the mechanism's scale.
        scale = mechanism.sensitivity / mechanism.epsilon
        self.calculator = (calculator if calculator is not None
                           else NoiseCalculator(scale, rng=self._rng))
        self.last_report: InjectionReport | None = None
        #: Logical heartbeat the watchdog monitors: bumps once per
        #: noise-window computation, so a wedged daemon stops beating.
        self.heartbeat = 0
        self.restarts = 0

    @property
    def needs_hpc_monitoring(self) -> bool:
        """d* anchors its reconstruction on live values; Laplace doesn't."""
        return isinstance(self.mechanism, DstarMechanism)

    def start(self) -> None:
        """Receive the kernel module's launch signal."""
        self.kernel_module.launch(monitor_hpcs=self.needs_hpc_monitoring)

    def restart(self) -> None:
        """Watchdog entry point: recover a stale daemon in place.

        Re-arms the kernel module (preserving d* slice state) and drops
        the precomputed noise buffer — stale draws are discarded, never
        reused, and the buffer refills before the next release.
        """
        self.restarts += 1
        if self.needs_hpc_monitoring and not self.kernel_module.running:
            self._recover_kernel_module()
        self.calculator.rescale(self.calculator.scale)
        self.heartbeat += 1

    def _recover_kernel_module(self) -> None:
        """Bring a crashed kernel module back without losing d* state."""
        logger.warning("daemon: kernel module down; restarting it")
        self.kernel_module.restart()

    def _stream_sample(self, value: float) -> None:
        """Forward one RDPMC reading, surviving one module crash.

        A crashed read forwards nothing and does not advance the slice
        index, so retrying after recovery re-reads the same slice — the
        streamed sequence the mechanism sees is identical to a
        fault-free run. A second consecutive crash on the same slice
        propagates: the window is withheld (fail closed).
        """
        try:
            self.kernel_module.on_hpc_read(value)
        except KernelModuleCrashed:
            self._recover_kernel_module()
            self.kernel_module.on_hpc_read(value)

    def compute_noise(self, reference_values: np.ndarray) -> np.ndarray:
        """Per-slice noise for one window of reference-event values."""
        self.heartbeat += 1
        with telemetry.tracer().span(
                "obfuscate.noise",
                mechanism=type(self.mechanism).__name__):
            return self._compute_noise(reference_values)

    def _compute_noise(self, reference_values: np.ndarray) -> np.ndarray:
        reference_values = np.asarray(reference_values, dtype=np.float64)
        if self.needs_hpc_monitoring:
            if not self.kernel_module.running:
                self.start()
            # Stream the readings through the netlink channel, exactly
            # as the kernel module would deliver them.
            for value in reference_values:
                self._stream_sample(float(value))
            samples = self.kernel_module.channel.drain()
            values = np.array([s.value for s in samples])
            return self.mechanism.noise_sequence(values, rng=self._rng)
        if isinstance(self.mechanism, LaplaceMechanism):
            # Serve Laplace noise from the precomputed buffer.
            return self.calculator.take(len(reference_values))
        return self.mechanism.noise_sequence(reference_values, rng=self._rng)

    def obfuscate(self, matrix: np.ndarray,
                  reference_values: np.ndarray) -> np.ndarray:
        """Compute noise for the window and inject it."""
        noise = self.compute_noise(reference_values)
        with telemetry.tracer().span("obfuscate.inject"):
            obfuscated, self.last_report = self.injector.inject(matrix,
                                                                noise)
        return obfuscated
