"""Sharded, resumable fuzzing campaigns.

The paper's Event Fuzzer tests ~11.6M gadget pairs over hours; a
sequential :meth:`EventFuzzer.fuzz` cannot pause, resume, or scale out.
This module splits a gadget budget into deterministic shards and runs
the screening stage per shard, with three guarantees:

- **Partition invariance** — gadget *i*'s sampled instructions,
  measurement noise, and microarchitectural start state depend only on
  the campaign's root entropy and *i* (per-gadget RNG streams derived
  via ``SeedSequence`` spawn keys, plus a state reset + deterministic
  warm-up before each measurement). Any shard size, worker count, or
  execution order yields bit-identical screening results.
- **Resumability** — each completed shard is checkpointed as a JSON
  artifact; a campaign killed mid-run resumes from the checkpoint
  directory and produces the same report as an uninterrupted run.
  Corrupt or stale shard files are detected via a config fingerprint
  and transparently re-screened.
- **Shared code path** — the sequential :meth:`EventFuzzer.fuzz` and
  the parallel :class:`FuzzingCampaign` both drive :func:`screen_shard`
  and :func:`merge_screened`, then hand the merged candidate pool to
  the fuzzer's confirmation/filtering stages, so a 1-worker and an
  N-worker campaign with the same seed produce the identical covering
  set.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.cache import runtime as cache_runtime
from repro.cache.cache import CachedMeasurement
from repro.cache.fingerprint import (
    measurement_key,
    program_bytes,
    screening_config_digest,
)
from repro.core.fuzzer.cleanup import CleanupReport, InstructionCleaner
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import Gadget, GadgetGrammar
from repro.cpu import batch
from repro.cpu.core import Core
from repro.isa.catalog import shared_catalog
from repro.isa.legality import MICROARCH_PROFILES
from repro.isa.spec import InstructionSpec
from repro.resilience import runtime as resilience
from repro.resilience.faults import FaultPlan, corrupt_text
from repro.resilience.supervisor import (
    QuarantineRecord,
    ShardFailure,
    ShardSupervisor,
    SupervisorPolicy,
)
from repro.telemetry import runtime as telemetry
from repro.utils.rng import derive_stream

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.fuzzer.fuzzer import EventFuzzer, FuzzingReport

logger = logging.getLogger(__name__)

#: Default gadgets per shard. Small enough that a default 2000-gadget
#: budget yields several shards (parallelism, checkpoint granularity),
#: large enough that per-shard setup stays negligible.
DEFAULT_SHARD_SIZE = 256

#: Checkpoint artifact schema version.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of the gadget budget."""

    index: int
    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs to screen a shard, in plain types.

    Instances are pickled to worker processes and hashed into the
    checkpoint fingerprint, so every field is a builtin scalar/tuple.
    """

    processor_model: str
    microarch: str
    entropy: int
    unroll: int
    sequence_length: int
    empty_reset_prob: float
    event_indices: tuple[int, ...]
    thresholds: tuple[float, ...]


@dataclass
class ShardResult:
    """Screening output of one shard.

    ``screened`` maps event index to ``(gadget_index, delta)`` pairs in
    ascending gadget order — the merge is a pure concatenation.
    """

    index: int
    start: int
    count: int
    screened: dict[int, list[tuple[int, float]]]
    executions: int = 0
    elapsed_seconds: float = 0.0
    cpu_seconds: float = 0.0


class CampaignError(ValueError):
    """Invalid campaign configuration or unusable checkpoint state."""


def plan_shards(budget: int, shard_size: int) -> list[ShardSpec]:
    """Split ``budget`` gadgets into contiguous shards of ``shard_size``."""
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    shards = []
    for index, start in enumerate(range(0, budget, shard_size)):
        shards.append(ShardSpec(index=index, start=start,
                                count=min(shard_size, budget - start)))
    return shards


def gadget_stream(entropy: int, gadget_index: int) -> np.random.Generator:
    """The RNG stream owned by gadget ``gadget_index``.

    Derived from the campaign entropy with the gadget index as a
    ``SeedSequence`` spawn key (:func:`repro.utils.rng.derive_stream`):
    statistically independent across gadgets, and — unlike drawing
    per-shard seeds from a sequential stream — independent of how the
    budget is partitioned into shards.
    """
    return derive_stream(entropy, gadget_index)


# -- per-process caches ---------------------------------------------------
#
# Worker processes rebuild the (deterministic) catalog + cleanup once and
# reuse them for every shard they screen. Under the default fork start
# method on Linux they inherit the parent's already-populated cache and
# rebuild nothing.

_CLEANUP_CACHE: dict[str, CleanupReport] = {}


def default_cleanup(microarch_name: str) -> CleanupReport:
    """Process-cached cleanup of the shared catalog for a named profile.

    The ``fuzz.cleanup_builds`` counter ticks only on an actual build
    (a cache miss): under the fork start method workers inherit the
    parent's populated cache, so the counter is invariant to worker
    count — asserted by the telemetry worker-equivalence tests.
    """
    report = _CLEANUP_CACHE.get(microarch_name)
    if report is None:
        profile = MICROARCH_PROFILES[microarch_name]
        report = InstructionCleaner(shared_catalog(), profile).run()
        _CLEANUP_CACHE[microarch_name] = report
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fuzz.cleanup_builds").inc()
    return report


def materialize_gadget(config: ShardConfig, gadget_index: int,
                       legal: list[InstructionSpec] | None = None) -> Gadget:
    """Re-derive gadget ``gadget_index`` from its RNG stream.

    Checkpoints store gadget *indices*, not instruction sequences; the
    gadget is replayed from the same stream the screening stage used,
    so a resumed campaign confirms exactly the gadgets it screened.
    """
    if legal is None:
        legal = default_cleanup(config.microarch).legal
    grammar = GadgetGrammar(legal, sequence_length=config.sequence_length,
                            empty_reset_prob=config.empty_reset_prob, rng=0)
    return grammar.sample(rng=gadget_stream(config.entropy, gadget_index))


def screen_shard(config: ShardConfig, shard: ShardSpec) -> ShardResult:
    """Screen one shard of the budget. Pure in (config, shard).

    Each gadget is sampled, measured, and thresholded under its own RNG
    stream from a reset-then-warmed core, so the result is identical no
    matter which process runs the shard or what ran before it.

    When a measurement cache is active (:mod:`repro.cache.runtime`),
    each gadget's program is assembled and fingerprinted first — a hit
    replays the stored deltas bit for bit and skips the
    ``execute_program`` call entirely, a miss measures and stores. The
    key covers (program bytes, measurement config, per-gadget RNG
    stream id, repetition count), so any configuration change misses
    cleanly instead of replaying stale data.
    """
    wall = time.perf_counter()
    cpu = time.process_time()
    cache = cache_runtime.active()
    config_digest = screening_config_digest(config) if cache.enabled else ""
    with telemetry.tracer().span("fuzz.screen_shard", shard=shard.index,
                                 start=shard.start, count=shard.count):
        legal = default_cleanup(config.microarch).legal
        core = Core(config.processor_model, rng=0)
        harness = ExecutionHarness(core, unroll=config.unroll, rng=0)
        # The batch engine's archetype memo is scoped to one shard:
        # clearing here makes every measurement (and the batch.evals /
        # batch.fallback_scalar split) a pure function of the shard,
        # invariant to worker count, scheduling, and process history.
        batch.clear_memo()
        grammar = GadgetGrammar(
            legal, sequence_length=config.sequence_length,
            empty_reset_prob=config.empty_reset_prob, rng=0)
        events = np.asarray(config.event_indices, dtype=int)
        thresholds = np.asarray(config.thresholds, dtype=float)
        screened: dict[int, list[tuple[int, float]]] = {
            int(e): [] for e in events}
        candidates = 0
        for gadget_index in range(shard.start, shard.stop):
            stream = gadget_stream(config.entropy, gadget_index)
            gadget = grammar.sample(rng=stream)
            core.reset_microarch_state()
            harness.warm_measurement_state()
            harness.set_rng(stream)
            if cache.enabled:
                program = harness.build_program(
                    list(gadget.reset) + list(gadget.trigger),
                    repeats=config.unroll)
                key = measurement_key(
                    program_bytes(program), config_digest,
                    (config.entropy, gadget_index), config.unroll)
                cached = cache.get(key)
                if cached is not None:
                    deltas = cached.delta_array()
                else:
                    measured = harness.measure_program(program, events)
                    deltas = measured.deltas
                    cache.put(key, CachedMeasurement.from_measured(measured))
            else:
                # Reset + warm-up above put the core in the canonical
                # state, so the batch engine's archetype memo can serve
                # repeat gadget shapes without executing (bit-identical
                # to measure_gadget by the equivalence suite).
                deltas = harness.screen_measure(gadget, events).deltas
            for j in np.flatnonzero(deltas > thresholds):
                screened[int(events[j])].append(
                    (gadget_index, float(deltas[j])))
                candidates += 1
    registry = telemetry.metrics()
    if registry.enabled:
        registry.counter("fuzz.gadgets_screened").inc(shard.count)
        registry.counter("fuzz.candidates").inc(candidates)
        registry.counter("fuzz.executions").inc(harness.executions)
    return ShardResult(index=shard.index, start=shard.start,
                       count=shard.count, screened=screened,
                       executions=harness.executions,
                       elapsed_seconds=time.perf_counter() - wall,
                       cpu_seconds=time.process_time() - cpu)


def screen_shard_traced(config: ShardConfig, shard: ShardSpec,
                        trace_dir: "str | None" = None,
                        cache_dir: "str | None" = None,
                        fault_plan: "FaultPlan | None" = None,
                        attempt: int = 0,
                        sacrificial: bool = False) -> ShardResult:
    """Screen one shard under an isolated per-shard telemetry session.

    With a ``trace_dir``, the shard's spans and metrics land in
    ``trace-shard-NNNNN.jsonl`` / ``metrics-shard-NNNNN.json`` — the
    same files whether the shard runs in-process or on a pool worker —
    so the parent's deterministic merge is invariant to worker count.

    With a ``cache_dir``, a measurement-cache session is opened around
    the shard when the process has none active yet (pool workers under
    the spawn start method, or a campaign given an explicit directory):
    every worker's on-disk tier points at the same store, so shards
    warm each other across processes and runs.

    With a ``fault_plan``, the plan is armed for the duration of the
    shard (unless the process already has an armed injector — the
    in-process path under an ambient chaos session) and the
    ``campaign.shard`` fault point is hit before screening starts.
    ``attempt`` is the supervisor's retry counter for this shard —
    faults with ``times=N`` burn out after N attempts no matter which
    process runs the retry — and ``sacrificial`` marks pool workers,
    where ``kill``-mode faults are allowed to take the process down.
    """
    needs_cache = cache_dir is not None and not cache_runtime.enabled()
    needs_faults = fault_plan is not None and not resilience.armed()
    # Bisected sub-shards (index < 0) and retries get their own
    # telemetry files, so a failed attempt's fault.* counters survive
    # the successful retry and the merge stays collision-free.
    process = (f"shard-{shard.index:05d}" if shard.index >= 0
               else f"shard-sub-{shard.start:06d}")
    if attempt:
        process = f"{process}-r{attempt}"
    with (cache_runtime.session(cache_dir=cache_dir) if needs_cache
          else nullcontext()), \
         (resilience.session(fault_plan, sacrificial=sacrificial)
          if needs_faults else nullcontext()):
        if trace_dir is None:
            resilience.check("campaign.shard", key=shard.start,
                             attempt=attempt,
                             span=(shard.start, shard.stop))
            return screen_shard(config, shard)
        with telemetry.session(trace_dir=trace_dir, process=process):
            # Inside the session: an injected fault's telemetry is
            # flushed by the session teardown even when it raises.
            resilience.check("campaign.shard", key=shard.start,
                             attempt=attempt,
                             span=(shard.start, shard.stop))
            return screen_shard(config, shard)


def merge_screened(results: Iterable[ShardResult]
                   ) -> dict[int, list[tuple[int, float]]]:
    """Merge per-shard screening results into one candidate pool.

    A pure reduction: per-event lists are concatenated and ordered by
    gadget index, so the merge is associative, commutative, and
    invariant to how the budget was partitioned. Duplicate shard
    indices (e.g. a checkpoint plus a re-screened copy) collapse to one.
    """
    merged: dict[int, list[tuple[int, float]]] = {}
    seen: set[int] = set()
    for result in sorted(results, key=lambda r: r.start):
        if result.start in seen:
            continue
        seen.add(result.start)
        for event, pairs in result.screened.items():
            merged.setdefault(int(event), []).extend(
                (int(i), float(d)) for i, d in pairs)
    for pairs in merged.values():
        pairs.sort(key=lambda pair: pair[0])
    return merged


def critical_path_seconds(cpu_seconds: Iterable[float], workers: int) -> float:
    """Screening makespan on ``workers`` truly parallel cores.

    Longest-processing-time assignment of per-shard CPU costs — the
    wall-clock a multi-core host would see, and the honest scaling
    metric on CI hosts with fewer cores than workers.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for cost in sorted(cpu_seconds, reverse=True):
        loads[loads.index(min(loads))] += cost
    return max(loads)


# -- checkpoint artifacts -------------------------------------------------


def config_fingerprint(config: ShardConfig, budget: int,
                       shard_size: int) -> str:
    """Stable digest tying checkpoints to one campaign configuration."""
    payload = json.dumps({"config": asdict(config), "budget": budget,
                          "shard_size": shard_size,
                          "version": CHECKPOINT_VERSION}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def shard_checkpoint_path(checkpoint_dir: "str | Path",
                          shard_index: int) -> Path:
    return Path(checkpoint_dir) / f"shard-{shard_index:05d}.json"


def _fsync_file(fh) -> None:
    fh.flush()
    os.fsync(fh.fileno())


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename within it survives a power cut."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(fd)


def _checkpoint_generation(path: Path) -> int:
    """The generation of the checkpoint currently at ``path`` (0 if none)."""
    try:
        return int(json.loads(path.read_text(encoding="utf-8"))
                   .get("generation", 1))
    except (OSError, ValueError, TypeError, AttributeError):
        return 0


def save_shard_checkpoint(checkpoint_dir: "str | Path", result: ShardResult,
                          fingerprint: str) -> Path:
    """Durably persist one shard's screening result as JSON.

    The temp file is fsynced before the atomic rename (and the
    directory after it), so a crash mid-write can never leave a torn
    primary; the previous generation is kept as ``.bak``, so even a
    checkpoint damaged *after* the rename (bit rot, a torn write the
    ``checkpoint.write`` fault point simulates) rolls back to the
    last-known-good generation on resume instead of losing the shard.
    """
    path = shard_checkpoint_path(checkpoint_dir, result.index)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "generation": _checkpoint_generation(path) + 1,
        "index": result.index,
        "start": result.start,
        "count": result.count,
        "executions": result.executions,
        "elapsed_seconds": result.elapsed_seconds,
        "cpu_seconds": result.cpu_seconds,
        "screened": {str(event): [[i, d] for i, d in pairs]
                     for event, pairs in result.screened.items()},
    }
    body = json.dumps(payload)
    action = resilience.check("checkpoint.write", key=result.index)
    if action is not None and action.mode == "corrupt":
        body = corrupt_text(body, key=result.index)
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(body)
        _fsync_file(fh)
    if path.exists():
        os.replace(path, path.with_suffix(".json.bak"))
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


def _parse_shard_checkpoint(path: Path, shard: ShardSpec,
                            fingerprint: str) -> ShardResult | None:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if (payload["version"] != CHECKPOINT_VERSION
                or payload["fingerprint"] != fingerprint
                or payload["index"] != shard.index
                or payload["start"] != shard.start
                or payload["count"] != shard.count):
            return None
        screened = {
            int(event): [(int(i), float(d)) for i, d in pairs]
            for event, pairs in payload["screened"].items()}
        return ShardResult(index=shard.index, start=shard.start,
                           count=shard.count, screened=screened,
                           executions=int(payload["executions"]),
                           elapsed_seconds=float(payload["elapsed_seconds"]),
                           cpu_seconds=float(payload["cpu_seconds"]))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def load_shard_checkpoint(checkpoint_dir: "str | Path", shard: ShardSpec,
                          fingerprint: str) -> ShardResult | None:
    """Load a shard checkpoint, or ``None`` if missing/corrupt/stale.

    An unusable primary — unreadable file, truncated JSON, a
    fingerprint from a different campaign configuration, mismatched
    shard geometry — rolls back to the ``.bak`` previous generation
    (checkpoints of one fingerprint are interchangeable: screening is
    deterministic). Only when both generations are unusable does the
    shard read as "not checkpointed" and get re-screened.
    """
    path = shard_checkpoint_path(checkpoint_dir, shard.index)
    result = _parse_shard_checkpoint(path, shard, fingerprint)
    if result is not None:
        return result
    backup = _parse_shard_checkpoint(path.with_suffix(".json.bak"), shard,
                                     fingerprint)
    if backup is not None:
        logger.warning("shard %05d checkpoint unusable; rolled back to "
                       "previous generation", shard.index)
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("checkpoint.rollbacks").inc()
    return backup


def write_campaign_manifest(checkpoint_dir: "str | Path",
                            config: ShardConfig, budget: int,
                            shard_size: int, num_shards: int) -> Path:
    """Human-readable campaign descriptor next to the shard files."""
    path = Path(checkpoint_dir) / "campaign.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": config_fingerprint(config, budget, shard_size),
        "budget": budget,
        "shard_size": shard_size,
        "num_shards": num_shards,
        "processor_model": config.processor_model,
        "microarch": config.microarch,
        "entropy": config.entropy,
        "events": list(config.event_indices),
    }
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, indent=2))
        _fsync_file(fh)
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


# -- the campaign engine --------------------------------------------------


@dataclass
class CampaignStats:
    """Bookkeeping from the most recent :meth:`FuzzingCampaign.run`."""

    num_shards: int = 0
    resumed_shards: int = 0
    screened_shards: int = 0
    workers: int = 1
    shard_cpu_seconds: list[float] = field(default_factory=list)
    screening_wall_seconds: float = 0.0
    # -- resilience accounting (zero on a healthy run) -----------------
    shard_failures: list[ShardFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    bisections: int = 0
    pool_restarts: int = 0
    quarantined: list[QuarantineRecord] = field(default_factory=list)

    @property
    def quarantined_gadgets(self) -> list[int]:
        """Gadget indices excluded from the report by quarantine."""
        return [record.gadget_index for record in self.quarantined]

    def critical_path(self, workers: int | None = None) -> float:
        return critical_path_seconds(self.shard_cpu_seconds,
                                     workers or self.workers)


class FuzzingCampaign:
    """Runs an :class:`EventFuzzer` budget as a sharded campaign.

    Parameters
    ----------
    fuzzer:
        The configured fuzzer whose budget, RNG streams, and
        confirmation/filtering stages the campaign drives.
    workers:
        Worker processes for the screening stage. ``1`` screens shards
        in-process; either way the report is identical for a fixed
        fuzzer seed.
    checkpoint_dir:
        Directory for per-shard JSON checkpoints (created on demand).
        ``None`` disables checkpointing.
    resume:
        Load valid shard checkpoints from ``checkpoint_dir`` instead of
        re-screening them. Requires ``checkpoint_dir``.
    cache_dir:
        Directory for the shared on-disk measurement cache. Worker
        processes open a cache session against it per shard, so the
        cache survives resume and is shared across shards, workers, and
        repeated campaigns; a changed measurement configuration changes
        every cache key and therefore invalidates cleanly. ``None``
        falls back to the process-global cache runtime (which the CLI
        configures from ``--cache-dir``).
    shard_hook:
        Optional callback invoked with each freshly screened
        :class:`ShardResult` (after it is checkpointed) — progress
        reporting in the CLI, fault injection in the crash-resume tests.
    fault_plan:
        A :class:`~repro.resilience.faults.FaultPlan` to arm for the
        run (chaos testing): the campaign process arms it non-fatally
        and ships it to every shard worker, where ``kill``-mode faults
        may take the worker down.
    shard_timeout / max_retries:
        Shorthand for the matching
        :class:`~repro.resilience.supervisor.SupervisorPolicy` fields;
        ignored when an explicit ``supervisor_policy`` is given.
    supervisor_policy:
        Full retry/timeout/backoff policy for the shard supervisor.
    strategy:
        ``"grammar"`` (default) screens the budget by blind grammar
        sampling; ``"coverage"`` spends the same budget through the
        coverage-guided search loop (:mod:`repro.search`), feeding the
        responding gadgets into the identical confirmation/filtering
        stages.
    corpus_dir:
        Coverage strategy only: directory mirroring corpus admissions
        on disk (persistent across campaigns).
    search_options:
        Coverage strategy only: extra keyword arguments forwarded to
        :class:`~repro.search.engine.CoverageSearch` (e.g.
        ``target_events``, ``minimize``).
    """

    STRATEGIES = ("grammar", "coverage")

    def __init__(self, fuzzer: "EventFuzzer", workers: int = 1,
                 checkpoint_dir: "str | Path | None" = None,
                 resume: bool = False,
                 cache_dir: "str | Path | None" = None,
                 shard_hook: "Callable[[ShardResult], None] | None" = None,
                 fault_plan: "FaultPlan | None" = None,
                 shard_timeout: "float | None" = None,
                 max_retries: int = 2,
                 supervisor_policy: "SupervisorPolicy | None" = None,
                 strategy: str = "grammar",
                 corpus_dir: "str | Path | None" = None,
                 search_options: "dict | None" = None) -> None:
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if resume and checkpoint_dir is None:
            raise CampaignError("resume requires a checkpoint_dir")
        if strategy not in self.STRATEGIES:
            raise CampaignError(f"unknown strategy {strategy!r}; choose "
                                f"from {self.STRATEGIES}")
        if corpus_dir is not None and strategy != "coverage":
            raise CampaignError("corpus_dir requires strategy='coverage'")
        self.strategy = strategy
        self.corpus_dir = Path(corpus_dir) if corpus_dir is not None else None
        self.search_options = dict(search_options or {})
        self.search_result = None
        self.fuzzer = fuzzer
        self.workers = workers
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.resume = resume
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.shard_hook = shard_hook
        self.fault_plan = fault_plan
        if supervisor_policy is None:
            try:
                supervisor_policy = SupervisorPolicy(
                    shard_timeout=shard_timeout, max_retries=max_retries,
                    seed=fault_plan.seed if fault_plan is not None else 0)
            except ValueError as exc:
                raise CampaignError(str(exc)) from exc
        self.policy = supervisor_policy
        self.stats = CampaignStats()

    def _shard_cache_dir(self) -> "str | None":
        """The on-disk cache directory shards should attach to.

        An explicit ``cache_dir`` wins; otherwise an active process
        cache with a disk tier is forwarded so pool workers (which may
        not inherit it under the spawn start method) share the store.
        """
        if self.cache_dir is not None:
            return str(self.cache_dir)
        active = cache_runtime.active()
        if active.enabled and active.cache_dir is not None:
            return str(active.cache_dir)
        return None

    def run(self, event_indices: "np.ndarray | list[int]") -> "FuzzingReport":
        """Screen all shards (supervised, resumable), then confirm/filter.

        Completed shards are checkpointed as they finish, so an
        interrupted run loses at most the shards in flight; resuming
        re-screens only what is missing and yields the same report as
        an uninterrupted campaign. The screening fan-out runs under the
        shard supervisor: failed shards are retried with backoff,
        repeatedly lethal shards are bisected down to the offending
        gadget (quarantined rather than aborting the campaign), and a
        broken worker pool is rebuilt in place.
        """
        events = np.asarray(event_indices, dtype=int)
        if len(events) == 0:
            raise ValueError("event_indices must be non-empty")
        needs_faults = (self.fault_plan is not None
                        and not resilience.armed())
        with (resilience.session(self.fault_plan) if needs_faults
              else nullcontext()):
            if self.strategy == "coverage":
                return self._run_coverage(events)
            return self._run(events)

    def _run_coverage(self, events: np.ndarray) -> "FuzzingReport":
        """Spend the budget through the coverage-guided search loop.

        The search's responding gadgets become the screened candidate
        pool the fuzzer's confirmation/filtering stages consume — the
        report has the same shape as a grammar campaign, with the
        search result kept on ``self.search_result``.
        """
        from repro.search.engine import CoverageSearch

        fuzzer = self.fuzzer
        step_seconds: dict[str, float] = {}
        tracer = telemetry.tracer()

        start = time.perf_counter()
        with tracer.span("fuzz.cleanup"):
            cleanup = fuzzer.run_cleanup()
        step_seconds["cleanup"] = time.perf_counter() - start

        if self.workers > 1:
            fuzzer.require_shardable()
        search_checkpoint = (self.checkpoint_dir / "search"
                             if self.checkpoint_dir is not None else None)
        search = CoverageSearch(
            fuzzer.search_config(events),
            max_evals=fuzzer.gadget_budget,
            workers=self.workers,
            corpus_dir=self.corpus_dir,
            checkpoint_dir=search_checkpoint,
            resume=self.resume,
            fault_plan=self.fault_plan,
            **self.search_options)

        start = time.perf_counter()
        with tracer.span("fuzz.screening", strategy="coverage"):
            result = search.run()
        step_seconds["generation_execution"] = time.perf_counter() - start
        self.search_result = result
        self.stats = CampaignStats(num_shards=result.rounds,
                                   screened_shards=result.rounds,
                                   workers=self.workers)

        registry = telemetry.metrics()
        if registry.enabled:
            registry.gauge("campaign.workers").set(self.workers)

        fuzzer.register_gadgets(result.gadgets)
        screened = {event: list(pairs)
                    for event, pairs in sorted(result.responders.items())}
        return fuzzer.finalize(cleanup, screened, events, step_seconds)

    def _run(self, events: np.ndarray) -> "FuzzingReport":
        fuzzer = self.fuzzer
        step_seconds: dict[str, float] = {}
        tracer = telemetry.tracer()
        trace_dir = telemetry.trace_dir()
        shard_trace_dir = str(trace_dir) if trace_dir is not None else None
        shard_cache_dir = self._shard_cache_dir()

        start = time.perf_counter()
        with tracer.span("fuzz.cleanup"):
            cleanup = fuzzer.run_cleanup()
        step_seconds["cleanup"] = time.perf_counter() - start

        config = fuzzer.shard_config(events)
        plan = plan_shards(fuzzer.gadget_budget, fuzzer.shard_size)
        fingerprint = config_fingerprint(config, fuzzer.gadget_budget,
                                         fuzzer.shard_size)
        if self.workers > 1:
            fuzzer.require_shardable()

        start = time.perf_counter()
        # Results are keyed by shard *start* (unique even for bisected
        # sub-shards, whose synthetic index is -1).
        results: dict[int, ShardResult] = {}
        if self.resume and self.checkpoint_dir is not None:
            for shard in plan:
                loaded = load_shard_checkpoint(self.checkpoint_dir, shard,
                                               fingerprint)
                if loaded is not None:
                    results[shard.start] = loaded
        resumed = len(results)
        pending = [shard for shard in plan if shard.start not in results]
        logger.debug("campaign: %d shards planned, %d resumed, "
                     "%d pending on %d worker(s)", len(plan), resumed,
                     len(pending), self.workers)
        if self.checkpoint_dir is not None:
            write_campaign_manifest(self.checkpoint_dir, config,
                                    fuzzer.gadget_budget, fuzzer.shard_size,
                                    len(plan))

        supervisor = ShardSupervisor(
            fn=screen_shard_traced,
            args=lambda shard, attempt, sacrificial: (
                config, shard, shard_trace_dir, shard_cache_dir,
                self.fault_plan, attempt, sacrificial),
            on_result=lambda result: self._complete(result, fingerprint,
                                                    results),
            empty_result=lambda shard: ShardResult(
                index=-1, start=shard.start, count=shard.count,
                screened={int(e): [] for e in config.event_indices}),
            policy=self.policy, workers=min(self.workers, max(1,
                                                              len(pending))),
            fault_plan=self.fault_plan)
        with tracer.span("fuzz.screening", shards=len(plan),
                         resumed=resumed):
            supervised = supervisor.run(pending)
        step_seconds["generation_execution"] = time.perf_counter() - start

        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("campaign.shards_total").inc(len(plan))
            registry.counter("campaign.shards_resumed").inc(resumed)
            registry.counter("campaign.shards_screened").inc(len(pending))
            registry.gauge("campaign.workers").set(self.workers)

        self.stats = CampaignStats(
            num_shards=len(plan), resumed_shards=resumed,
            screened_shards=len(plan) - resumed, workers=self.workers,
            shard_cpu_seconds=[results[key].cpu_seconds
                               for key in sorted(results)],
            screening_wall_seconds=step_seconds["generation_execution"],
            shard_failures=list(supervised.failures),
            retries=supervised.retries,
            timeouts=supervised.timeouts,
            bisections=supervised.bisections,
            pool_restarts=supervised.pool_restarts,
            quarantined=list(supervised.quarantined))
        merged = merge_screened(results.values())
        return fuzzer.finalize(cleanup, merged, events, step_seconds)

    def _complete(self, result: ShardResult, fingerprint: str,
                  results: dict[int, ShardResult]) -> None:
        results[result.start] = result
        logger.debug("shard @%d screened: %d gadgets in %.3fs "
                     "(%.3fs cpu)", result.start, result.count,
                     result.elapsed_seconds, result.cpu_seconds)
        # Bisected sub-shards (index < 0) stay in memory only: their
        # geometry does not match the plan, so a checkpoint would never
        # load — the parent shard simply re-screens on resume.
        if self.checkpoint_dir is not None and result.index >= 0:
            save_shard_checkpoint(self.checkpoint_dir, result, fingerprint)
        if self.shard_hook is not None:
            self.shard_hook(result)
