"""Event Fuzzer (paper Section VI).

Offline module: grammar-based fuzzing over the cleaned ISA to find
instruction gadgets — a reset sequence followed by a trigger sequence —
that reliably perturb each vulnerable HPC event. Pipeline: instruction
cleanup -> code generation + execution -> result confirmation (multiple
executions, repeated cold/hot triggers, gadget reordering) -> gadget
filtering (clustering, best gadget, minimal covering set).
"""

from repro.core.fuzzer.grammar import Gadget, GadgetGrammar
from repro.core.fuzzer.cleanup import InstructionCleaner, CleanupReport
from repro.core.fuzzer.generator import ExecutionHarness, MeasuredDelta
from repro.core.fuzzer.confirm import ConfirmationResult, GadgetConfirmer
from repro.core.fuzzer.filtering import (
    GadgetCluster,
    GadgetFilter,
    minimal_covering_set,
)
from repro.core.fuzzer.fuzzer import EventFuzzer, FuzzingReport

__all__ = [
    "CleanupReport",
    "ConfirmationResult",
    "EventFuzzer",
    "ExecutionHarness",
    "FuzzingReport",
    "Gadget",
    "GadgetCluster",
    "GadgetConfirmer",
    "GadgetFilter",
    "GadgetGrammar",
    "InstructionCleaner",
    "MeasuredDelta",
    "minimal_covering_set",
]
