"""Event Fuzzer (paper Section VI).

Offline module: grammar-based fuzzing over the cleaned ISA to find
instruction gadgets — a reset sequence followed by a trigger sequence —
that reliably perturb each vulnerable HPC event. Pipeline: instruction
cleanup -> code generation + execution -> result confirmation (multiple
executions, repeated cold/hot triggers, gadget reordering) -> gadget
filtering (clustering, best gadget, minimal covering set).
"""

from repro.core.fuzzer.grammar import (
    Gadget,
    GadgetGrammar,
    normalize_signature,
)
from repro.core.fuzzer.cleanup import InstructionCleaner, CleanupReport
from repro.core.fuzzer.generator import ExecutionHarness, MeasuredDelta
from repro.core.fuzzer.confirm import ConfirmationResult, GadgetConfirmer
from repro.core.fuzzer.filtering import (
    GadgetCluster,
    GadgetFilter,
    minimal_covering_set,
)
from repro.core.fuzzer.campaign import (
    DEFAULT_SHARD_SIZE,
    CampaignError,
    CampaignStats,
    FuzzingCampaign,
    ShardConfig,
    ShardResult,
    ShardSpec,
    critical_path_seconds,
    gadget_stream,
    load_shard_checkpoint,
    merge_screened,
    plan_shards,
    save_shard_checkpoint,
    screen_shard,
    screen_shard_traced,
)
from repro.core.fuzzer.fuzzer import EventFuzzer, FuzzingReport

__all__ = [
    "CampaignError",
    "CampaignStats",
    "CleanupReport",
    "ConfirmationResult",
    "DEFAULT_SHARD_SIZE",
    "EventFuzzer",
    "ExecutionHarness",
    "FuzzingCampaign",
    "FuzzingReport",
    "Gadget",
    "GadgetCluster",
    "GadgetConfirmer",
    "GadgetFilter",
    "GadgetGrammar",
    "InstructionCleaner",
    "MeasuredDelta",
    "ShardConfig",
    "ShardResult",
    "ShardSpec",
    "critical_path_seconds",
    "gadget_stream",
    "load_shard_checkpoint",
    "merge_screened",
    "minimal_covering_set",
    "normalize_signature",
    "plan_shards",
    "save_shard_checkpoint",
    "screen_shard",
    "screen_shard_traced",
]
