"""The fuzzing grammar: reset + trigger instruction gadgets.

The input format model (paper Fig. 4): a gadget first brings the
monitored event to a known *reset state* S0 (e.g. CLFLUSH empties the
cache line) and then executes a *trigger sequence* that transitions it
to S1, changing the counter. The grammar samples both sequences from the
cleaned instruction list; the paper uses one instruction per sequence
and leaves longer sequences as future work — both are supported here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.spec import InstructionSpec
from repro.utils.rng import ensure_rng

#: Paper defaults: one instruction per sequence, and a quarter of the
#: gadgets get an empty reset (for trivial-S0 events). Shard configs
#: reference these so campaign workers rebuild identical grammars.
DEFAULT_SEQUENCE_LENGTH = 1
DEFAULT_EMPTY_RESET_PROB = 0.25

#: Placeholder lengths normalize_signature() prepends to legacy
#: signatures, distinct from any real sequence length.
LEGACY_SIGNATURE_LENGTH = -1


def normalize_signature(signature) -> tuple:
    """Normalize a gadget signature to the current 6-tuple shape.

    Accepts both the current ``(len(reset), len(trigger), *sets)``
    6-tuples and the legacy 4-tuple shape from reports written before
    sequence lengths were added; legacy signatures get
    :data:`LEGACY_SIGNATURE_LENGTH` placeholders so old clusters stay
    distinct from (and comparable to) each other without colliding
    with real lengths.
    """
    sig = tuple(signature)
    if len(sig) == 6:
        return sig
    if len(sig) == 4:
        return (LEGACY_SIGNATURE_LENGTH, LEGACY_SIGNATURE_LENGTH) + sig
    raise ValueError(
        f"gadget signature must have 4 (legacy) or 6 elements, "
        f"got {len(sig)}")


@dataclass(frozen=True)
class Gadget:
    """One fuzzing input: reset sequence + trigger sequence."""

    reset: tuple[InstructionSpec, ...]
    trigger: tuple[InstructionSpec, ...]

    def __post_init__(self) -> None:
        if not self.trigger:
            raise ValueError("trigger sequence must be non-empty")

    @property
    def name(self) -> str:
        reset = "+".join(s.name for s in self.reset) or "(none)"
        trigger = "+".join(s.name for s in self.trigger)
        return f"[{reset} | {trigger}]"

    @property
    def signature(self) -> tuple:
        """Cluster key: sequence lengths plus extensions and categories.

        The extension/category sets "strongly indicate the root cause
        ... in the underlying microarchitectural level" (paper Section
        VI-F); the leading lengths keep multi-instruction gadgets with
        identical sets from clustering with shorter ones.  Legacy
        4-tuple signatures (pre-length reports) are accepted by
        :func:`normalize_signature`.
        """
        return (len(self.reset), len(self.trigger)) + self.legacy_signature

    @property
    def legacy_signature(self) -> tuple:
        """The pre-length 4-tuple signature, for old report parsers."""
        return (
            tuple(sorted({s.extension.value for s in self.reset})),
            tuple(sorted({s.category.value for s in self.reset})),
            tuple(sorted({s.extension.value for s in self.trigger})),
            tuple(sorted({s.category.value for s in self.trigger})),
        )

    @property
    def instruction_count(self) -> int:
        return len(self.reset) + len(self.trigger)


class GadgetGrammar:
    """Samples gadgets from a cleaned instruction list.

    Parameters
    ----------
    instructions:
        The cleaned (legal) instruction list.
    sequence_length:
        Instructions per reset/trigger sequence (paper default: 1).
    """

    def __init__(self, instructions: list[InstructionSpec],
                 sequence_length: int = DEFAULT_SEQUENCE_LENGTH,
                 empty_reset_prob: float = DEFAULT_EMPTY_RESET_PROB,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if not instructions:
            raise ValueError("instructions must be non-empty")
        if sequence_length < 1:
            raise ValueError(
                f"sequence_length must be >= 1, got {sequence_length}")
        if not 0.0 <= empty_reset_prob <= 1.0:
            raise ValueError(
                f"empty_reset_prob must be in [0, 1], got {empty_reset_prob}")
        self.instructions = list(instructions)
        self.sequence_length = sequence_length
        # Events whose reset state S0 is trivial (instruction-count
        # events change on *any* execution) need gadgets with an empty
        # reset sequence — otherwise the reset's own counts make the
        # V2 > lambda2*V1 confirmation test unsatisfiable.
        self.empty_reset_prob = empty_reset_prob
        self._rng = ensure_rng(rng)

    @property
    def search_space_size(self) -> int:
        """Total (reset, trigger) combinations at this sequence length."""
        n = len(self.instructions)
        return (n ** self.sequence_length) ** 2

    def _sample_sequence(self, rng: np.random.Generator
                         ) -> tuple[InstructionSpec, ...]:
        picks = rng.integers(0, len(self.instructions),
                             size=self.sequence_length)
        return tuple(self.instructions[int(i)] for i in picks)

    def sample(self, rng: "np.random.Generator | None" = None) -> Gadget:
        """Draw one random gadget.

        ``rng`` overrides the grammar's own stream for this draw —
        sharded campaigns pass a per-gadget stream so that gadget *i*
        is the same no matter which shard (or process) samples it.
        """
        gen = self._rng if rng is None else rng
        reset = (() if gen.random() < self.empty_reset_prob
                 else self._sample_sequence(gen))
        return Gadget(reset=reset, trigger=self._sample_sequence(gen))

    def sample_batch(self, count: int) -> list[Gadget]:
        """Draw ``count`` random gadgets."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [self.sample() for _ in range(count)]

    def enumerate_pairs(self, limit: int | None = None) -> "list[Gadget]":
        """Deterministic enumeration of single-instruction pairs.

        Row-major over (reset, trigger) indices; ``limit`` caps the
        output for budgeted campaigns.
        """
        if self.sequence_length != 1:
            raise ValueError("enumerate_pairs requires sequence_length == 1")
        gadgets: list[Gadget] = []
        for reset in self.instructions:
            for trigger in self.instructions:
                gadgets.append(Gadget(reset=(reset,), trigger=(trigger,)))
                if limit is not None and len(gadgets) >= limit:
                    return gadgets
        return gadgets
