"""Code generation and execution (paper Section VI-D).

The harness places gadget code on a dedicated page between a prolog and
an epilog (saving registers, pointing every memory operand at a
pre-allocated writable data page), serializes execution with CPUID
around the measurement, reads the HPC registers with RDPMC, pins the
process and isolates the core to suppress interrupt noise — each of the
paper's measurement-stability techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fuzzer.grammar import Gadget
from repro.cpu import batch
from repro.cpu.core import Core
from repro.isa.spec import Instruction, InstructionSpec, Program
from repro.utils.rng import derive_stream, ensure_rng

#: Callee-saved registers the prolog preserves.
_CALLEE_SAVED = 6


@dataclass
class MeasuredDelta:
    """One measurement: per-event count deltas plus raw execution data."""

    deltas: np.ndarray
    signals: np.ndarray
    cycles: int


class ExecutionHarness:
    """Executes gadgets on a core and measures HPC event deltas.

    Parameters
    ----------
    core:
        The simulated core (its data/stack pages back memory operands).
    unroll:
        How many (reset + trigger) iterations one measurement executes;
        lifts real effects above the counters' read noise.
    fast:
        When True, event deltas are computed from the recorded signal
        vector for *all* requested events at once (equivalent to having
        unlimited counter registers); when False, events are measured in
        hardware groups of four via RDPMC, exactly as on real silicon.
    """

    def __init__(self, core: Core, unroll: int = 16, fast: bool = True,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {unroll}")
        self.core = core
        self.unroll = unroll
        self.fast = fast
        self._rng = ensure_rng(rng)
        self._push = self._find_spec("PUSH r64")
        self._pop = self._find_spec("POP r64")
        self._serialize = self._find_spec("CPUID")
        core.configure_measurement_environment()
        self.executions = 0

    def set_rng(self, rng: "int | np.random.Generator | None") -> None:
        """Replace the measurement-noise stream.

        The campaign's screening stage reseeds per gadget so that each
        gadget's noise draws depend only on (root seed, gadget index),
        never on how the budget was sharded across workers.
        """
        self._rng = ensure_rng(rng)

    def warm_measurement_state(self) -> None:
        """Bring a freshly reset core to the steady measurement state.

        After :meth:`Core.reset_microarch_state` every line is cold; a
        real campaign's back-to-back measurements instead run with the
        harness's own data/stack lines and code page resident (only a
        gadget's explicit flushes evict them). Touching those few
        locations deterministically reproduces that steady state without
        executing a full throwaway measurement.
        """
        core = self.core
        core.itlb.access(core.code_page.base)
        core.dtlb.access(core.data_page.base)
        core.caches.access(core.data_page.base, write=False)
        core.dtlb.access(core.stack_page.base)
        core.caches.access(core.stack_page.base, write=True)
        # A warm-up over a freshly reset core is the *canonical* state
        # the batch engine's screening memo is keyed against; warming
        # anything else is just a warm-up.
        core._canonical = core._pristine
        core._pristine = False

    def _find_spec(self, name: str) -> InstructionSpec | None:
        # The harness helpers come from the ISA catalog when available;
        # a core without a catalog entry just skips that element.
        from repro.isa.catalog import shared_catalog
        try:
            return shared_catalog().get(name)
        except KeyError:
            return None

    # -- program construction ------------------------------------------

    def _place(self, spec: InstructionSpec, address: int) -> Instruction:
        mem = self.core.data_page.base if (spec.reads_memory
                                           or spec.writes_memory
                                           or "m" in spec.operand_form.value
                                           ) else 0
        return Instruction(spec=spec, address=address, mem_operand=mem,
                           taken=True)

    def build_program(self, body: list[InstructionSpec], repeats: int = 1,
                      include_frame: bool = True) -> Program:
        """Prolog + body*repeats + epilog, placed in the code page.

        ``include_frame=False`` emits the bare body — used between
        in-execution RDPMC reads, where the prolog/epilog counts would
        pollute every per-iteration delta.
        """
        program = Program()
        address = self.core.code_page.base
        if include_frame and self._push is not None:
            for _ in range(_CALLEE_SAVED):
                program.append(self._place(self._push, address))
                address += 4
        if include_frame and self._serialize is not None:
            program.append(self._place(self._serialize, address))
            address += 4
        for _ in range(repeats):
            for spec in body:
                program.append(self._place(spec, address))
                address += 4
        if include_frame and self._serialize is not None:
            program.append(self._place(self._serialize, address))
            address += 4
        if include_frame and self._pop is not None:
            for _ in range(_CALLEE_SAVED):
                program.append(self._place(self._pop, address))
                address += 4
        return program

    def measure_iterations(self, body: list[InstructionSpec],
                           event_indices: np.ndarray,
                           iterations: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-iteration deltas inside one repeated execution (Fig. 6).

        The body runs ``iterations`` times back to back with the
        counters read between iterations (microarchitectural state is
        deliberately NOT reset — that is exactly what the repeated-
        trigger test exploits). Returns ``(per_iteration, cumulative)``
        with shapes (iterations, E) and (E,). An empty body measures
        pure read noise.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        event_indices = np.asarray(event_indices, dtype=int)
        catalog = self.core.catalog
        noise_abs = catalog.noise_abs[event_indices]
        n_events = len(event_indices)
        # One root draw from the harness stream seeds two derived
        # streams: per-iteration execution seeds (each repetition gets
        # its own seed instead of a duplicated program list, so the
        # batch geometry is explicit and individually reproducible) and
        # the interference draws. Everything downstream is a pure
        # function of the root, which is what the pinned-digest
        # regression test locks down.
        root = int(self._rng.integers(2**63))
        seeds = derive_stream(root, "execution").integers(
            0, 2**63 - 1, size=iterations)
        true_deltas = np.zeros((iterations, n_events))
        if body:
            program = self.build_program(body, repeats=1,
                                         include_frame=False)
            results = self.core.execute_batch(program, update_hpc=False,
                                              seeds=seeds)
            signals = np.stack([r.signals for r in results])
            # Detailed-path signals are integer-valued, so the batched
            # matmul is exact — identical to per-iteration projection.
            true_deltas = np.atleast_2d(catalog.counts_for(
                signals, rng=None, event_indices=event_indices))
        # RDPMC reads the register exactly; the non-determinism is rare
        # external interference (residual interrupts on the isolated
        # core) that *adds* counts between reads. This is precisely the
        # disturbance the paper's median-of-multiple-executions step
        # filters out.
        interference_prob = 0.03
        noise_gen = derive_stream(root, "interference")
        polluted = noise_gen.random((iterations, n_events)) \
            < interference_prob
        noise = noise_gen.poisson(
            np.broadcast_to(noise_abs, (iterations, n_events)))
        per_iteration = true_deltas + polluted * noise
        self.executions += iterations
        return per_iteration, per_iteration.sum(axis=0)

    # -- measurement -----------------------------------------------------

    def screen_measure(self, gadget: Gadget,
                       event_indices: np.ndarray) -> MeasuredDelta:
        """Screening-stage measurement through the batch engine's memo.

        Callable only in the screening flow — reset, warm-up, then one
        measurement — where the core is in the canonical state the
        memo is keyed against. Gadgets whose archetype sequence was
        already measured once skip execution entirely and rebuild their
        signals as ``static(program) + dynamic(archetype)``, which is
        bit-identical to the scalar measurement (the equivalence suite
        proves it). Anything the engine cannot serve exactly — engine
        disabled, non-canonical state, slow RDPMC grouping, programmed
        HPC slots, unsupported instruction classes — falls back to
        :meth:`measure_gadget`.
        """
        body = list(gadget.reset) + list(gadget.trigger)
        slot = None
        if self.fast:
            slot = batch.screened_begin(
                self.core, body, self.unroll,
                (self._push, self._pop, self._serialize))
        if slot is None:
            batch.count_evals(1)
            batch.count_fallback(1)
            return self.measure_gadget(gadget, event_indices)
        event_indices = np.asarray(event_indices, dtype=int)
        if slot.hit is not None:
            signals, cycles = slot.hit
            batch.count_evals(1)
        else:
            program = self.build_program(body, repeats=self.unroll)
            result = self.core.execute_program(program, update_hpc=False)
            slot.store(result)
            signals, cycles = result.signals, result.cycles
            batch.count_evals(1)
            batch.count_fallback(1)
        deltas = np.atleast_1d(self.core.catalog.counts_for(
            signals, rng=self._rng, event_indices=event_indices))
        self.executions += 1
        return MeasuredDelta(deltas=deltas, signals=signals, cycles=cycles)

    def measure_program(self, program: Program,
                        event_indices: np.ndarray) -> MeasuredDelta:
        """Fast-path measurement of an already-built program.

        The screening cache builds (and fingerprints) the program
        before deciding whether to execute at all; on a miss it hands
        the same program here so nothing is built twice.
        """
        event_indices = np.asarray(event_indices, dtype=int)
        result = self.core.execute_program(program, update_hpc=False)
        deltas = np.atleast_1d(self.core.catalog.counts_for(
            result.signals, rng=self._rng, event_indices=event_indices))
        self.executions += 1
        return MeasuredDelta(deltas=deltas, signals=result.signals,
                             cycles=result.cycles)

    def measure_body(self, body: list[InstructionSpec],
                     event_indices: np.ndarray,
                     repeats: int | None = None) -> MeasuredDelta:
        """Execute a body and return per-event deltas for it."""
        event_indices = np.asarray(event_indices, dtype=int)
        repeats = repeats if repeats is not None else self.unroll
        program = self.build_program(body, repeats=repeats)
        if self.fast:
            return self.measure_program(program, event_indices)
        deltas = np.empty(len(event_indices))
        hpc = self.core.hpc
        groups = [event_indices[i:i + hpc.num_registers]
                  for i in range(0, len(event_indices),
                                 hpc.num_registers)]
        signals_total = None
        cycles_total = 0
        for g, group in enumerate(groups):
            for slot, event in enumerate(group):
                hpc.program(slot, int(event))
            before = np.array([hpc.rdpmc(s) for s in range(len(group))])
            result = self.core.execute_program(program, update_hpc=True)
            after = np.array([hpc.rdpmc(s) for s in range(len(group))])
            start = g * hpc.num_registers
            deltas[start:start + len(group)] = after - before
            signals_total = (result.signals if signals_total is None
                             else signals_total + result.signals)
            cycles_total += result.cycles
        self.executions += len(groups)
        return MeasuredDelta(deltas=deltas, signals=signals_total,
                             cycles=cycles_total)

    def measure_gadget(self, gadget: Gadget, event_indices: np.ndarray,
                       repeats: int | None = None) -> MeasuredDelta:
        """Hot path: (reset + trigger) * repeats."""
        return self.measure_body(list(gadget.reset) + list(gadget.trigger),
                                 event_indices, repeats)

    def measure_reset_only(self, gadget: Gadget, event_indices: np.ndarray,
                           repeats: int | None = None) -> MeasuredDelta:
        """Cold path: reset * repeats (paper Fig. 6)."""
        return self.measure_body(list(gadget.reset), event_indices, repeats)

    def gadget_signal_profile(self, gadget: Gadget,
                              iterations: int = 8) -> np.ndarray:
        """Mean per-iteration signal vector of the gadget.

        The Event Obfuscator uses this to convert a differential-privacy
        noise value (in event counts) into a number of gadget
        repetitions.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        program = self.build_program(
            list(gadget.reset) + list(gadget.trigger), repeats=iterations)
        result = self.core.execute_program(program, update_hpc=False)
        overhead = self.build_program([], repeats=0)
        base = self.core.execute_program(overhead, update_hpc=False)
        return (result.signals - base.signals) / iterations
