"""Result confirmation (paper Section VI-E).

Three mechanisms remove gadgets whose reported effect is an artifact:

- **Multiple executions** — external factors (interrupts) disturb single
  measurements; the same gadget runs several times and the median is
  used (paper: 10 repetitions).
- **Repeated triggers** — distinguishes the trigger sequence's real
  effect from side effects of the reset sequence by comparing a cold
  path (reset only, repeated R times) with a hot path (reset + trigger,
  repeated R times). The gadget is accepted when
  ``V2 - V1 == (1 - lambda1) * R * (v2 - v1)`` within the lambda1
  tolerance and ``V2 > lambda2 * V1`` (paper: lambda1 in [-0.2, 0.2],
  lambda2 = 10).
- **Gadget reordering** — back-to-back fuzzing leaves dirty state
  (caches, predictors) to subsequent gadgets; re-running the survivors
  in random order and cross-validating removes order-dependent results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import Gadget
from repro.utils.rng import ensure_rng


@dataclass
class ConfirmationResult:
    """Verdict for one (gadget, event) candidate."""

    gadget: Gadget
    event_index: int
    confirmed: bool
    per_iteration_delta: float
    cold_median: float
    hot_median: float
    reason: str = ""


class GadgetConfirmer:
    """Applies the paper's three confirmation mechanisms.

    Parameters
    ----------
    harness:
        Execution harness for the measurements.
    executions:
        Median-of-n repetitions (paper: 10).
    trigger_repeats:
        R in the repeated-triggers protocol.
    lambda1 / lambda2:
        Accept thresholds (paper: [-0.2, 0.2] and 10).
    """

    def __init__(self, harness: ExecutionHarness, executions: int = 10,
                 trigger_repeats: int = 16,
                 lambda1: tuple[float, float] = (-0.2, 0.2),
                 lambda2: float = 10.0,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if executions < 1:
            raise ValueError(f"executions must be >= 1, got {executions}")
        if trigger_repeats < 2:
            raise ValueError(
                f"trigger_repeats must be >= 2, got {trigger_repeats}")
        if lambda1[0] >= lambda1[1]:
            raise ValueError(f"lambda1 bounds must be ordered: {lambda1}")
        self.harness = harness
        self.executions = executions
        self.trigger_repeats = trigger_repeats
        self.lambda1 = lambda1
        self.lambda2 = lambda2
        self._rng = ensure_rng(rng)

    # -- mechanism 1: multiple executions --------------------------------

    def median_delta(self, gadget: Gadget, event_index: int,
                     cold: bool = False) -> tuple[float, float]:
        """(median per-iteration delta v, median cumulative delta V).

        One execution repeats the path R times with the counter read
        between iterations (Fig. 6); v is the median per-iteration
        change, V the cumulative change. The whole execution is
        repeated ``executions`` times (mechanism 1) and the medians of
        v and V across executions are returned.
        """
        event = np.array([event_index])
        body = (list(gadget.reset) if cold
                else list(gadget.reset) + list(gadget.trigger))
        v_samples = []
        big_v_samples = []
        for _ in range(self.executions):
            per_iteration, cumulative = self.harness.measure_iterations(
                body, event, self.trigger_repeats)
            v_samples.append(float(np.median(per_iteration[:, 0])))
            big_v_samples.append(float(cumulative[0]))
        return float(np.median(v_samples)), float(np.median(big_v_samples))

    # -- mechanism 2: repeated triggers -----------------------------------

    def confirm(self, gadget: Gadget, event_index: int) -> ConfirmationResult:
        """Cold-vs-hot repeated-trigger validation of one candidate."""
        v1, big_v1 = self.median_delta(gadget, event_index, cold=True)
        v2, big_v2 = self.median_delta(gadget, event_index, cold=False)
        r = self.trigger_repeats
        per_iteration = v2 - v1
        expected = r * per_iteration
        observed = big_v2 - big_v1
        if per_iteration <= 0:
            return ConfirmationResult(gadget, event_index, False,
                                      per_iteration, big_v1, big_v2,
                                      reason="trigger adds no counts")
        # V2 - V1 = (1 - lambda1) R (v2 - v1), lambda1 in [-0.2, 0.2]:
        # the cumulative effect must scale linearly with R, i.e. the
        # reset sequence really returns the event to S0 every iteration.
        lo = (1.0 - self.lambda1[1]) * expected
        hi = (1.0 - self.lambda1[0]) * expected
        if not lo <= observed <= hi:
            return ConfirmationResult(gadget, event_index, False,
                                      per_iteration, big_v1, big_v2,
                                      reason="effect does not scale with R")
        # V2 > lambda2 * V1: the trigger dominates reset side effects.
        if big_v2 <= self.lambda2 * big_v1:
            return ConfirmationResult(gadget, event_index, False,
                                      per_iteration, big_v1, big_v2,
                                      reason="reset side effects dominate")
        return ConfirmationResult(gadget, event_index, True, per_iteration,
                                  big_v1, big_v2)

    # -- mechanism 3: gadget reordering ------------------------------------

    def reorder_validate(self, candidates: list[ConfirmationResult],
                         tolerance: float = 0.5) -> list[ConfirmationResult]:
        """Re-measure confirmed candidates in random order.

        Keeps candidates whose per-iteration delta stays within
        ``tolerance`` (relative) of the original measurement — the
        cross-validation that removes inherited-dirty-state artifacts.
        """
        confirmed = [c for c in candidates if c.confirmed]
        order = self._rng.permutation(len(confirmed))
        survivors: list[ConfirmationResult] = []
        for i in order:
            candidate = confirmed[int(i)]
            event = np.array([candidate.event_index])
            hot = list(candidate.gadget.reset) + list(candidate.gadget.trigger)
            _, hot_cumulative = self.harness.measure_iterations(
                hot, event, self.trigger_repeats)
            _, cold_cumulative = self.harness.measure_iterations(
                list(candidate.gadget.reset), event, self.trigger_repeats)
            per_iteration = (hot_cumulative[0] - cold_cumulative[0]) \
                / self.trigger_repeats
            original = candidate.per_iteration_delta
            if original > 0 and abs(per_iteration - original) \
                    <= tolerance * original:
                survivors.append(candidate)
        survivors.sort(key=lambda c: -c.per_iteration_delta)
        return survivors
