"""The Event Fuzzer orchestrator (paper Fig. 5).

Pipeline: (1) instruction cleanup, (2) gadget generation + execution
with screening over every profiled event, (3) confirmation of the
strongest candidates (multiple executions, repeated triggers,
reordering), (4) filtering (clustering, best gadget, covering set).
Per-step wall-clock times are recorded — the paper's Table III shows
generation + execution dominating, which holds here too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.fuzzer.cleanup import CleanupReport, InstructionCleaner
from repro.core.fuzzer.confirm import ConfirmationResult, GadgetConfirmer
from repro.core.fuzzer.filtering import GadgetFilter, minimal_covering_set
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import Gadget, GadgetGrammar
from repro.cpu.core import Core
from repro.isa.catalog import IsaCatalog, build_catalog
from repro.isa.legality import MICROARCH_PROFILES, MicroArchProfile
from repro.utils.rng import ensure_rng, spawn_rng


@dataclass
class FuzzingReport:
    """Everything a fuzzing campaign produced."""

    microarch: str
    cleanup: CleanupReport
    search_space_size: int
    gadgets_tested: int
    events_fuzzed: int
    step_seconds: dict[str, float]
    screened_per_event: dict[int, int]
    confirmed_per_event: dict[int, list[ConfirmationResult]]
    covering_set: dict[Gadget, list[int]] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.step_seconds.values())

    @property
    def throughput_gadgets_per_second(self) -> float:
        """(gadget, event) evaluations per second of generation+execution."""
        gen_time = self.step_seconds.get("generation_execution", 0.0)
        if gen_time <= 0:
            return 0.0
        return self.gadgets_tested * self.events_fuzzed / gen_time

    def gadget_count_stats(self) -> dict[str, float]:
        """Usable-gadget-per-event statistics (paper Section VIII-B)."""
        counts = np.array(list(self.screened_per_event.values()), dtype=float)
        if counts.size == 0:
            return {"mean": 0.0, "median": 0.0, "max": 0.0}
        return {"mean": float(counts.mean()),
                "median": float(np.median(counts)),
                "max": float(counts.max())}

    def most_fuzzed_event(self) -> int:
        """Event index with the most usable gadgets."""
        if not self.screened_per_event:
            raise ValueError("no events were fuzzed")
        return max(self.screened_per_event,
                   key=lambda e: self.screened_per_event[e])


class EventFuzzer:
    """Runs a fuzzing campaign for a set of vulnerable HPC events.

    Parameters
    ----------
    processor_model:
        Event-catalog / core model to fuzz on.
    microarch:
        ISA microarchitecture profile (defaults to the matching one).
    gadget_budget:
        How many (reset, trigger) pairs to sample — real campaigns test
        all ~11.6M pairs over hours; the budget makes laptop-scale runs
        possible while exercising the identical pipeline.
    confirm_per_event:
        How many top-screened candidates get full confirmation.
    """

    _MODEL_TO_MICROARCH = {
        "amd-epyc-7252": "amd-epyc-7252",
        "amd-epyc-7313p": "amd-epyc-7313p",
        "intel-xeon-e5-1650": "intel-xeon-e5-1650",
        "intel-xeon-e5-4617": "intel-xeon-e5-4617",
    }

    def __init__(self, processor_model: str = "amd-epyc-7252",
                 microarch: MicroArchProfile | None = None,
                 isa_catalog: IsaCatalog | None = None,
                 gadget_budget: int = 2000, confirm_per_event: int = 8,
                 unroll: int = 16,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if gadget_budget < 1:
            raise ValueError(f"gadget_budget must be >= 1, got {gadget_budget}")
        root = ensure_rng(rng)
        core_rng, grammar_rng, harness_rng, confirm_rng = spawn_rng(root, 4)
        self.processor_model = processor_model
        self.isa_catalog = isa_catalog or build_catalog()
        if microarch is None:
            name = self._MODEL_TO_MICROARCH.get(processor_model,
                                                "amd-epyc-7252")
            microarch = MICROARCH_PROFILES[name]
        self.microarch = microarch
        self.gadget_budget = gadget_budget
        self.confirm_per_event = confirm_per_event
        self.core = Core(processor_model, rng=core_rng)
        self.harness = ExecutionHarness(self.core, unroll=unroll,
                                        rng=harness_rng)
        self._grammar_rng = grammar_rng
        self.confirmer = GadgetConfirmer(self.harness, rng=confirm_rng)
        self.filter = GadgetFilter()

    def _screen_threshold(self, event_indices: np.ndarray) -> np.ndarray:
        """Minimum hot-path delta that flags a candidate per event."""
        catalog = self.core.catalog
        return (4.0 * catalog.noise_abs[event_indices]
                + 0.5 * self.harness.unroll
                * catalog.noise_rel[event_indices])

    def fuzz(self, event_indices: "np.ndarray | list[int]") -> FuzzingReport:
        """Run the four-step campaign for ``event_indices``."""
        event_indices = np.asarray(event_indices, dtype=int)
        if len(event_indices) == 0:
            raise ValueError("event_indices must be non-empty")
        step_seconds: dict[str, float] = {}

        # Step 1: cleanup.
        start = time.perf_counter()
        cleaner = InstructionCleaner(self.isa_catalog, self.microarch)
        cleanup = cleaner.run()
        step_seconds["cleanup"] = time.perf_counter() - start

        grammar = GadgetGrammar(cleanup.legal, rng=self._grammar_rng)

        # Step 2: generation + execution (screening over all events).
        start = time.perf_counter()
        gadgets = grammar.sample_batch(self.gadget_budget)
        thresholds = self._screen_threshold(event_indices)
        screened: dict[int, list[tuple[float, Gadget]]] = {
            int(e): [] for e in event_indices}
        for gadget in gadgets:
            measured = self.harness.measure_gadget(gadget, event_indices)
            hits = measured.deltas > thresholds
            for j in np.flatnonzero(hits):
                event = int(event_indices[j])
                screened[event].append((float(measured.deltas[j]), gadget))
        step_seconds["generation_execution"] = time.perf_counter() - start

        # Step 3: confirmation per event. Candidates mix the strongest
        # screened deltas with a random sample of the remainder — pure
        # top-by-delta favors heavyweight resets (CPUID-sized), which
        # the lambda2 test then rejects for any-instruction events.
        start = time.perf_counter()
        pick_rng = ensure_rng(int(self._grammar_rng.integers(2**63)))
        confirmed: dict[int, list[ConfirmationResult]] = {}
        for event, candidates in screened.items():
            candidates.sort(key=lambda pair: -pair[0])
            head = candidates[:self.confirm_per_event // 2]
            tail = candidates[self.confirm_per_event // 2:]
            extra_count = min(len(tail),
                              self.confirm_per_event - len(head))
            if extra_count:
                picks = pick_rng.choice(len(tail), size=extra_count,
                                        replace=False)
                head = head + [tail[int(i)] for i in picks]
            results = [self.confirmer.confirm(gadget, event)
                       for _, gadget in head]
            confirmed[event] = self.confirmer.reorder_validate(results)
        step_seconds["confirmation"] = time.perf_counter() - start

        # Step 4: filtering (clustering + covering set).
        start = time.perf_counter()
        filtered = {event: self.filter.filter_event(results)
                    for event, results in confirmed.items()}
        covering = minimal_covering_set(filtered)
        step_seconds["filtering"] = time.perf_counter() - start

        return FuzzingReport(
            microarch=self.microarch.name,
            cleanup=cleanup,
            search_space_size=grammar.search_space_size,
            gadgets_tested=len(gadgets),
            events_fuzzed=len(event_indices),
            step_seconds=step_seconds,
            screened_per_event={e: len(c) for e, c in screened.items()},
            confirmed_per_event=filtered,
            covering_set=covering,
        )
