"""The Event Fuzzer orchestrator (paper Fig. 5).

Pipeline: (1) instruction cleanup, (2) gadget generation + execution
with screening over every profiled event, (3) confirmation of the
strongest candidates (multiple executions, repeated triggers,
reordering), (4) filtering (clustering, best gadget, covering set).
Per-step wall-clock times are recorded — the paper's Table III shows
generation + execution dominating, which holds here too.

The pipeline is built from shard-sized pure stages shared with
:mod:`repro.core.fuzzer.campaign`: :meth:`EventFuzzer.fuzz` screens the
budget shard by shard in-process, while :class:`FuzzingCampaign` screens
the same shards across worker processes with checkpoint/resume — both
produce identical reports for the same seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.fuzzer.campaign import (
    DEFAULT_SHARD_SIZE,
    ShardConfig,
    default_cleanup,
    gadget_stream,
    merge_screened,
    plan_shards,
    screen_shard_traced,
)
from repro.core.fuzzer.cleanup import CleanupReport, InstructionCleaner
from repro.core.fuzzer.confirm import ConfirmationResult, GadgetConfirmer
from repro.core.fuzzer.filtering import GadgetFilter, minimal_covering_set
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import (
    DEFAULT_EMPTY_RESET_PROB,
    DEFAULT_SEQUENCE_LENGTH,
    Gadget,
    GadgetGrammar,
)
from repro.cpu.core import Core
from repro.isa.catalog import IsaCatalog, shared_catalog
from repro.isa.legality import MICROARCH_PROFILES, MicroArchProfile
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng, spawn_rng


@dataclass
class FuzzingReport:
    """Everything a fuzzing campaign produced."""

    microarch: str
    cleanup: CleanupReport
    search_space_size: int
    gadgets_tested: int
    events_fuzzed: int
    step_seconds: dict[str, float]
    screened_per_event: dict[int, int]
    confirmed_per_event: dict[int, list[ConfirmationResult]]
    covering_set: dict[Gadget, list[int]] = field(default_factory=dict)
    #: Per covered event, the gadget index of its first responder —
    #: screening order doubles as evaluation order, so this is the
    #: evals-to-cover trajectory bench_setcover gates.
    first_responder: dict[int, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.step_seconds.values())

    @property
    def evals_to_cover(self) -> int:
        """Evaluations spent when the last covered event first responded.

        Zero when nothing responded.  Comparable across strategies:
        both grammar screening and coverage search index gadgets in
        evaluation order.
        """
        if not self.first_responder:
            return 0
        return max(self.first_responder.values()) + 1

    @property
    def throughput_gadgets_per_second(self) -> float:
        """(gadget, event) evaluations per second of generation+execution."""
        gen_time = self.step_seconds.get("generation_execution", 0.0)
        if gen_time <= 0:
            return 0.0
        return self.gadgets_tested * self.events_fuzzed / gen_time

    def gadget_count_stats(self) -> dict[str, float]:
        """Usable-gadget-per-event statistics (paper Section VIII-B)."""
        counts = np.array(list(self.screened_per_event.values()), dtype=float)
        if counts.size == 0:
            return {"mean": 0.0, "median": 0.0, "max": 0.0}
        return {"mean": float(counts.mean()),
                "median": float(np.median(counts)),
                "max": float(counts.max())}

    def most_fuzzed_event(self) -> int:
        """Event index with the most usable gadgets."""
        if not self.screened_per_event:
            raise ValueError("no events were fuzzed")
        return max(self.screened_per_event,
                   key=lambda e: self.screened_per_event[e])


class EventFuzzer:
    """Runs a fuzzing campaign for a set of vulnerable HPC events.

    Parameters
    ----------
    processor_model:
        Event-catalog / core model to fuzz on.
    microarch:
        ISA microarchitecture profile (defaults to the matching one).
    gadget_budget:
        How many (reset, trigger) pairs to sample — real campaigns test
        all ~11.6M pairs over hours; the budget makes laptop-scale runs
        possible while exercising the identical pipeline.
    confirm_per_event:
        How many top-screened candidates get full confirmation.
    shard_size:
        Gadgets per screening shard. Purely an execution granularity:
        results are identical for every shard size (per-gadget RNG
        streams + per-gadget state reset), so it only tunes campaign
        parallelism and checkpoint frequency.
    """

    _MODEL_TO_MICROARCH = {
        "amd-epyc-7252": "amd-epyc-7252",
        "amd-epyc-7313p": "amd-epyc-7313p",
        "intel-xeon-e5-1650": "intel-xeon-e5-1650",
        "intel-xeon-e5-4617": "intel-xeon-e5-4617",
    }

    def __init__(self, processor_model: str = "amd-epyc-7252",
                 microarch: MicroArchProfile | None = None,
                 isa_catalog: IsaCatalog | None = None,
                 gadget_budget: int = 2000, confirm_per_event: int = 8,
                 unroll: int = 16, shard_size: int = DEFAULT_SHARD_SIZE,
                 rng: "int | np.random.Generator | None" = None) -> None:
        if gadget_budget < 1:
            raise ValueError(f"gadget_budget must be >= 1, got {gadget_budget}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        root = ensure_rng(rng)
        core_rng, grammar_rng, harness_rng, confirm_rng = spawn_rng(root, 4)
        self.processor_model = processor_model
        self.isa_catalog = (isa_catalog if isa_catalog is not None
                            else shared_catalog())
        if microarch is None:
            name = self._MODEL_TO_MICROARCH.get(processor_model,
                                                "amd-epyc-7252")
            microarch = MICROARCH_PROFILES[name]
        self.microarch = microarch
        self.gadget_budget = gadget_budget
        self.confirm_per_event = confirm_per_event
        self.shard_size = shard_size
        self.core = Core(processor_model, rng=core_rng)
        self.harness = ExecutionHarness(self.core, unroll=unroll,
                                        rng=harness_rng)
        self._grammar_rng = grammar_rng
        self.confirmer = GadgetConfirmer(self.harness, rng=confirm_rng)
        self.filter = GadgetFilter()
        # Root entropy of the per-gadget screening streams: gadget i's
        # sampling and measurement noise derive from (entropy, i) only,
        # so any shard partition screens identically.
        self._screen_entropy = int(self._grammar_rng.integers(2**63))
        self._cleanup_report: CleanupReport | None = None
        self._gadget_memo: dict[int, Gadget] = {}
        self._replay_grammar: GadgetGrammar | None = None

    def _screen_threshold(self, event_indices: np.ndarray) -> np.ndarray:
        """Minimum hot-path delta that flags a candidate per event."""
        catalog = self.core.catalog
        return (4.0 * catalog.noise_abs[event_indices]
                + 0.5 * self.harness.unroll
                * catalog.noise_rel[event_indices])

    # -- shard-sized stages ---------------------------------------------

    def require_shardable(self) -> None:
        """Raise unless worker processes can rebuild this configuration.

        Parallel campaigns re-derive the catalog + cleanup inside each
        worker, which requires the shared default catalog and a named
        microarchitecture profile; bespoke catalogs/profiles still work
        sequentially.
        """
        if self.isa_catalog is not shared_catalog():
            raise ValueError(
                "parallel campaigns require the default shared ISA "
                "catalog; custom catalogs can only run with workers=1")
        if MICROARCH_PROFILES.get(self.microarch.name) is not self.microarch:
            raise ValueError(
                f"parallel campaigns require a named microarch profile, "
                f"got a custom profile {self.microarch.name!r}")

    def run_cleanup(self) -> CleanupReport:
        """Stage 1 — instruction cleanup, cached per fuzzer."""
        if self._cleanup_report is None:
            if (self.isa_catalog is shared_catalog()
                    and MICROARCH_PROFILES.get(self.microarch.name)
                    is self.microarch):
                self._cleanup_report = default_cleanup(self.microarch.name)
            else:
                cleaner = InstructionCleaner(self.isa_catalog, self.microarch)
                self._cleanup_report = cleaner.run()
        return self._cleanup_report

    def shard_config(self, event_indices: np.ndarray) -> ShardConfig:
        """The plain-type screening configuration workers receive."""
        events = tuple(int(e) for e in np.asarray(event_indices, dtype=int))
        thresholds = self._screen_threshold(np.asarray(events, dtype=int))
        return ShardConfig(
            processor_model=self.processor_model,
            microarch=self.microarch.name,
            entropy=self._screen_entropy,
            unroll=self.harness.unroll,
            sequence_length=DEFAULT_SEQUENCE_LENGTH,
            empty_reset_prob=DEFAULT_EMPTY_RESET_PROB,
            event_indices=events,
            thresholds=tuple(float(t) for t in thresholds),
        )

    def search_config(self, event_indices: np.ndarray,
                      **overrides) -> "SearchConfig":
        """The coverage-search configuration for this fuzzer's events.

        Shares the screening entropy and thresholds with
        :meth:`shard_config`, so the search's grammar-sample tasks are
        bit-identical to blind screening of the same indices.
        """
        from repro.search.engine import SearchConfig

        base = self.shard_config(event_indices)
        return SearchConfig(
            processor_model=base.processor_model,
            microarch=base.microarch,
            entropy=base.entropy,
            unroll=base.unroll,
            sequence_length=base.sequence_length,
            empty_reset_prob=base.empty_reset_prob,
            event_indices=base.event_indices,
            thresholds=base.thresholds,
            **overrides)

    def register_gadgets(self, gadgets: "dict[int, Gadget]") -> None:
        """Pre-populate the gadget replay memo (coverage campaigns).

        Coverage-search evaluation indices are not grammar stream
        indices, so the campaign registers the actual gadgets before
        :meth:`finalize` replays them by index.
        """
        self._gadget_memo.update(gadgets)

    def gadget_at(self, gadget_index: int) -> Gadget:
        """Replay gadget ``gadget_index`` of this fuzzer's budget.

        Checkpoints and shard results carry gadget indices only; the
        gadget itself is re-derived from its per-gadget RNG stream,
        exactly as the screening stage sampled it.
        """
        gadget = self._gadget_memo.get(gadget_index)
        if gadget is None:
            if self._replay_grammar is None:
                self._replay_grammar = GadgetGrammar(
                    self.run_cleanup().legal, rng=0)
            gadget = self._replay_grammar.sample(
                rng=gadget_stream(self._screen_entropy, gadget_index))
            self._gadget_memo[gadget_index] = gadget
        return gadget

    def finalize(self, cleanup: CleanupReport,
                 screened: dict[int, list[tuple[int, float]]],
                 event_indices: np.ndarray,
                 step_seconds: dict[str, float]) -> FuzzingReport:
        """Stages 3+4 — confirmation and filtering on the merged pool.

        ``screened`` maps event index to ``(gadget_index, delta)`` pairs
        (ascending gadget order), as produced by ``merge_screened``.
        Runs once per campaign, after all shards are in.
        """
        event_indices = np.asarray(event_indices, dtype=int)
        tracer = telemetry.tracer()

        # Step 3: confirmation per event. Candidates mix the strongest
        # screened deltas with a random sample of the remainder — pure
        # top-by-delta favors heavyweight resets (CPUID-sized), which
        # the lambda2 test then rejects for any-instruction events.
        start = time.perf_counter()
        with tracer.span("fuzz.confirm", events=len(event_indices)):
            pick_rng = ensure_rng(int(self._grammar_rng.integers(2**63)))
            confirmed: dict[int, list[ConfirmationResult]] = {}
            for event in (int(e) for e in event_indices):
                candidates = [(delta, self.gadget_at(index))
                              for index, delta in screened.get(event, [])]
                candidates.sort(key=lambda pair: -pair[0])
                head = candidates[:self.confirm_per_event // 2]
                tail = candidates[self.confirm_per_event // 2:]
                extra_count = min(len(tail),
                                  self.confirm_per_event - len(head))
                if extra_count:
                    picks = pick_rng.choice(len(tail), size=extra_count,
                                            replace=False)
                    head = head + [tail[int(i)] for i in picks]
                results = [self.confirmer.confirm(gadget, event)
                           for _, gadget in head]
                confirmed[event] = self.confirmer.reorder_validate(results)
        step_seconds["confirmation"] = time.perf_counter() - start

        # Step 4: filtering (clustering + covering set).
        start = time.perf_counter()
        with tracer.span("fuzz.filter"):
            filtered = {event: self.filter.filter_event(results)
                        for event, results in confirmed.items()}
            covering = minimal_covering_set(filtered)
        step_seconds["filtering"] = time.perf_counter() - start

        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fuzz.events_fuzzed").inc(len(event_indices))
            registry.counter("fuzz.confirmed").inc(
                sum(len(r) for r in confirmed.values()))
            registry.gauge("fuzz.covering_gadgets").set(len(covering))

        grammar = GadgetGrammar(cleanup.legal, rng=0)
        return FuzzingReport(
            microarch=self.microarch.name,
            cleanup=cleanup,
            search_space_size=grammar.search_space_size,
            gadgets_tested=self.gadget_budget,
            events_fuzzed=len(event_indices),
            step_seconds=step_seconds,
            screened_per_event={int(e): len(screened.get(int(e), []))
                                for e in event_indices},
            confirmed_per_event=filtered,
            covering_set=covering,
            first_responder={int(e): min(i for i, _ in screened[int(e)])
                             for e in event_indices
                             if screened.get(int(e))},
        )

    # -- the sequential campaign ----------------------------------------

    def fuzz(self, event_indices: "np.ndarray | list[int]") -> FuzzingReport:
        """Run the four-step campaign for ``event_indices``.

        Screens the budget shard by shard through the same pure stage a
        parallel :class:`FuzzingCampaign` distributes across processes,
        so the report is identical to an N-worker campaign with the
        same seed.
        """
        event_indices = np.asarray(event_indices, dtype=int)
        if len(event_indices) == 0:
            raise ValueError("event_indices must be non-empty")
        step_seconds: dict[str, float] = {}

        tracer = telemetry.tracer()
        trace_dir = telemetry.trace_dir()
        shard_trace_dir = str(trace_dir) if trace_dir is not None else None

        # Step 1: cleanup.
        start = time.perf_counter()
        with tracer.span("fuzz.cleanup"):
            cleanup = self.run_cleanup()
        step_seconds["cleanup"] = time.perf_counter() - start

        # Step 2: generation + execution (screening over all events).
        start = time.perf_counter()
        config = self.shard_config(event_indices)
        plan = plan_shards(self.gadget_budget, self.shard_size)
        with tracer.span("fuzz.screening", shards=len(plan), resumed=0):
            results = [screen_shard_traced(config, shard, shard_trace_dir)
                       for shard in plan]
        screened = merge_screened(results)
        step_seconds["generation_execution"] = time.perf_counter() - start

        return self.finalize(cleanup, screened, event_indices, step_seconds)
