"""Gadget filtering (paper Sections VI-F and VII-C).

Confirmed gadgets are clustered by the extension/category signature of
their reset and trigger sequences (properties that indicate the
microarchitectural root cause), a representative and the
highest-impact gadget are kept per event, and a greedy set cover
extracts the smallest gadget set that perturbs every vulnerable event —
the paper covers its 137 events with 43 gadgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fuzzer.confirm import ConfirmationResult
from repro.core.fuzzer.grammar import Gadget


@dataclass
class GadgetCluster:
    """Confirmed gadgets sharing one root-cause signature."""

    signature: tuple
    members: list[ConfirmationResult] = field(default_factory=list)

    @property
    def representative(self) -> ConfirmationResult:
        """Highest-impact member (kept after filtering)."""
        return max(self.members, key=lambda c: c.per_iteration_delta)


class GadgetFilter:
    """Cluster and reduce the confirmed gadget lists per event."""

    def cluster(self, confirmed: list[ConfirmationResult]
                ) -> list[GadgetCluster]:
        """Group confirmations by gadget signature."""
        clusters: dict[tuple, GadgetCluster] = {}
        for result in confirmed:
            signature = result.gadget.signature
            cluster = clusters.get(signature)
            if cluster is None:
                cluster = GadgetCluster(signature=signature)
                clusters[signature] = cluster
            cluster.members.append(result)
        return list(clusters.values())

    def filter_event(self, confirmed: list[ConfirmationResult]
                     ) -> list[ConfirmationResult]:
        """One representative per cluster, sorted by impact."""
        representatives = [c.representative for c in self.cluster(confirmed)]
        representatives.sort(key=lambda c: -c.per_iteration_delta)
        return representatives

    def best_gadget(self, confirmed: list[ConfirmationResult]
                    ) -> ConfirmationResult:
        """The gadget causing the highest value change for the event."""
        if not confirmed:
            raise ValueError("no confirmed gadgets to choose from")
        return max(confirmed, key=lambda c: c.per_iteration_delta)


def minimal_covering_set(per_event: dict[int, list[ConfirmationResult]]
                         ) -> dict[Gadget, list[int]]:
    """Greedy set cover: fewest gadgets perturbing every event.

    Returns a mapping from each chosen gadget to the events it covers.
    Events with no confirmed gadget are (necessarily) left uncovered.
    """
    coverage: dict[str, tuple[Gadget, set[int]]] = {}
    for event_index, confirmations in per_event.items():
        for result in confirmations:
            name = result.gadget.name
            if name not in coverage:
                coverage[name] = (result.gadget, set())
            coverage[name][1].add(event_index)
    uncovered = {event for event, confs in per_event.items() if confs}
    chosen: dict[Gadget, list[int]] = {}
    while uncovered:
        best_name = max(coverage,
                        key=lambda n: (len(coverage[n][1] & uncovered),
                                       -len(coverage[n][1])))
        gadget, covers = coverage[best_name]
        gained = covers & uncovered
        if not gained:
            break
        chosen[gadget] = sorted(gained)
        uncovered -= gained
        del coverage[best_name]
    return chosen
