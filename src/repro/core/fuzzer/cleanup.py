"""Instruction cleanup (paper Section VI-C).

One-time step: render the machine-readable ISA specification to an
assembly listing, execute every variant, and drop the ones that fault.
On the paper's processors only ~24% of variants survive, with ~99% of
the faults being illegal-instruction (#UD) faults; the simulated
legality tester reproduces both ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import disassemble
from repro.isa.catalog import IsaCatalog
from repro.isa.legality import LegalityTester, MicroArchProfile
from repro.isa.spec import FaultKind, InstructionSpec


@dataclass
class CleanupReport:
    """Outcome of the cleanup step."""

    microarch: str
    total_variants: int
    legal: list[InstructionSpec]
    fault_histogram: dict[FaultKind, int]
    assembly_lines: int

    @property
    def legal_fraction(self) -> float:
        return len(self.legal) / self.total_variants if self.total_variants else 0.0

    @property
    def ud_fault_share(self) -> float:
        """Share of faults that are illegal-instruction faults."""
        total = sum(self.fault_histogram.values())
        if total == 0:
            return 0.0
        return self.fault_histogram.get(FaultKind.UNDEFINED_OPCODE, 0) / total


class InstructionCleaner:
    """Runs the cleanup step for one catalog on one microarchitecture."""

    def __init__(self, catalog: IsaCatalog, profile: MicroArchProfile) -> None:
        self.catalog = catalog
        self.profile = profile
        self._tester = LegalityTester(catalog, profile)

    def run(self) -> CleanupReport:
        """Test every variant; returns the cleaned instruction list."""
        # The paper materializes an assembly file first — keep that
        # artifact so the listing length is reportable.
        listing = disassemble(list(self.catalog))
        report = self._tester.run()
        return CleanupReport(
            microarch=self.profile.name,
            total_variants=len(self.catalog),
            legal=report.legal,
            fault_histogram=report.fault_histogram(),
            assembly_lines=listing.count("\n") + 1,
        )
