"""Deployment artifacts: persist the offline stage, load it online.

The paper's workflow is split: profiling and fuzzing run once on a
template server; their results ship into the production VM where the
Event Obfuscator runs. This module serializes that hand-off — the
vulnerable-event ranking, the covering gadget set with its signal
profile, and the obfuscator calibration — to a single JSON document.

The artifact also carries the privacy accountant's state: budget spent
by a previous deployment is restored on load instead of silently
resetting, so ε accounting survives a crash/restart cycle
(:meth:`DeploymentArtifact.update_budget` refreshes the carried state
from a live obfuscator before re-saving).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.core.obfuscator.budget import PrivacyAccountant
from repro.core.obfuscator.obfuscator import EventObfuscator
from repro.cpu.signals import NUM_SIGNALS

ARTIFACT_VERSION = 1


@dataclass
class DeploymentArtifact:
    """Everything the in-VM online stage needs from the offline stage."""

    processor_model: str
    vulnerable_events: list[str]
    mutual_information_bits: list[float]
    covering_gadgets: list[str]
    segment_signals: np.ndarray
    reference_event: str
    sensitivity: float
    mechanism: str
    epsilon: float
    clip_bound: float
    accountant_state: "dict | None" = None

    def __post_init__(self) -> None:
        self.segment_signals = np.asarray(self.segment_signals,
                                          dtype=np.float64)
        if self.segment_signals.ndim == 1:
            self.segment_signals = self.segment_signals[None, :]
        if self.segment_signals.ndim != 2 \
                or self.segment_signals.shape[1] != NUM_SIGNALS:
            raise ValueError(
                f"segment_signals must have shape ({NUM_SIGNALS},) or "
                f"(K, {NUM_SIGNALS})")
        if len(self.vulnerable_events) != len(self.mutual_information_bits):
            raise ValueError(
                "vulnerable_events and mutual_information_bits must align")

    # -- JSON round trip ---------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        payload = {
            "version": ARTIFACT_VERSION,
            "processor_model": self.processor_model,
            "vulnerable_events": self.vulnerable_events,
            "mutual_information_bits": [
                float(v) for v in self.mutual_information_bits],
            "covering_gadgets": self.covering_gadgets,
            "segment_signals": self.segment_signals.tolist(),
            "reference_event": self.reference_event,
            "sensitivity": float(self.sensitivity),
            "mechanism": self.mechanism,
            "epsilon": float(self.epsilon),
            "clip_bound": (None if np.isinf(self.clip_bound)
                           else float(self.clip_bound)),
            "accountant_state": self.accountant_state,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentArtifact":
        """Parse a JSON document produced by :meth:`to_json`."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported artifact version {version!r} "
                f"(expected {ARTIFACT_VERSION})")
        clip = payload.get("clip_bound")
        return cls(
            processor_model=payload["processor_model"],
            vulnerable_events=list(payload["vulnerable_events"]),
            mutual_information_bits=list(
                payload["mutual_information_bits"]),
            covering_gadgets=list(payload["covering_gadgets"]),
            segment_signals=np.array(payload["segment_signals"]),
            reference_event=payload["reference_event"],
            sensitivity=float(payload["sensitivity"]),
            mechanism=payload["mechanism"],
            epsilon=float(payload["epsilon"]),
            clip_bound=(np.inf if clip is None else float(clip)),
            accountant_state=payload.get("accountant_state"),
        )

    def save(self, path: "str | pathlib.Path") -> None:
        """Write the artifact to ``path``."""
        pathlib.Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "DeploymentArtifact":
        """Read an artifact from ``path``."""
        return cls.from_json(
            pathlib.Path(path).read_text(encoding="utf-8"))

    # -- construction / instantiation ----------------------------------

    @classmethod
    def from_deployment(cls, deployment) -> "DeploymentArtifact":
        """Build the artifact from an :class:`~repro.core.aegis.AegisDeployment`."""
        ranking = deployment.profiler_report.ranking
        obfuscator = deployment.obfuscator
        return cls(
            processor_model=deployment.profiler_report.processor_model,
            vulnerable_events=list(ranking.event_names),
            mutual_information_bits=[
                float(v) for v in ranking.mutual_information_bits],
            covering_gadgets=[
                g.name for g in deployment.fuzzing_report.covering_set],
            segment_signals=obfuscator.injector.components,
            reference_event=obfuscator.reference_event,
            sensitivity=obfuscator.mechanism.sensitivity,
            mechanism=("dstar" if "d*" in obfuscator.privacy_guarantee
                       else "laplace"),
            epsilon=obfuscator.epsilon,
            clip_bound=obfuscator.injector.clip_bound,
            accountant_state=obfuscator.accountant.to_dict(),
        )

    def build_obfuscator(self, rng=None) -> EventObfuscator:
        """Instantiate the online Event Obfuscator from this artifact.

        Budget already spent by the process that saved the artifact is
        restored into the new obfuscator's accountant, so accounting
        continues where it left off instead of silently resetting.
        """
        accountant = (PrivacyAccountant.from_dict(self.accountant_state)
                      if self.accountant_state is not None else None)
        return EventObfuscator(
            mechanism=self.mechanism, epsilon=self.epsilon,
            sensitivity=self.sensitivity,
            reference_event=self.reference_event,
            processor_model=self.processor_model,
            segment_signals=self.segment_signals,
            clip_bound=self.clip_bound, accountant=accountant, rng=rng)

    def update_budget(self, obfuscator: EventObfuscator) -> None:
        """Refresh the carried accountant state from a live obfuscator.

        Call before re-saving so the persisted artifact reflects every
        slice released so far (checkpointing the ε budget).
        """
        self.accountant_state = obfuscator.accountant.to_dict()
