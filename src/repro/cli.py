"""Command-line interface: the Aegis workflow end to end.

Subcommands mirror the paper's workflow::

    repro-aegis profile --workload website          # offline stage 1
    repro-aegis fuzz --budget 2000                  # offline stage 2
    repro-aegis fuzz --strategy coverage --corpus-dir corpus/
    repro-aegis search --budget 4000 --digest-out digests.json
    repro-aegis deploy --epsilon 0.5 -o aegis.json  # full offline pipeline
    repro-aegis attack --attack wfa                 # undefended attack
    repro-aegis attack --attack wfa --artifact aegis.json  # defended
    repro-aegis deploy --workers 4 --trace-dir out/ # traced pipeline
    repro-aegis report --trace out/                 # render the telemetry

Every command accepts ``--seed`` for reproducibility; human-readable
summaries go through the ``repro`` logger to stdout (``-v`` for
shard-level progress, ``-q`` to silence summaries). ``--trace-dir``
exports a merged span trace + metrics snapshot; ``--metrics`` logs the
metrics snapshot after the command. ``fuzz``/``profile``/``deploy``
keep an in-memory measurement cache per run; ``--cache-dir`` persists
it on disk (warm re-runs replay measurements bit for bit) and
``--no-cache`` turns it off.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys

import numpy as np

from repro.utils.logging import configure_cli_logging

# Named explicitly (not __name__) so summaries still route through the
# "repro" logger tree when invoked as ``python -m repro.cli``.
logger = logging.getLogger("repro.cli")


def _say(message: str) -> None:
    """A user-facing summary line (suppressed by ``-q``)."""
    logger.info(message)


def _build_workload(name: str):
    from repro.workloads import DnnWorkload, KeystrokeWorkload, WebsiteWorkload
    workloads = {
        "website": WebsiteWorkload,
        "keystroke": KeystrokeWorkload,
        "dnn": DnnWorkload,
    }
    try:
        return workloads[name]()
    except KeyError as exc:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {sorted(workloads)}"
        ) from exc


def _add_logging(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="debug logging (shard-level progress)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress summaries; warnings only")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default 0)")
    parser.add_argument("--processor", default="amd-epyc-7252",
                        help="processor model (default amd-epyc-7252)")
    _add_logging(parser)


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default="",
                        help="directory for the shared on-disk "
                             "measurement cache (persists across runs "
                             "and shard workers; re-runs replay cached "
                             "measurements bit for bit)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the measurement cache entirely "
                             "(default: in-memory cache for this run)")


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-dir", default="",
                        help="directory for span traces + metrics "
                             "snapshots (merged into trace.jsonl / "
                             "metrics.json after the run)")
    parser.add_argument("--metrics", action="store_true",
                        help="log the metrics snapshot after the command")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability plane (SLO "
                             "latency windows + attack-signal "
                             "detectors)")
    parser.add_argument("--obs-dir", default="",
                        help="directory for observability exports: "
                             "metrics-snapshots.jsonl (sequence-"
                             "numbered) and metrics.om (OpenMetrics); "
                             "implies --obs")
    parser.add_argument("--obs-profile", action="store_true",
                        help="also run the span-attributed sampling "
                             "profiler (opt-in; requires --obs)")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from exc
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}")
    return value


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for shard screening "
                             "(default 1; results are identical for "
                             "any worker count)")
    parser.add_argument("--shard-size", type=_positive_int, default=None,
                        help="gadgets per screening shard (default "
                             f"{_default_shard_size()})")
    parser.add_argument("--checkpoint-dir", default="",
                        help="directory for per-shard JSON checkpoints")
    parser.add_argument("--resume", action="store_true",
                        help="resume from --checkpoint-dir instead of "
                             "re-screening completed shards")
    parser.add_argument("--shard-timeout", type=_positive_float,
                        default=None, metavar="SECONDS",
                        help="per-shard wall-clock budget; a blown "
                             "deadline is retried like a failure "
                             "(default: no timeout)")
    parser.add_argument("--max-retries", type=_nonnegative_int, default=2,
                        help="retries per shard before bisection and "
                             "quarantine (default 2)")
    parser.add_argument("--fault-plan", default="", metavar="JSON",
                        help="arm deterministic fault injection: a JSON "
                             "fault-plan file or an inline JSON object "
                             "(chaos testing)")


def _default_shard_size() -> int:
    from repro.core.fuzzer.campaign import DEFAULT_SHARD_SIZE
    return DEFAULT_SHARD_SIZE


def _campaign_kwargs(args: argparse.Namespace) -> dict:
    """Validated campaign options shared by ``fuzz`` and ``deploy``."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    fault_plan = None
    if getattr(args, "fault_plan", ""):
        from repro.resilience import FaultPlan
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    return {"workers": args.workers,
            "checkpoint_dir": args.checkpoint_dir or None,
            "resume": args.resume,
            "cache_dir": getattr(args, "cache_dir", "") or None,
            "fault_plan": fault_plan,
            "shard_timeout": getattr(args, "shard_timeout", None),
            "max_retries": getattr(args, "max_retries", 2)}


def _log_metrics_snapshot(snapshot: dict) -> None:
    """Log every counter/gauge (the ``--metrics`` summary)."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if not counters and not gauges:
        _say("metrics: nothing recorded")
        return
    _say("metrics snapshot:")
    for name in sorted(counters):
        _say(f"  {name} = {counters[name]:g}")
    for name in sorted(gauges):
        _say(f"  {name} = {gauges[name]:g}")


@contextlib.contextmanager
def _cache_scope(args: argparse.Namespace):
    """Activate the measurement cache for one command.

    Default is a per-run in-memory cache; ``--cache-dir`` adds the
    shared on-disk tier, ``--no-cache`` goes without one entirely.
    """
    cache_dir = getattr(args, "cache_dir", None)
    no_cache = bool(getattr(args, "no_cache", False))
    if cache_dir is None and not no_cache:
        # Command has no cache flags (attack/report): nothing to scope.
        yield
        return
    if no_cache:
        if cache_dir:
            raise SystemExit("--no-cache conflicts with --cache-dir")
        yield
        return
    from repro.cache import runtime as cache_runtime
    with cache_runtime.session(cache_dir=cache_dir or None) as cache:
        yield
        stats = cache.stats
        if stats.lookups:
            _say(f"measurement cache: {stats.hits}/{stats.lookups} hits "
                 f"({stats.hit_rate:.1%}), {stats.stored} stored"
                 + (f", {stats.bytes_written:,} bytes to {cache_dir}"
                    if cache_dir else ""))


@contextlib.contextmanager
def _obs_scope(args: argparse.Namespace):
    """Activate the observability plane when its flags ask for it.

    Observability rides on the telemetry metrics registry (SLO
    histograms, ``obs.alert.*`` counters), so when telemetry is not
    otherwise configured this opens a memory-only telemetry session
    underneath the plane.
    """
    import pathlib
    obs_dir = getattr(args, "obs_dir", "") or None
    wanted = bool(getattr(args, "obs", False)) or obs_dir is not None
    if not wanted:
        if getattr(args, "obs_profile", False):
            raise SystemExit("--obs-profile requires --obs")
        yield
        return
    from repro import observability, telemetry
    with contextlib.ExitStack() as stack:
        if not telemetry.enabled():
            stack.enter_context(telemetry.session(trace_dir=None,
                                                  process="main"))
        export_path = (pathlib.Path(obs_dir) / "metrics-snapshots.jsonl"
                       if obs_dir else None)
        plane = stack.enter_context(observability.session(
            export_path=export_path,
            profile=bool(getattr(args, "obs_profile", False))))
        yield
        if obs_dir:
            path = observability.write_openmetrics(
                telemetry.metrics().snapshot(),
                pathlib.Path(obs_dir) / "metrics.om")
            _say(f"openmetrics exposition written to {path}")
        alerts = plane.detectors.alerts(ranked=True)
        if alerts:
            _say(f"observability: {len(alerts)} attack-signal alert(s)")
            for alert in alerts[:5]:
                _say(f"  [{alert.severity}] #{alert.seq} "
                     f"{alert.detector} tenant={alert.tenant_id} — "
                     f"{alert.detail}")
        if plane.profiler is not None:
            top = plane.profiler.report(top=3)
            detail = "; ".join(f"{entry['span']} ({entry['site']}) "
                               f"x{entry['samples']}" for entry in top)
            _say(f"profiler: {plane.profiler.total_samples} sample(s)"
                 + (f"; {detail}" if detail else ""))


@contextlib.contextmanager
def _telemetry_scope(args: argparse.Namespace):
    """Activate telemetry for one command when its flags ask for it."""
    trace_dir = getattr(args, "trace_dir", "") or None
    metrics_wanted = bool(getattr(args, "metrics", False))
    if trace_dir is None and not metrics_wanted:
        yield
        return
    from repro import telemetry
    with telemetry.session(trace_dir=trace_dir, process="main"):
        yield
        if metrics_wanted:
            _log_metrics_snapshot(telemetry.metrics().snapshot())
    if trace_dir is not None:
        run = telemetry.merge_run(trace_dir)
        _say(f"telemetry: {len(run.spans)} spans merged into "
             f"{trace_dir}/trace.jsonl (+ metrics.json)")


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the Application Profiler and print the event ranking."""
    from repro.core.profiler import ApplicationProfiler
    workload = _build_workload(args.workload)
    secrets = workload.secrets[:args.secrets] if args.secrets else None
    profiler = ApplicationProfiler(
        workload, processor_model=args.processor,
        runs_per_secret=args.runs, rng=args.seed)
    report = profiler.profile(secrets=secrets)
    warmup = report.warmup
    _say(f"warm-up: {warmup.total_events} events -> "
         f"{warmup.surviving_count} responsive "
         f"({warmup.surviving_fraction:.1%})")
    _say(f"simulated profiling cost: "
         f"{report.total_simulated_hours:.2f} hours")
    _say(f"top {args.top} vulnerable events:")
    for name, mi in report.ranking.top(args.top):
        _say(f"  {name:<44s} I(Y;X) = {mi:.3f} bits")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run an Event Fuzzer campaign and print the summary."""
    from repro.core.fuzzer import DEFAULT_SHARD_SIZE, EventFuzzer, FuzzingCampaign
    from repro.cpu.events import processor_catalog
    campaign_kwargs = _campaign_kwargs(args)
    if args.corpus_dir and args.strategy != "coverage":
        raise SystemExit("--corpus-dir requires --strategy coverage")
    catalog = processor_catalog(args.processor)
    events = np.flatnonzero(catalog.guest_sensitive)
    if args.events:
        events = events[:args.events]
    fuzzer = EventFuzzer(processor_model=args.processor,
                         gadget_budget=args.budget,
                         shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
                         rng=args.seed)
    campaign = FuzzingCampaign(fuzzer, strategy=args.strategy,
                               corpus_dir=args.corpus_dir or None,
                               **campaign_kwargs)
    report = campaign.run(events)
    cstats = campaign.stats
    if campaign.search_result is not None:
        sres = campaign.search_result
        _say(f"coverage search: {sres.evals} evaluations over "
             f"{sres.rounds} rounds, {sres.coverage_features} coverage "
             f"features, corpus of {sres.corpus_size} seeds")
        _say(f"  corpus replay digest {sres.corpus_replay_digest[:16]}")
    _say(f"campaign: {cstats.num_shards} shards "
         f"({cstats.resumed_shards} resumed, "
         f"{cstats.screened_shards} screened) on {cstats.workers} worker(s)")
    if cstats.retries or cstats.quarantined or cstats.pool_restarts:
        _say(f"resilience: {cstats.retries} retries "
             f"({cstats.timeouts} timeouts), {cstats.bisections} "
             f"bisections, {cstats.pool_restarts} pool restarts, "
             f"{len(cstats.quarantined)} gadgets quarantined")
    for record in cstats.quarantined:
        _say(f"  quarantined gadget {record.gadget_index} "
             f"after {record.attempts} attempts: {record.detail}")
    _say(f"cleanup: {len(report.cleanup.legal)} of "
         f"{report.cleanup.total_variants} variants legal "
         f"({report.cleanup.legal_fraction:.1%})")
    _say(f"tested {report.gadgets_tested:,} gadgets over "
         f"{report.events_fuzzed} events "
         f"(space: {report.search_space_size:,})")
    for step, seconds in report.step_seconds.items():
        _say(f"  {step:<24s} {seconds:8.2f} s")
    stats = report.gadget_count_stats()
    _say(f"gadgets/event: mean {stats['mean']:.0f} "
         f"median {stats['median']:.0f} max {stats['max']:.0f}")
    _say(f"covering set: {len(report.covering_set)} gadgets cover "
         f"{sum(len(v) for v in report.covering_set.values())} events")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """Run the coverage-guided gadget search standalone."""
    from repro.core.fuzzer import EventFuzzer
    from repro.cpu.events import processor_catalog
    from repro.search import CoverageSearch
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    fault_plan = None
    if args.fault_plan:
        from repro.resilience import FaultPlan
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    catalog = processor_catalog(args.processor)
    events = np.flatnonzero(catalog.guest_sensitive)
    if args.events:
        events = events[:args.events]
    fuzzer = EventFuzzer(processor_model=args.processor,
                         gadget_budget=args.budget, rng=args.seed)
    search = CoverageSearch(
        fuzzer.search_config(events), max_evals=args.budget,
        workers=args.workers,
        corpus_dir=args.corpus_dir or None,
        checkpoint_dir=args.checkpoint_dir or None,
        resume=args.resume,
        target_events=args.target_events,
        minimize=not args.no_minimize,
        fault_plan=fault_plan)
    result = search.run()
    _say(f"search: {result.evals} evaluations over {result.rounds} "
         f"rounds on {args.workers} worker(s) "
         f"({result.elapsed_seconds:.2f} s)")
    _say(f"covered {result.covered_count} of {len(events)} events, "
         f"{result.coverage_features} coverage features")
    _say(f"corpus: {result.corpus_size} seeds "
         f"({result.minimize_evals} minimization measurements, "
         f"{result.corpus_misses} damaged entries skipped)")
    _say(f"corpus replay digest {result.corpus_replay_digest[:16]}, "
         f"coverage digest {result.coverage_digest[:16]}")
    if args.digest_out:
        import json
        import pathlib
        payload = {"corpus_replay_digest": result.corpus_replay_digest,
                   "coverage_digest": result.coverage_digest,
                   "evals": result.evals,
                   "rounds": result.rounds,
                   "covered_events": result.covered_count,
                   "coverage_features": result.coverage_features,
                   "corpus_size": result.corpus_size}
        pathlib.Path(args.digest_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        _say(f"digests written to {args.digest_out}")
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    """Run the full offline pipeline and save the deployment artifact."""
    from repro.core import Aegis
    from repro.core.artifacts import DeploymentArtifact
    campaign_kwargs = _campaign_kwargs(args)
    workload = _build_workload(args.workload)
    secrets = workload.secrets[:args.secrets] if args.secrets else None
    aegis = Aegis(workload, processor_model=args.processor,
                  mechanism=args.mechanism, epsilon=args.epsilon,
                  runs_per_secret=args.runs, gadget_budget=args.budget,
                  shard_size=args.shard_size, rng=args.seed,
                  **campaign_kwargs)
    deployment = aegis.deploy(secrets=secrets)
    artifact = DeploymentArtifact.from_deployment(deployment)
    artifact.save(args.output)
    _say(f"profiled {len(artifact.vulnerable_events)} vulnerable events")
    _say(f"covering set: {len(artifact.covering_gadgets)} gadgets")
    _say(f"calibrated sensitivity: {artifact.sensitivity:.4g} "
         f"counts/slice")
    _say(f"privacy guarantee: "
         f"{deployment.obfuscator.privacy_guarantee}")
    _say(f"artifact written to {args.output}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Mount one of the case-study attacks, optionally defended."""
    from repro.attacks import (
        KeystrokeSniffingAttack,
        ModelExtractionAttack,
        TraceCollector,
        WebsiteFingerprintingAttack,
    )
    obfuscator = None
    if args.artifact:
        from repro.core.artifacts import DeploymentArtifact
        obfuscator = DeploymentArtifact.load(args.artifact) \
            .build_obfuscator(rng=args.seed + 1)
    if args.attack == "wfa":
        workload = _build_workload("website")
        secrets = workload.secrets[:args.secrets or 10]
        collector = TraceCollector(workload, duration_s=3.0,
                                   slice_s=args.slice, rng=args.seed,
                                   obfuscator=obfuscator)
        dataset = collector.collect(args.runs, secrets=secrets)
        attack = WebsiteFingerprintingAttack(
            num_sites=len(secrets), downsample=2, epochs=args.epochs,
            batch_size=16, rng=args.seed + 2)
        accuracy = attack.run(dataset).test_accuracy
        guess = 1.0 / len(secrets)
    elif args.attack == "ksa":
        workload = _build_workload("keystroke")
        collector = TraceCollector(workload, duration_s=3.0,
                                   slice_s=args.slice, rng=args.seed,
                                   obfuscator=obfuscator)
        dataset = collector.collect(args.runs)
        attack = KeystrokeSniffingAttack(downsample=2, epochs=args.epochs,
                                         rng=args.seed + 2)
        accuracy = attack.run(dataset).test_accuracy
        guess = 0.1
    elif args.attack == "mea":
        workload = _build_workload("dnn")
        secrets = workload.secrets[:args.secrets or 10]
        collector = TraceCollector(workload, duration_s=3.0,
                                   slice_s=min(args.slice, 0.004),
                                   rng=args.seed, obfuscator=obfuscator)
        dataset = collector.collect(args.runs, secrets=secrets,
                                    with_frames=True)
        attack = ModelExtractionAttack(downsample=2, epochs=args.epochs,
                                       rng=args.seed + 2)
        accuracy = attack.run(dataset).test_sequence_accuracy
        guess = 0.0
    else:
        raise SystemExit(f"unknown attack {args.attack!r}")
    label = "defended" if obfuscator else "undefended"
    if obfuscator is not None:
        _say(f"privacy budget: {obfuscator.accountant.statement()}")
    _say(f"{args.attack.upper()} {label} accuracy: {accuracy:.3f} "
         f"(random guess: {guess:.3f})")
    return 0


def _fleet_artifact(args: argparse.Namespace):
    """Resolve the deployment artifact for a fleet command.

    ``--artifact`` loads a plain artifact JSON; ``--registry`` loads
    the latest compatible version from an artifact registry; with
    neither, a synthetic default calibration stands in (demos, smoke
    tests).
    """
    from repro.fleet import check_compatible, default_artifact
    if args.artifact and args.registry:
        raise SystemExit("--artifact conflicts with --registry")
    if args.artifact:
        from repro.core.artifacts import DeploymentArtifact
        artifact = DeploymentArtifact.load(args.artifact)
    elif args.registry:
        from repro.fleet import ArtifactRegistry
        artifact = ArtifactRegistry(args.registry).load(
            args.processor, args.workload)
    else:
        return default_artifact(args.processor)
    try:
        check_compatible(artifact, args.processor)
    except Exception as exc:
        raise SystemExit(str(exc)) from exc
    return artifact


def _parse_attackers(text: str) -> dict:
    """``t02=burst-poll,t03=single-step`` -> attacker profiles."""
    from repro.fleet import AttackerProfile
    profiles = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        tenant, sep, kind = part.partition("=")
        if not sep or not tenant.strip() or not kind.strip():
            raise SystemExit("--attackers entries look like "
                             f"tenant=kind, got {part!r}")
        try:
            profiles[tenant.strip()] = AttackerProfile(kind=kind.strip())
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    return profiles


def _fleet_fault_plan(args: argparse.Namespace):
    if not getattr(args, "fault_plan", ""):
        return None
    from repro.resilience import FaultPlan
    try:
        return FaultPlan.parse(args.fault_plan)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _fleet_defense_profile(args: argparse.Namespace):
    """Resolve ``--defense-policy`` / ``--escalation-profile``.

    ``--escalation-profile`` (inline JSON or a JSON file) wins over a
    named ``--defense-policy``; ``None`` means the static policy.
    """
    profile_json = getattr(args, "escalation_profile", "")
    if profile_json:
        from repro.fleet import EscalationProfile
        try:
            return EscalationProfile.parse(profile_json)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    name = getattr(args, "defense_policy", "")
    if name:
        from repro.fleet import resolve_profile
        try:
            return resolve_profile(name)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    return None


def _fleet_specs(args: argparse.Namespace):
    import math

    from repro.fleet import default_specs
    cap = args.epsilon_cap if args.epsilon_cap is not None else math.inf
    return default_specs(args.tenants, workload=args.workload,
                         epsilon_cap=cap)


def _fleet_run(args: argparse.Namespace):
    """Build a fresh control plane and replay one load-generation run."""
    from contextlib import nullcontext

    from repro.fleet import FleetControlPlane, LoadGenerator
    from repro.fleet import runtime as fleet_runtime
    from repro.observability import runtime as observability
    from repro.resilience import runtime as resilience
    artifact = _fleet_artifact(args)
    fault_plan = _fleet_fault_plan(args)
    policy = _fleet_defense_profile(args)
    try:
        plane = FleetControlPlane(artifact, seed=args.seed,
                                  defense_policy=policy)
        specs = _fleet_specs(args)
        generator = LoadGenerator(
            plane, specs, windows=args.windows,
            slices_per_window=args.slices,
            concurrency=args.concurrency or None,
            attackers=_parse_attackers(getattr(args, "attackers", "")))
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    # The defense plane decides on detector alerts, so an armed policy
    # needs an observability plane even without --obs.
    obs_scope = observability.session() \
        if policy is not None and not observability.enabled() \
        else nullcontext()
    with obs_scope:
        with fleet_runtime.session(plane), resilience.session(fault_plan):
            report = generator.run()
        status = plane.status()
    return status, report


def _fleet_run_sharded(args: argparse.Namespace):
    """Replay one load across ``--shards`` worker processes."""
    from repro.fleet import ShardCrashed, ShardedFleet
    if getattr(args, "obs_dir", ""):
        raise SystemExit("--obs-dir needs the single-process fleet; "
                         "omit --shards (plain --obs merges per-shard "
                         "SLO windows into the status file)")
    artifact = _fleet_artifact(args)
    fleet = ShardedFleet(
        artifact, shards=args.shards, seed=args.seed,
        fault_plan=_fleet_fault_plan(args),
        max_tenants_per_shard=args.max_tenants_per_shard or None,
        overflow_policy=args.overflow_policy,
        defense_policy=_fleet_defense_profile(args))
    try:
        report = fleet.run(
            _fleet_specs(args), windows=args.windows,
            slices_per_window=args.slices, mode=args.shard_mode,
            concurrency=args.concurrency or None,
            observe=bool(getattr(args, "obs", False)),
            attackers=_parse_attackers(
                getattr(args, "attackers", "")) or None)
    except (ValueError, ShardCrashed) as exc:
        raise SystemExit(str(exc)) from exc
    return fleet.status(report), report


def _write_fleet_status(args: argparse.Namespace, status: dict,
                        report) -> None:
    if not getattr(args, "state_dir", ""):
        return
    import pathlib

    from repro.fleet import write_json_atomic
    state_dir = pathlib.Path(args.state_dir)
    status = dict(status)
    status["replay"] = report.to_dict()
    path = write_json_atomic(state_dir / "fleet-status.json", status)
    _say(f"fleet status written to {path}")


def _say_fleet_summary(report) -> None:
    _say(f"fleet: {len(report.tenants)} tenants x {report.windows} "
         f"windows of {report.slices_per_window} slices")
    _say(f"served {report.served_windows} windows "
         f"({report.served_slices:,} slices) at "
         f"{report.slices_per_second:,.0f} noised slices/s; "
         f"{report.rejected_windows} rejected")
    for tenant_id, reasons in sorted(report.rejections.items()):
        _say(f"  {tenant_id}: rejected {len(reasons)} "
             f"({', '.join(sorted(set(reasons)))})")


def _say_sharding_summary(report) -> None:
    _say(f"sharding: {report.shards} shard(s), {report.mode} mode, "
         f"{len(report.crashes)} crash(es) recovered")
    _say(f"  dropped tenants: {len(report.dropped_tenants)}, "
         f"queued tenants: {len(report.queued_tenants)}")


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Serve a replayed multi-tenant load and persist fleet status."""
    if getattr(args, "shards", None):
        status, report = _fleet_run_sharded(args)
        _say_fleet_summary(report)
        _say_sharding_summary(report)
    else:
        status, report = _fleet_run(args)
        _say_fleet_summary(report)
    exhausted = [tid for tid, row in report.budgets.items()
                 if row["exhausted"]]
    if exhausted:
        _say(f"budget-exhausted tenants: {', '.join(exhausted)}")
    _write_fleet_status(args, status, report)
    return 0


def cmd_fleet_replay(args: argparse.Namespace) -> int:
    """Replay the same load twice and verify bit-identity."""
    if args.repeat < 2:
        raise SystemExit("--repeat must be >= 2 to compare replays")
    runner = _fleet_run_sharded if getattr(args, "shards", None) \
        else _fleet_run
    reference = None
    status = report = None
    for _ in range(args.repeat):
        status, report = runner(args)
        fingerprint = report.fingerprint()
        if reference is None:
            reference = fingerprint
        elif fingerprint != reference:
            _say("replay DIVERGED: noised reads or ledgers differ "
                 "across repeats")
            return 1
    _say_fleet_summary(report)
    if getattr(args, "shards", None):
        _say_sharding_summary(report)
    _say(f"replay bit-identical across {args.repeat} runs "
         f"(per-tenant noise sequences and ledgers)")
    _write_fleet_status(args, status, report)
    return 0


def _read_status_with_retry(path, retries: int = 5,
                            backoff_base: float = 0.02) -> dict:
    """Read fleet-status.json, riding out the atomic-rename gap.

    ``fleet serve`` writes the status file with tmp+rename and sweeps
    stale tmp files; a watcher polling at exactly the wrong moment can
    see the path momentarily absent (or half-swept on filesystems
    without atomic rename visibility). Retry with bounded, seeded
    backoff — deterministic jitter from the attempt number, like the
    shard supervisor's — instead of crashing the dashboard.
    """
    import json
    import time

    from repro.resilience.faults import _hash01
    for attempt in range(retries + 1):
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            if attempt == retries:
                raise
            backoff = min(0.25, backoff_base * 2 ** attempt)
            time.sleep(backoff * (1.0 + 0.5 * _hash01(
                0, "status-watch", attempt)))
    raise AssertionError("unreachable")  # pragma: no cover


def _health_exit(status: dict) -> int:
    """Exit code from the status health block: say why when degraded."""
    health = status.get("health")
    if health is None or health.get("healthy", True):
        return 0
    for reason in health.get("reasons", []):
        _say(f"UNHEALTHY: {reason}")
    return 1


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """Render a fleet-status.json written by ``fleet serve``.

    Exits non-zero when the control plane reports degraded health
    (provisioning stalls, watchdog-restarted daemons), so scripts and
    CI can gate on it.
    """
    import json
    import pathlib
    import time
    path = pathlib.Path(args.state_dir) / "fleet-status.json"
    if not path.is_file():
        raise SystemExit(f"no fleet status at {path}; run "
                         f"'fleet serve --state-dir {args.state_dir}' first")
    if args.watch:
        from repro.observability import render_status_frame
        status = None
        for frame in range(args.frames):
            if frame:
                time.sleep(args.interval)
            status = _read_status_with_retry(path)
            _say(render_status_frame(status, frame=frame).rstrip())
        return _health_exit(status)
    status = json.loads(path.read_text(encoding="utf-8"))
    _say(f"fleet on {status['processor_model']} "
         f"({status['mechanism']}, eps={status['epsilon']:g}/slice), "
         f"seed {status['seed']}, {status['ticks']} ticks")
    _say(f"windows: {status['admitted_windows']} admitted, "
         f"{status['rejected_windows']} rejected")
    for tenant_id in sorted(status["tenants"]):
        row = status["tenants"][tenant_id]
        budget = status["budgets"][tenant_id]
        cap = budget["epsilon_cap"]
        cap_text = "uncapped" if cap is None else (
            f"{budget['epsilon_spent']:g}/{cap:g} eps")
        _say(f"  {tenant_id}: {row['windows_served']} windows "
             f"({row['slices_served']:,} slices), buffer "
             f"{row['buffer_available']}/{row['buffer_capacity']}, "
             f"{row['refills']} refills, {row['daemon_restarts']} "
             f"restarts, budget {cap_text}"
             + (" [EXHAUSTED]" if budget["exhausted"] else ""))
    observability = status.get("observability")
    if observability is not None:
        alerts = observability.get("alerts", [])
        _say(f"alerts: {len(alerts)}")
        for alert in alerts[:5]:
            _say(f"  [{alert['severity']}] #{alert['seq']} "
                 f"{alert['detector']} tenant={alert['tenant_id']}")
    defense = status.get("defense")
    if defense is not None:
        states = defense["states"]
        _say(f"defense: profile {defense['profile']['name']}, "
             + ", ".join(f"{state}={count}"
                         for state, count in states.items())
             + f", {defense['policy_faults']} policy fault(s)")
        for tenant_id, row in sorted(defense["tenants"].items()):
            if row["state"] == "NORMAL" and not row["transitions"]:
                continue
            _say(f"  {tenant_id}: {row['state']}"
                 + (" [fault-forced]" if row["fault_forced"] else "")
                 + f", {row['alerts_seen']} alert(s), "
                 f"{len(row['transitions'])} transition(s), "
                 f"{row['quarantined_windows']} window(s) quarantined")
    sharding = status.get("sharding")
    if sharding is not None:
        _say(f"sharding: {sharding['shards']} shard(s), "
             f"{sharding['mode']} mode, "
             f"{len(sharding['crashes'])} crash(es) recovered, "
             f"{len(sharding['dropped_tenants'])} dropped, "
             f"{len(sharding['queued_tenants'])} queued")
        for row in sharding["per_shard"]:
            _say(f"  shard {row['shard_id']} gen {row['generation']}: "
                 f"{len(row['tenants'])} tenants, "
                 f"{row['served_windows']} windows, "
                 f"{row['plan_segments']} shared plan segment(s)")
    return _health_exit(status)


def cmd_top(args: argparse.Namespace) -> int:
    """Render the ``repro top`` dashboard from a metrics directory."""
    import json
    import pathlib
    import time

    from repro.observability import render_top
    from repro.telemetry import merge_run, read_snapshot
    trace_dir = pathlib.Path(args.trace)

    def _snapshot() -> dict:
        merged = trace_dir / "metrics.json"
        if merged.is_file():
            return read_snapshot(merged)
        if any(trace_dir.glob("metrics-*.json")):
            return merge_run(trace_dir, write=False).metrics
        raise SystemExit(f"no metrics snapshots under {trace_dir}")

    def _alerts() -> "list | None":
        if not args.state_dir:
            return None
        status_path = pathlib.Path(args.state_dir) / "fleet-status.json"
        if not status_path.is_file():
            return None
        status = json.loads(status_path.read_text(encoding="utf-8"))
        return status.get("observability", {}).get("alerts")

    for frame in range(args.frames):
        if frame:
            time.sleep(args.interval)
        _say(render_top(_snapshot(), alerts=_alerts(),
                        top=args.top).rstrip())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a deployment artifact and/or a telemetry run."""
    if not args.artifact and not args.trace:
        raise SystemExit("report requires --artifact and/or --trace")
    parts = []
    if args.artifact:
        from repro.analysis.report import deployment_report
        from repro.core.artifacts import DeploymentArtifact
        artifact = DeploymentArtifact.load(args.artifact)
        parts.append(deployment_report(
            artifact, window_slices=args.window_slices))
    if args.trace:
        from repro.telemetry import render_trace_dir
        parts.append(render_trace_dir(args.trace))
    text = "\n".join(parts)
    if args.output:
        import pathlib
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        _say(f"report written to {args.output}")
    else:
        _say(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-aegis",
        description="Aegis: HPC side-channel attacks and the DP defense "
                    "on a simulated SEV platform")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="run the Application Profiler")
    _add_common(p)
    p.add_argument("--workload", default="website",
                   choices=("website", "keystroke", "dnn"))
    p.add_argument("--secrets", type=int, default=8,
                   help="number of secrets to profile (0 = all)")
    p.add_argument("--runs", type=int, default=6,
                   help="profiling runs per secret")
    p.add_argument("--top", type=int, default=8,
                   help="vulnerable events to print")
    _add_cache_options(p)
    _add_telemetry_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("fuzz", help="run an Event Fuzzer campaign")
    _add_common(p)
    p.add_argument("--budget", type=int, default=2000,
                   help="gadget pairs to sample")
    p.add_argument("--events", type=int, default=0,
                   help="limit fuzzed events (0 = all guest-sensitive)")
    p.add_argument("--strategy", default="grammar",
                   choices=("grammar", "coverage"),
                   help="screening strategy: blind grammar sampling "
                        "(grammar, default) or the coverage-guided "
                        "corpus search (coverage)")
    p.add_argument("--corpus-dir", default="",
                   help="on-disk corpus directory for --strategy "
                        "coverage (persists minimized seeds + coverage "
                        "signatures across runs)")
    _add_campaign_options(p)
    _add_cache_options(p)
    _add_telemetry_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("search",
                       help="standalone coverage-guided gadget search")
    _add_common(p)
    p.add_argument("--budget", type=_positive_int, default=2000,
                   help="evaluation budget (default 2000; counts "
                        "bootstrap samples, mutants, probes, and "
                        "minimization measurements)")
    p.add_argument("--events", type=int, default=0,
                   help="limit target events (0 = all guest-sensitive)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for chunk evaluation "
                        "(default 1; results are bit-identical for "
                        "any worker count)")
    p.add_argument("--corpus-dir", default="",
                   help="directory mirroring corpus admissions on disk")
    p.add_argument("--checkpoint-dir", default="",
                   help="directory for the round-granular search "
                        "checkpoint")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint-dir instead of "
                        "restarting the search")
    p.add_argument("--target-events", type=_positive_int, default=None,
                   help="stop early once this many events are covered")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip greedy seed minimization at admission")
    p.add_argument("--fault-plan", default="", metavar="JSON",
                   help="arm deterministic fault injection (e.g. the "
                        "search.corpus.write chaos point)")
    p.add_argument("--digest-out", default="", metavar="FILE",
                   help="write corpus replay + coverage digests and "
                        "eval counts as JSON (worker-invariance "
                        "comparisons in CI)")
    _add_telemetry_options(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("deploy",
                       help="full offline pipeline -> artifact JSON")
    _add_common(p)
    p.add_argument("--workload", default="website",
                   choices=("website", "keystroke", "dnn"))
    p.add_argument("--mechanism", default="laplace",
                   choices=("laplace", "dstar"))
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--secrets", type=int, default=8)
    p.add_argument("--runs", type=int, default=6)
    p.add_argument("--budget", type=int, default=1000)
    p.add_argument("-o", "--output", default="aegis-artifact.json")
    _add_campaign_options(p)
    _add_cache_options(p)
    _add_telemetry_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("attack", help="mount a case-study attack")
    _add_common(p)
    p.add_argument("--attack", default="wfa",
                   choices=("wfa", "ksa", "mea"))
    p.add_argument("--artifact", default="",
                   help="deployment artifact JSON; enables the defense")
    p.add_argument("--secrets", type=int, default=0,
                   help="number of secrets (0 = attack default)")
    p.add_argument("--runs", type=int, default=16,
                   help="traces per secret")
    p.add_argument("--epochs", type=int, default=30)
    p.add_argument("--slice", type=float, default=0.01,
                   help="monitor sampling interval in seconds")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("fleet",
                       help="multi-tenant fleet control plane "
                            "(serve/replay/status)")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_load_options(fp: argparse.ArgumentParser) -> None:
        _add_common(fp)
        fp.add_argument("--tenants", type=_positive_int, default=4,
                        help="tenant guests to admit (default 4)")
        fp.add_argument("--windows", type=_positive_int, default=4,
                        help="replayed windows per tenant (default 4)")
        fp.add_argument("--slices", type=_positive_int, default=3000,
                        help="slices per window (default 3000, the "
                             "paper's 3 s at 1 ms)")
        fp.add_argument("--concurrency", type=_nonnegative_int, default=0,
                        help="tenants interleaved per scheduling round "
                             "(0 = all)")
        fp.add_argument("--workload", default="website",
                        choices=("website", "keystroke", "dnn", "rsa"))
        fp.add_argument("--epsilon-cap", type=_positive_float, default=None,
                        help="per-tenant composed-eps quota "
                             "(default: uncapped)")
        fp.add_argument("--artifact", default="",
                        help="deployment artifact JSON calibrating the "
                             "fleet (default: synthetic calibration)")
        fp.add_argument("--registry", default="",
                        help="artifact registry directory; loads the "
                             "latest version for (processor, workload)")
        fp.add_argument("--shards", type=_positive_int, default=None,
                        help="shard the fleet across N worker "
                             "processes (consistent-hash tenant "
                             "placement; per-tenant digests are "
                             "bit-identical at any shard count)")
        fp.add_argument("--shard-mode", default="process",
                        choices=("process", "inline"),
                        help="run shards in forked workers (process, "
                             "default) or sequentially in-process "
                             "(inline)")
        fp.add_argument("--max-tenants-per-shard", type=_nonnegative_int,
                        default=0, metavar="N",
                        help="per-shard tenant cap (0 = uncapped); "
                             "overflow follows --overflow-policy")
        fp.add_argument("--overflow-policy", default="queue",
                        choices=("queue", "drop"),
                        help="over-cap tenants: serve later on their "
                             "own shard (queue, default) or reject "
                             "loudly (drop)")
        fp.add_argument("--fault-plan", default="", metavar="JSON",
                        help="arm deterministic fault injection "
                             "(fleet.provision / fleet.admit / "
                             "fleet.policy / fleet.shard chaos)")
        fp.add_argument("--state-dir", default="",
                        help="directory for fleet-status.json")
        fp.add_argument("--attackers", default="", metavar="SPEC",
                        help="inject attack read traces: comma-"
                             "separated tenant=kind pairs, kinds "
                             "single-step (SEV-Step cadence) and "
                             "burst-poll (register-rotating burst); "
                             "needs --obs or --defense-policy to be "
                             "detected (works with --shards: the "
                             "alert stream is per-tenant "
                             "deterministic at any shard count)")
        fp.add_argument("--defense-policy", default="",
                        choices=("", "balanced", "aggressive",
                                 "conservative"),
                        help="arm the adaptive defense plane with a "
                             "named escalation profile: detector "
                             "alerts drive per-tenant eps "
                             "reallocation, Laplace->d* plan "
                             "escalation, and fail-closed quarantine")
        fp.add_argument("--escalation-profile", default="",
                        metavar="JSON",
                        help="custom escalation profile (inline JSON "
                             "or a JSON file); overrides "
                             "--defense-policy")
        _add_telemetry_options(fp)
        _add_obs_options(fp)

    fp = fleet_sub.add_parser("serve",
                              help="serve a replayed multi-tenant load")
    _add_fleet_load_options(fp)
    fp.set_defaults(func=cmd_fleet_serve)

    fp = fleet_sub.add_parser("replay",
                              help="replay the same load repeatedly and "
                                   "verify bit-identity")
    _add_fleet_load_options(fp)
    fp.add_argument("--repeat", type=_positive_int, default=2,
                    help="independent replays to compare (default 2)")
    fp.set_defaults(func=cmd_fleet_replay)

    fp = fleet_sub.add_parser("status",
                              help="render fleet-status.json (exits "
                                   "non-zero on degraded health)")
    _add_logging(fp)
    fp.add_argument("--state-dir", required=True,
                    help="directory holding fleet-status.json")
    fp.add_argument("--watch", action="store_true",
                    help="render live dashboard frames instead of the "
                         "one-shot summary")
    fp.add_argument("--frames", type=_positive_int, default=1,
                    help="frames to render with --watch (default 1)")
    fp.add_argument("--interval", type=_positive_float, default=2.0,
                    help="seconds between --watch frames (default 2)")
    fp.set_defaults(func=cmd_fleet_status)

    p = sub.add_parser("top",
                       help="terminal dashboard over a metrics "
                            "directory: SLO latencies, busiest "
                            "counters, attack-signal alerts")
    _add_logging(p)
    p.add_argument("--trace", required=True,
                   help="telemetry directory holding metrics.json or "
                        "per-process metrics-*.json snapshots")
    p.add_argument("--state-dir", default="",
                   help="fleet state directory; adds the alert stream "
                        "from fleet-status.json")
    p.add_argument("--top", type=_positive_int, default=8,
                   help="busiest counters to chart (default 8)")
    p.add_argument("--frames", type=_positive_int, default=1,
                   help="frames to render (default 1)")
    p.add_argument("--interval", type=_positive_float, default=2.0,
                   help="seconds between frames (default 2)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("report",
                       help="render a deployment artifact and/or a "
                            "telemetry run as markdown")
    _add_logging(p)
    p.add_argument("--artifact", default="",
                   help="deployment artifact JSON")
    p.add_argument("--trace", default="",
                   help="telemetry directory from --trace-dir; renders "
                        "stage timings, shard balance, and the "
                        "composed ε spent")
    p.add_argument("--window-slices", type=int, default=3000,
                   help="slices per monitoring window for the budget "
                        "composition statement")
    p.add_argument("-o", "--output", default="",
                   help="write to a file instead of stdout")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(verbose=getattr(args, "verbose", 0),
                          quiet=getattr(args, "quiet", False))
    with _telemetry_scope(args), _obs_scope(args), _cache_scope(args):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
