"""Shared analysis utilities: trace MI, Gaussian/Q-Q stats, overhead,
ASCII charts and deployment reports."""

from repro.analysis.mutual_information import trace_mutual_information
from repro.analysis.stats import gaussian_fit, qq_points, shapiro_francia_w
from repro.analysis.overhead import (
    OverheadReport,
    app_cycles_per_slice,
    measure_overhead,
)
from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.analysis.report import deployment_report

__all__ = [
    "OverheadReport",
    "app_cycles_per_slice",
    "bar_chart",
    "deployment_report",
    "gaussian_fit",
    "measure_overhead",
    "qq_points",
    "shapiro_francia_w",
    "sparkline",
    "trace_mutual_information",
]
