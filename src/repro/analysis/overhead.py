"""Defense overhead accounting (paper Fig. 10).

Two costs: *latency* (the protected application runs longer because the
injected gadgets share its pinned vCPU) and *CPU usage* (the extra
utilization visible to the host's `top`). Both are derived from cycle
counts: the application's per-slice cycle demand is estimated with the
same dispatch-width + miss-penalty model the pipeline uses, and the
injector reports its injected cycles exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.obfuscator.injector import InjectionReport
from repro.cpu.signals import Signal


def app_cycles_per_slice(matrix: np.ndarray,
                         dispatch_width: float = 4.0) -> np.ndarray:
    """Estimated application cycle demand per slice from its signals."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be (T, NUM_SIGNALS)")
    return (matrix[:, Signal.UOPS] / dispatch_width
            + 10.0 * matrix[:, Signal.L1D_MISS]
            + 30.0 * matrix[:, Signal.L2_MISS]
            + 140.0 * matrix[:, Signal.LLC_MISS]
            + 16.0 * matrix[:, Signal.BRANCH_MISS])


@dataclass
class OverheadReport:
    """Latency and CPU-usage overhead of one defended window."""

    latency_overhead: float
    cpu_usage_clean: float
    cpu_usage_defended: float

    @property
    def cpu_usage_overhead(self) -> float:
        return self.cpu_usage_defended - self.cpu_usage_clean


def measure_overhead(clean_matrix: np.ndarray, report: InjectionReport,
                     slice_s: float, frequency_hz: float = 3.1e9,
                     active_threshold: float = 0.02) -> OverheadReport:
    """Overhead of one window given its clean signals and injections.

    Latency overhead counts injected cycles only on slices where the
    application is actually active (its cycle demand exceeds
    ``active_threshold`` of the core capacity) — injection during idle
    slices costs CPU but delays nothing. CPU usage is measured over the
    whole window, as the host's `top` would.
    """
    app_cycles = app_cycles_per_slice(clean_matrix)
    capacity = slice_s * frequency_hz
    active = app_cycles > active_threshold * capacity
    app_active = app_cycles[active].sum()
    latency = (float(report.injected_cycles[active].sum() / app_active)
               if app_active > 0 else 0.0)
    total_capacity = capacity * len(clean_matrix)
    cpu_clean = float(app_cycles.sum() / total_capacity)
    cpu_defended = float(
        (app_cycles.sum() + report.total_cycles) / total_capacity)
    return OverheadReport(latency_overhead=latency,
                          cpu_usage_clean=cpu_clean,
                          cpu_usage_defended=cpu_defended)
