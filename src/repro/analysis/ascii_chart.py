"""ASCII chart helpers for benchmark result files.

The benchmark suite writes plain-text result tables; a sparkline and a
tiny bar chart make trends (training curves, ε sweeps) legible in the
same medium.
"""

from __future__ import annotations

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, lo: "float | None" = None,
              hi: "float | None" = None) -> str:
    """Render values as a unicode sparkline (one char per value)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    lo = float(data.min()) if lo is None else float(lo)
    hi = float(data.max()) if hi is None else float(hi)
    if hi <= lo:
        return _SPARK_LEVELS[0] * data.size
    scaled = (data - lo) / (hi - lo)
    indices = np.clip((scaled * (len(_SPARK_LEVELS) - 1)).round(), 0,
                      len(_SPARK_LEVELS) - 1).astype(int)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def bar_chart(rows: "list[tuple[str, float]]", width: int = 40,
              unit: str = "") -> str:
    """Render labelled values as horizontal ASCII bars."""
    if not rows:
        return ""
    peak = max(abs(v) for _, v in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        length = int(round(abs(value) / peak * width))
        lines.append(f"{label:<{label_width}s} "
                     f"{'#' * length:<{width}s} {value:g}{unit}")
    return "\n".join(lines)
