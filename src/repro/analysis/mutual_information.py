"""Mutual information between clean and noised traces (paper Fig. 9c).

The paper argues the defense is attack-agnostic because I(X; X') — the
mutual information between the clean leakage trace X and its noised
version X' — shrinks with the injected noise, which bounds I(X'; Y) by
the data-processing inequality. We estimate I(X; X') per time slice
with a Gaussian approximation and average, mirroring the "real mutual
information" curve in the paper.
"""

from __future__ import annotations

import numpy as np


def _gaussian_mi(x: np.ndarray, x_noised: np.ndarray) -> float:
    """Gaussian MI estimate from the correlation coefficient (bits)."""
    if x.std() == 0 or x_noised.std() == 0:
        return 0.0
    rho = float(np.corrcoef(x, x_noised)[0, 1])
    rho = float(np.clip(rho, -0.999999, 0.999999))
    return -0.5 * np.log2(1.0 - rho * rho)


def trace_mutual_information(clean: np.ndarray, noised: np.ndarray,
                             per_slice: bool = False
                             ) -> "float | np.ndarray":
    """I(X; X') between aligned clean/noised trace sets.

    Parameters
    ----------
    clean / noised:
        (N, T) matrices of one event's values across N runs; row i of
        both matrices comes from the same run.
    per_slice:
        Return the per-slice MI vector instead of the mean.
    """
    clean = np.asarray(clean, dtype=np.float64)
    noised = np.asarray(noised, dtype=np.float64)
    if clean.shape != noised.shape or clean.ndim != 2:
        raise ValueError(
            f"clean and noised must be matching (N, T) matrices, got "
            f"{clean.shape} and {noised.shape}")
    if len(clean) < 3:
        raise ValueError("need at least 3 runs for an MI estimate")
    values = np.array([
        _gaussian_mi(clean[:, t], noised[:, t])
        for t in range(clean.shape[1])
    ])
    return values if per_slice else float(values.mean())
