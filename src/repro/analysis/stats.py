"""Distribution diagnostics for HPC event values (paper Fig. 3).

The profiler's Gaussian modelling is justified empirically: per-secret
event values look normal in a histogram and lie on the Q-Q line. These
helpers produce the same diagnostics.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def gaussian_fit(values: np.ndarray) -> tuple[float, float]:
    """(mu, sigma) maximum-likelihood Gaussian fit."""
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least 2 values to fit a Gaussian")
    return float(values.mean()), float(values.std())


def qq_points(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quantile-quantile points against N(0, 1) (paper Fig. 3b).

    Returns (theoretical quantiles, standardized sample quantiles); a
    normal sample lies on the y = x line.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 3:
        raise ValueError("need at least 3 values for a Q-Q plot")
    mu, sigma = gaussian_fit(values)
    if sigma == 0:
        raise ValueError("degenerate sample: zero variance")
    standardized = np.sort((values - mu) / sigma)
    probs = (np.arange(1, values.size + 1) - 0.5) / values.size
    theoretical = stats.norm.ppf(probs)
    return theoretical, standardized


def shapiro_francia_w(values: np.ndarray) -> float:
    """Shapiro-Francia W': squared correlation of the Q-Q points.

    Close to 1 for normal samples — a scalar summary of how straight
    the Q-Q plot is.
    """
    theoretical, sample = qq_points(values)
    rho = np.corrcoef(theoretical, sample)[0, 1]
    return float(rho * rho)
