"""Human-readable deployment reports.

Renders a deployed Aegis configuration — profiling results, covering
set, DP calibration, budget composition — as one markdown document a
customer can archive next to the artifact JSON.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.core.artifacts import DeploymentArtifact
from repro.core.obfuscator.budget import PrivacyAccountant
from repro.cpu.signals import Signal


def deployment_report(artifact: DeploymentArtifact,
                      window_slices: int = 3000,
                      top_events: int = 10) -> str:
    """Render a markdown report for a deployment artifact."""
    if window_slices < 1:
        raise ValueError(f"window_slices must be >= 1, got {window_slices}")
    mi = np.asarray(artifact.mutual_information_bits, dtype=float)
    order = np.argsort(-mi)
    lines = [
        "# Aegis deployment report",
        "",
        f"- processor model: `{artifact.processor_model}`",
        f"- mechanism: **{artifact.mechanism}**, epsilon = "
        f"{artifact.epsilon:g}",
        f"- DP sensitivity: {artifact.sensitivity:.4g} "
        f"{artifact.reference_event} counts/slice",
        f"- clip bound B_u: "
        f"{'unbounded' if np.isinf(artifact.clip_bound) else f'{artifact.clip_bound:g}'}",
        "",
        "## Vulnerable events "
        f"({len(artifact.vulnerable_events)} profiled)",
        "",
        f"MI curve: {sparkline(mi[order], lo=0.0)}",
        "",
    ]
    top = [(artifact.vulnerable_events[i], float(mi[i]))
           for i in order[:top_events]]
    lines.append("```")
    lines.append(bar_chart([(name[:44], round(value, 3))
                            for name, value in top], width=30,
                           unit=" bits"))
    lines.append("```")
    lines.extend([
        "",
        f"## Covering gadget set ({len(artifact.covering_gadgets)} "
        "gadgets)",
        "",
    ])
    for name in artifact.covering_gadgets[:15]:
        lines.append(f"- `{name}`")
    if len(artifact.covering_gadgets) > 15:
        lines.append(f"- ... and {len(artifact.covering_gadgets) - 15} more")
    segment = artifact.segment_signals
    lines.extend([
        "",
        "## Injection profile",
        "",
        f"- components mixed per slice: {len(segment)}",
        f"- mean uops/repetition: "
        f"{segment[:, Signal.UOPS].mean():.0f}",
        f"- mean cycles/repetition: "
        f"{segment[:, Signal.CYCLES].mean():.0f}",
        "",
        "## Privacy budget over a monitoring window",
        "",
    ])
    if artifact.mechanism == "laplace":
        accountant = PrivacyAccountant(per_slice_epsilon=artifact.epsilon)
        accountant.record(window_slices)
        lines.append(f"- per-slice guarantee: {artifact.epsilon:g}-DP "
                     "(Laplace)")
        lines.append(f"- composed over {window_slices} slices: "
                     f"{accountant.statement()}")
    else:
        lines.append(f"- whole-sequence guarantee: "
                     f"(d*, {2 * artifact.epsilon:g})-privacy — the tree "
                     "mechanism's metric is sequence-level, so no "
                     "per-slice composition applies")
    return "\n".join(lines) + "\n"
