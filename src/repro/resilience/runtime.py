"""Process-global fault-injection runtime.

Mirrors :mod:`repro.telemetry.runtime` and :mod:`repro.cache.runtime`:
instrumented sites never own an injector, they call :func:`check` and
get the process-global one. Until :func:`arm` installs a plan the
shared no-op injector answers, so every fault point costs one function
call and an attribute read in production. The slot is a
:class:`repro.utils.runtime.ProcessGlobal`, the helper all four
runtime modules (telemetry, cache, resilience, fleet) share.

Campaign worker processes arm their own injector (the supervisor ships
the :class:`~repro.resilience.faults.FaultPlan` with each shard task)
flagged *sacrificial*, which is what licenses ``kill``-mode faults to
``os._exit`` — the campaign's own process always demotes kills to
raises so chaos plans cannot take down the supervisor.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.resilience.faults import (
    NOOP_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NoopFaultInjector,
)
from repro.utils.runtime import ProcessGlobal

_slot: "ProcessGlobal[FaultInjector | NoopFaultInjector]" = \
    ProcessGlobal(NOOP_INJECTOR)


def arm(plan: FaultPlan, sacrificial: bool = False,
        attempt_bias: int = 0) -> FaultInjector:
    """Install a live injector for ``plan``; returns it."""
    return _slot.install(FaultInjector(plan, sacrificial=sacrificial,
                                       attempt_bias=attempt_bias))


def disarm() -> None:
    """Restore the no-op injector."""
    _slot.reset()


def armed() -> bool:
    return _slot.enabled()


def active() -> "FaultInjector | NoopFaultInjector":
    return _slot.active()


def check(point: str, key: int = 0, attempt: "int | None" = None,
          span: "tuple[int, int] | None" = None) -> "FaultSpec | None":
    """Hit one fault point on the process-global injector."""
    return _slot.active().check(point, key=key, attempt=attempt, span=span)


@contextmanager
def session(plan: "FaultPlan | None", sacrificial: bool = False,
            attempt_bias: int = 0):
    """Scoped arming: arm, yield the injector, restore the previous one.

    ``plan=None`` yields the currently armed injector unchanged, so
    call sites can pass an optional plan straight through.
    ``attempt_bias`` shifts implicit attempt counts — fleet-shard
    replacements pass their recovery generation here.
    """
    if plan is None:
        yield _slot.active()
        return
    with _slot.scoped(FaultInjector(plan, sacrificial=sacrificial,
                                    attempt_bias=attempt_bias)) \
            as injector:
        yield injector
