"""Process-global fault-injection runtime.

Mirrors :mod:`repro.telemetry.runtime` and :mod:`repro.cache.runtime`:
instrumented sites never own an injector, they call :func:`check` and
get the process-global one. Until :func:`arm` installs a plan the
shared no-op injector answers, so every fault point costs one function
call and an attribute read in production.

Campaign worker processes arm their own injector (the supervisor ships
the :class:`~repro.resilience.faults.FaultPlan` with each shard task)
flagged *sacrificial*, which is what licenses ``kill``-mode faults to
``os._exit`` — the campaign's own process always demotes kills to
raises so chaos plans cannot take down the supervisor.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.resilience.faults import (
    NOOP_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NoopFaultInjector,
)

_active: "FaultInjector | NoopFaultInjector" = NOOP_INJECTOR


def arm(plan: FaultPlan, sacrificial: bool = False) -> FaultInjector:
    """Install a live injector for ``plan``; returns it."""
    global _active
    _active = FaultInjector(plan, sacrificial=sacrificial)
    return _active


def disarm() -> None:
    """Restore the no-op injector."""
    global _active
    _active = NOOP_INJECTOR


def armed() -> bool:
    return _active is not NOOP_INJECTOR


def active() -> "FaultInjector | NoopFaultInjector":
    return _active


def check(point: str, key: int = 0, attempt: "int | None" = None,
          span: "tuple[int, int] | None" = None) -> "FaultSpec | None":
    """Hit one fault point on the process-global injector."""
    return _active.check(point, key=key, attempt=attempt, span=span)


@contextmanager
def session(plan: "FaultPlan | None", sacrificial: bool = False):
    """Scoped arming: arm, yield the injector, restore the previous one.

    ``plan=None`` yields the currently armed injector unchanged, so
    call sites can pass an optional plan straight through.
    """
    global _active
    if plan is None:
        yield _active
        return
    previous = _active
    injector = arm(plan, sacrificial=sacrificial)
    try:
        yield injector
    finally:
        _active = previous
