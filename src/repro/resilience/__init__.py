"""Resilience: deterministic fault injection, supervision, degradation.

Three pillars (DESIGN.md section 9):

- :mod:`repro.resilience.faults` — named fault points a seeded
  :class:`FaultPlan` arms to raise, hang, corrupt, or kill, with every
  firing decision a pure function of (seed, point, key, attempt) so
  chaos runs are reproducible.
- :mod:`repro.resilience.supervisor` — the shard supervisor the
  fuzzing campaign screens through: per-shard timeouts, bounded
  retries with seeded backoff, poison-shard bisection, quarantine.
- :mod:`repro.resilience.watchdog` — the obfuscator daemon's heartbeat
  watchdog (fail-closed degradation lives with the daemon itself).

The process-global injector lives in :mod:`repro.resilience.runtime`;
instrumented sites call ``runtime.check(point, ...)``.
"""

from repro.resilience.faults import (
    FAULT_MODES,
    FAULT_POINTS,
    KILL_EXIT_STATUS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_text,
    stable_key,
)
from repro.resilience.supervisor import (
    QuarantineRecord,
    ShardFailure,
    ShardSupervisor,
    SupervisorError,
    SupervisorPolicy,
    SupervisorReport,
)
from repro.resilience.watchdog import DaemonWatchdog

__all__ = [
    "FAULT_MODES",
    "FAULT_POINTS",
    "KILL_EXIT_STATUS",
    "DaemonWatchdog",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "QuarantineRecord",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisorError",
    "SupervisorPolicy",
    "SupervisorReport",
    "corrupt_text",
    "stable_key",
]
