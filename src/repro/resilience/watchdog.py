"""Heartbeat watchdog for the obfuscator's userspace daemon.

The daemon bumps a logical heartbeat every time it computes a noise
window. The watchdog is polled from the protection service's control
loop (the simulation's equivalent of a systemd watchdog timer): when
the heartbeat stops advancing for ``stale_polls`` consecutive polls the
daemon is declared stale and restarted in place — the kernel module is
re-armed, the precomputed noise buffer is dropped (it will refill
before the next release, never after it), and the restart lands in
``daemon.restarts`` telemetry. Logical polls instead of wall-clock
keep the state machine deterministic and testable.
"""

from __future__ import annotations

import logging

from repro.telemetry import runtime as telemetry

logger = logging.getLogger(__name__)


class DaemonWatchdog:
    """Monitors a :class:`~repro.core.obfuscator.daemon.UserspaceDaemon`.

    Parameters
    ----------
    daemon:
        Anything with a monotonically increasing ``heartbeat`` integer
        and a ``restart()`` method.
    stale_polls:
        Consecutive polls without heartbeat progress before the daemon
        is restarted.
    """

    def __init__(self, daemon, stale_polls: int = 2) -> None:
        if stale_polls < 1:
            raise ValueError(f"stale_polls must be >= 1, got {stale_polls}")
        self.daemon = daemon
        self.stale_polls = stale_polls
        self.restarts = 0
        self._last_beat = int(daemon.heartbeat)
        self._stale = 0

    @property
    def stale_count(self) -> int:
        """Polls since the heartbeat last advanced."""
        return self._stale

    def poll(self) -> bool:
        """One watchdog tick. Returns True while the daemon is healthy.

        A stale daemon (no heartbeat progress for ``stale_polls``
        polls) is restarted and the poll reports False once; the next
        poll starts a fresh staleness window.
        """
        beat = int(self.daemon.heartbeat)
        if beat != self._last_beat:
            self._last_beat = beat
            self._stale = 0
            return True
        self._stale += 1
        if self._stale < self.stale_polls:
            return True
        self.restart()
        return False

    def restart(self) -> None:
        """Restart the supervised daemon and reset the staleness window."""
        self.restarts += 1
        self._stale = 0
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("daemon.restarts").inc()
        logger.warning("watchdog: daemon heartbeat stale; restarting "
                       "(restart %d)", self.restarts)
        self.daemon.restart()
        self._last_beat = int(self.daemon.heartbeat)
