"""The shard supervisor: retries, timeouts, bisection, quarantine.

Wraps the campaign's screening fan-out so worker failures are a
*degraded state*, not a campaign abort:

- every shard failure (raised exception, lost worker process, blown
  per-shard timeout) is retried up to ``max_retries`` times with
  exponential backoff and seeded jitter — deterministic, so a chaos
  run's retry schedule is reproducible;
- a shard that exhausts its retries is *bisected*: both halves re-enter
  the queue with a fresh retry budget, converging on the offending
  gadget, which is finally **quarantined** — recorded, reported, and
  replaced by an empty screening result — instead of poisoning the run;
- a ``kill``-mode fault (or any real worker death) breaks the
  ``ProcessPoolExecutor``; the supervisor rebuilds the pool and
  re-queues everything that was in flight, up to ``max_pool_restarts``;
- ``KeyboardInterrupt``/``SystemExit`` are never treated as shard
  failures: the pool is shut down *without waiting* and the exception
  re-raised immediately, so Ctrl-C still checkpoints promptly.

Screening is pure in ``(config, shard)``, so retries and bisection
cannot change results — a supervised chaos run merges to the same
candidate pool as a fault-free run, minus only quarantined gadgets.
"""

from __future__ import annotations

import logging
import math
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.resilience.faults import FaultPlan, _hash01
from repro.telemetry import runtime as telemetry

logger = logging.getLogger(__name__)


class SupervisorError(RuntimeError):
    """The supervisor itself gave up (e.g. the pool kept dying)."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout policy for supervised shard screening.

    Parameters
    ----------
    shard_timeout:
        Wall-clock seconds one shard attempt may run on a pool worker
        before the supervisor abandons it (``None`` disables; only
        enforceable in pool mode — an in-process shard cannot be
        interrupted).
    max_retries:
        Failed attempts re-queued per shard before bisection kicks in.
    backoff_base / backoff_cap:
        Exponential backoff: retry *n* waits
        ``min(cap, base * 2**(n-1))`` seconds before resubmission.
    backoff_jitter:
        Fractional seeded jitter added on top (0.25 = up to +25%),
        deterministic per (seed, shard, attempt).
    seed:
        Jitter seed; campaigns reuse the fault plan's seed so a chaos
        run's whole schedule derives from one number.
    max_pool_restarts:
        Worker-pool rebuilds tolerated before the run is declared
        unsupervisable.
    """

    shard_timeout: "float | None" = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0
    max_pool_restarts: int = 32

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, "
                             f"got {self.shard_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if self.backoff_jitter < 0:
            raise ValueError(f"backoff_jitter must be >= 0, "
                             f"got {self.backoff_jitter}")
        if self.max_pool_restarts < 0:
            raise ValueError(f"max_pool_restarts must be >= 0, "
                             f"got {self.max_pool_restarts}")

    def backoff_seconds(self, shard_start: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of a shard."""
        base = min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, attempt - 1)))
        jitter = _hash01(self.seed, "backoff",
                         shard_start * 1_000_003 + attempt)
        return base * (1.0 + self.backoff_jitter * jitter)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, as observed by the supervisor."""

    shard_start: int
    shard_count: int
    attempt: int
    kind: str  # "error" | "timeout" | "worker-lost"
    detail: str


@dataclass(frozen=True)
class QuarantineRecord:
    """A single gadget whose screening could not be completed."""

    gadget_index: int
    attempts: int
    detail: str


@dataclass
class _Pending:
    """A shard waiting to (re)run."""

    shard: Any
    attempt: int
    not_before: float = 0.0


@dataclass
class SupervisorReport:
    """Everything the supervisor observed while screening."""

    failures: list[ShardFailure] = field(default_factory=list)
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    retries: int = 0
    bisections: int = 0
    pool_restarts: int = 0

    @property
    def timeouts(self) -> int:
        return sum(1 for f in self.failures if f.kind == "timeout")


class ShardSupervisor:
    """Supervised execution of shard screening tasks.

    Parameters
    ----------
    fn:
        The picklable top-level screening function
        (``screen_shard_traced``).
    args:
        ``args(shard, attempt, sacrificial) -> tuple`` building the
        picklable argument tuple for one attempt. ``sacrificial`` is
        True only for pool workers (licenses ``kill``-mode faults).
    on_result:
        Callback receiving each completed shard result exactly once
        (checkpointing + bookkeeping in the campaign).
    empty_result:
        ``empty_result(shard) -> result`` standing in for a quarantined
        single-gadget shard, keeping the merge total.
    policy / workers / fault_plan:
        Retry policy, pool width, and the plan shipped to workers (the
        plan itself travels inside ``args``; it is referenced here only
        for logging).
    """

    def __init__(self, fn: Callable, args: Callable[[Any, int, bool], tuple],
                 on_result: Callable[[Any], None],
                 empty_result: Callable[[Any], Any],
                 policy: "SupervisorPolicy | None" = None, workers: int = 1,
                 fault_plan: "FaultPlan | None" = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.fn = fn
        self.args = args
        self.on_result = on_result
        self.empty_result = empty_result
        self.policy = policy or SupervisorPolicy()
        self.workers = workers
        self.fault_plan = fault_plan
        self.report = SupervisorReport()

    # -- public entry points -------------------------------------------

    def run(self, shards: list) -> SupervisorReport:
        """Screen every shard to completion (or quarantine)."""
        if self.workers > 1 and len(shards) > 1:
            self._run_pool(list(shards))
        else:
            self._run_inline(list(shards))
        return self.report

    # -- in-process mode -----------------------------------------------

    def _run_inline(self, shards: list) -> None:
        queue = [_Pending(shard, 0) for shard in shards]
        while queue:
            item = queue.pop(0)
            delay = item.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                result = self.fn(*self.args(item.shard, item.attempt, False))
            except Exception as exc:
                # KeyboardInterrupt/SystemExit are BaseException: they
                # propagate and abort promptly instead of being retried.
                self._failed(item, "error", repr(exc), queue)
            else:
                self.on_result(result)

    # -- pool mode -----------------------------------------------------

    def _run_pool(self, shards: list) -> None:
        queue = [_Pending(shard, 0) for shard in shards]
        inflight: "dict[Any, tuple[_Pending, float]]" = {}
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while queue or inflight:
                now = time.monotonic()
                ready = [p for p in queue if p.not_before <= now]
                queue = [p for p in queue if p.not_before > now]
                for item in sorted(ready, key=lambda p: (p.shard.start,
                                                         p.attempt)):
                    future = pool.submit(
                        self.fn, *self.args(item.shard, item.attempt, True))
                    deadline = (now + self.policy.shard_timeout
                                if self.policy.shard_timeout else math.inf)
                    inflight[future] = (item, deadline)
                if not inflight:
                    time.sleep(max(0.0, min(p.not_before for p in queue)
                                   - time.monotonic()))
                    continue

                horizon = min(min(d for _, d in inflight.values()),
                              min((p.not_before for p in queue),
                                  default=math.inf))
                timeout = (None if horizon == math.inf
                           else max(0.0, horizon - time.monotonic()))
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)

                broken = False
                for future in done:
                    item, _ = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor as exc:
                        broken = True
                        self._failed(item, "worker-lost", repr(exc), queue)
                    except Exception as exc:
                        self._failed(item, "error", repr(exc), queue)
                    else:
                        self.on_result(result)

                now = time.monotonic()
                expired = [f for f, (_, d) in inflight.items() if d <= now]
                if broken or expired:
                    # The pool is unusable (dead worker) or holds a task
                    # we cannot interrupt (hung worker): abandon it and
                    # requeue everything that was in flight.
                    for future, (item, deadline) in list(inflight.items()):
                        kind = ("timeout" if deadline <= now
                                else "worker-lost")
                        self._failed(item, kind,
                                     f"{kind} after pool abandon", queue)
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.report.pool_restarts += 1
                    registry = telemetry.metrics()
                    if registry.enabled:
                        registry.counter("retry.pool_restarts").inc()
                    if self.report.pool_restarts > \
                            self.policy.max_pool_restarts:
                        raise SupervisorError(
                            f"worker pool died "
                            f"{self.report.pool_restarts} times "
                            f"(max_pool_restarts="
                            f"{self.policy.max_pool_restarts}); "
                            f"giving up")
                    logger.warning(
                        "supervisor: worker pool abandoned "
                        "(restart %d/%d), %d shard(s) requeued",
                        self.report.pool_restarts,
                        self.policy.max_pool_restarts, len(queue))
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        except BaseException:
            # Ctrl-C (and any other abort) must not wait for running
            # shards: drop the pool and surface the exception so the
            # campaign's already-checkpointed shards are preserved.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()

    # -- failure handling ----------------------------------------------

    def _failed(self, item: _Pending, kind: str, detail: str,
                queue: "list[_Pending]") -> None:
        shard, attempt = item.shard, item.attempt
        self.report.failures.append(ShardFailure(
            shard_start=shard.start, shard_count=shard.count,
            attempt=attempt, kind=kind, detail=detail))
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("retry.shard_failures").inc()
            registry.counter(f"retry.failures.{kind}").inc()
        if attempt < self.policy.max_retries:
            delay = self.policy.backoff_seconds(shard.start, attempt + 1)
            self.report.retries += 1
            if registry.enabled:
                registry.counter("retry.shards").inc()
                registry.histogram("retry.backoff_seconds").observe(delay)
            logger.warning(
                "shard @%d (%d gadgets) failed attempt %d (%s); "
                "retrying in %.3fs", shard.start, shard.count, attempt,
                kind, delay)
            queue.append(_Pending(shard, attempt + 1,
                                  time.monotonic() + delay))
        elif shard.count > 1:
            half = shard.count // 2
            shard_type = type(shard)
            left = shard_type(index=-1, start=shard.start, count=half)
            right = shard_type(index=-1, start=shard.start + half,
                               count=shard.count - half)
            self.report.bisections += 1
            if registry.enabled:
                registry.counter("retry.bisections").inc()
            logger.warning(
                "shard @%d (%d gadgets) exhausted %d retries (%s); "
                "bisecting into @%d+%d / @%d+%d", shard.start, shard.count,
                self.policy.max_retries, kind, left.start, left.count,
                right.start, right.count)
            queue.append(_Pending(left, 0))
            queue.append(_Pending(right, 0))
        else:
            self.report.quarantined.append(QuarantineRecord(
                gadget_index=shard.start, attempts=attempt + 1,
                detail=detail))
            if registry.enabled:
                registry.counter("fault.quarantined").inc()
            logger.error(
                "gadget %d quarantined after %d failed attempts (%s); "
                "continuing without it", shard.start, attempt + 1, detail)
            self.on_result(self.empty_result(shard))
