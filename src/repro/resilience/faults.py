"""Deterministic fault injection for chaos runs.

A :class:`FaultPlan` arms named fault points scattered through the
campaign and obfuscator hot paths. Every firing decision is a pure
function of ``(plan seed, fault point, site key, attempt)`` — no
process-local randomness — so a chaos run is exactly reproducible:
re-running the same plan against the same campaign injects the same
faults at the same sites, no matter how many worker processes are
involved or in which order shards execute.

The instrumented fault points:

========================  ==================================================
``campaign.shard``        a shard screening task (worker side)
``cache.store.read``      a measurement-cache disk object read
``checkpoint.write``      a shard checkpoint write (torn-write simulation)
``daemon.noise_refill``   the obfuscator daemon's noise-buffer refill
``fleet.admit``           the fleet admission controller's decision path
``fleet.policy``          the adaptive defense engine's per-tenant
                          decision path (fail-closed: exhausted
                          retries quarantine, never relax)
``fleet.provision``       a fleet noise-provisioner refill
``fleet.shard``           a fleet shard worker's replay loop (kill =
                          shard crash; the supervisor reassigns and
                          replays its tenants)
``kernel_module.read``    an RDPMC read inside the in-guest kernel module
``search.corpus.write``   a coverage-search corpus entry write (corrupt =
                          damaged on-disk entry; the loader treats it as
                          a miss, never a crash)
========================  ==================================================

Fault modes:

- ``raise``   — raise :class:`InjectedFault` at the site.
- ``hang``    — sleep ``hang_seconds`` at the site, then proceed
  (trips per-shard timeouts without leaving state behind).
- ``corrupt`` — hand the site a spec it applies via
  :func:`corrupt_text` (truncated/poisoned payload, i.e. a torn write
  or a damaged on-disk object).
- ``kill``    — ``os._exit`` the process, but only when the armed
  injector marks the process *sacrificial* (a pool worker); in the
  campaign's own process the kill is demoted to ``raise`` so a chaos
  plan can never take down the supervisor it is testing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.telemetry import runtime as telemetry

#: Every site instrumented with :func:`repro.resilience.runtime.check`.
FAULT_POINTS = ("campaign.shard", "cache.store.read", "checkpoint.write",
                "daemon.noise_refill", "fleet.admit", "fleet.policy",
                "fleet.provision", "fleet.shard", "kernel_module.read",
                "search.corpus.write")

#: Supported failure modes.
FAULT_MODES = ("raise", "hang", "corrupt", "kill")

#: Exit status of a ``kill``-mode fault (distinctive in worker logs).
KILL_EXIT_STATUS = 113


class InjectedFault(RuntimeError):
    """The exception a ``raise``-mode (or demoted ``kill``) fault raises."""

    def __init__(self, point: str, key: int, note: str = "") -> None:
        detail = f"injected fault at {point} (key={key})"
        if note:
            detail = f"{detail}: {note}"
        super().__init__(detail)
        self.point = point
        self.key = key


def _hash01(seed: int, label: str, key: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (seed, label, key)."""
    digest = hashlib.sha256(f"{seed}:{label}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def stable_key(text: str) -> int:
    """A deterministic integer site key for a string identifier."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def corrupt_text(text: str, seed: int = 0, key: int = 0) -> str:
    """Deterministically damage a payload string (torn-write model).

    Keeps a seed-dependent prefix and appends a NUL byte, so the result
    is never valid JSON: readers detect the damage and fall back
    (cache miss, checkpoint rollback) instead of parsing garbage.
    """
    if not text:
        return "\x00"
    keep = 1 + int(_hash01(seed, "corrupt", key) * max(1, len(text) - 1))
    return text[:keep] + "\x00"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, how, and for which hits.

    Parameters
    ----------
    point:
        One of :data:`FAULT_POINTS`.
    mode:
        One of :data:`FAULT_MODES`.
    probability:
        Seeded per-key Bernoulli: the fault arms only for site keys
        whose deterministic draw falls below this (1.0 = every key).
    times:
        Attempts faulted per armed key — attempts ``0..times-1`` fail,
        later retries succeed. ``0`` means *persistent*: every attempt
        fails (what the poison-shard bisection tests use).
    match:
        Explicit site keys to arm (empty = probabilistic over all).
    gadgets:
        ``campaign.shard`` only: poison gadget indices. The fault fires
        persistently for any shard whose span contains one of them, so
        bisection converges on exactly the offending gadget.
    hang_seconds:
        Stall duration for ``hang`` mode.
    """

    point: str
    mode: str
    probability: float = 1.0
    times: int = 1
    match: tuple[int, ...] = ()
    gadgets: tuple[int, ...] = ()
    hang_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {self.point!r}; "
                             f"choose from {FAULT_POINTS}")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"choose from {FAULT_MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], "
                             f"got {self.probability}")
        if self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, "
                             f"got {self.hang_seconds}")
        if self.gadgets and self.point != "campaign.shard":
            raise ValueError("gadgets= targets only 'campaign.shard'")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultSpec` to arm.

    Plans are plain frozen dataclasses: they pickle across the
    process-pool boundary unchanged and round-trip through JSON for the
    ``--fault-plan`` CLI flag and the CI chaos job.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def decide(self, point: str, key: int = 0, attempt: int = 0,
               span: "tuple[int, int] | None" = None) -> FaultSpec | None:
        """The spec firing at this site hit, or ``None``.

        Pure in its arguments and the plan: the same (point, key,
        attempt, span) always yields the same decision.
        """
        for spec in self.faults:
            if spec.point != point:
                continue
            if spec.gadgets:
                if span is None or not any(span[0] <= g < span[1]
                                           for g in spec.gadgets):
                    continue
                return spec  # poison gadgets fault persistently
            if spec.match and key not in spec.match:
                continue
            if spec.times and attempt >= spec.times:
                continue
            if spec.probability < 1.0 and _hash01(
                    self.seed, f"{point}:{spec.mode}",
                    key) >= spec.probability:
                continue
            return spec
        return None

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [asdict(spec) for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        specs = []
        for raw in payload.get("faults", ()):
            raw = dict(raw)
            for name in ("match", "gadgets"):
                if name in raw:
                    raw[name] = tuple(int(v) for v in raw[name])
            specs.append(FaultSpec(**raw))
        return cls(seed=int(payload.get("seed", 0)), faults=tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def parse(cls, source: str) -> "FaultPlan":
        """Build a plan from a JSON file path or an inline JSON string."""
        text = source.strip()
        if not text.startswith("{"):
            path = Path(source)
            if not path.is_file():
                raise ValueError(
                    f"--fault-plan expects a JSON object or a JSON file, "
                    f"got {source!r}")
            text = path.read_text(encoding="utf-8")
        try:
            return cls.from_json(text)
        except (TypeError, ValueError, KeyError) as exc:
            raise ValueError(f"invalid fault plan: {exc}") from exc


class FaultInjector:
    """The armed runtime that fault points consult.

    Tracks per-``(point, key)`` hit counts so sites without a natural
    retry counter (cache reads, checkpoint writes, refills) get an
    implicit ``attempt`` — their first ``times`` hits fault, later hits
    pass — while sites with an explicit supervisor-managed attempt
    (shard screening) stay deterministic across process boundaries.

    ``attempt_bias`` shifts every *implicit* attempt: a replacement
    fleet-shard worker arms with its recovery generation as the bias so
    the replayed hits land past the ``times`` budget an earlier
    generation already consumed — without it, a ``times: 1`` kill at an
    implicitly-counted point (admission, refill) would re-fire against
    every replacement and crash-loop the supervisor.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, sacrificial: bool = False,
                 attempt_bias: int = 0) -> None:
        if attempt_bias < 0:
            raise ValueError(f"attempt_bias must be >= 0, got "
                             f"{attempt_bias}")
        self.plan = plan
        self.sacrificial = sacrificial
        self.attempt_bias = attempt_bias
        self.fired: Counter = Counter()
        self._hits: Counter = Counter()

    def check(self, point: str, key: int = 0, attempt: "int | None" = None,
              span: "tuple[int, int] | None" = None) -> FaultSpec | None:
        """Consult the plan at one site hit; act on the firing mode.

        Returns the firing spec for ``corrupt``/``hang`` modes (the
        site applies/ignores it), raises for ``raise``, exits the
        process for ``kill`` (sacrificial processes only), and returns
        ``None`` when nothing fires.
        """
        if attempt is None:
            attempt = self.attempt_bias + self._hits[(point, key)]
        self._hits[(point, key)] += 1
        spec = self.plan.decide(point, key=key, attempt=attempt, span=span)
        if spec is None:
            return None
        self.fired[point] += 1
        registry = telemetry.metrics()
        if registry.enabled:
            registry.counter("fault.injected").inc()
            registry.counter(f"fault.{point}").inc()
        if spec.mode == "hang":
            time.sleep(spec.hang_seconds)
            return spec
        if spec.mode == "kill":
            if self.sacrificial:
                # Export what this process recorded (including the
                # fault counter itself) before dying without cleanup.
                telemetry.flush()
                os._exit(KILL_EXIT_STATUS)
            raise InjectedFault(point, key,
                                "kill demoted to raise outside a "
                                "sacrificial worker process")
        if spec.mode == "raise":
            raise InjectedFault(point, key)
        return spec  # corrupt: the site applies corrupt_text


class NoopFaultInjector:
    """Disarmed injector: every site check is a cheap no-op."""

    enabled = False
    sacrificial = False

    def check(self, point: str, key: int = 0, attempt: "int | None" = None,
              span: "tuple[int, int] | None" = None) -> None:
        return None


NOOP_INJECTOR = NoopFaultInjector()
