"""Scalar-vs-vectorized differential suite for the batch engine.

Every test here runs the same workload through the detailed scalar
interpreter (``batch.FORCE_SCALAR``) and through the vectorized engine
in :mod:`repro.cpu.batch`, then asserts **bit identity**: equal signal
vectors, cycles, RDPMC reads, post-execution microarchitectural state,
and campaign-level per-gadget digests. These invariants are what keep
PR 3's warm-cache replays and PR 4's chaos reports byte-for-byte
stable, so any divergence is a correctness bug, not a tolerance issue.
"""

import functools
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fuzzer import FuzzingCampaign
from repro.core.fuzzer.campaign import default_cleanup, gadget_stream
from repro.core.fuzzer.generator import ExecutionHarness
from repro.core.fuzzer.grammar import Gadget, GadgetGrammar
from repro.cpu import batch
from repro.cpu.core import ActivityBlock, Core
from repro.cpu.signals import NUM_SIGNALS
from repro.isa.catalog import shared_catalog
from repro.isa.spec import InstructionClass

MODEL = "amd-epyc-7252"

#: Event indices spanning simple, cache, branch and flush responses.
EVENTS = np.array([10, 400, 900, 1500])


@contextmanager
def force_scalar(enabled=True):
    before = batch.FORCE_SCALAR
    batch.FORCE_SCALAR = enabled
    try:
        yield
    finally:
        batch.FORCE_SCALAR = before


@functools.lru_cache(maxsize=1)
def legal_specs():
    return tuple(default_cleanup(MODEL).legal)


@functools.lru_cache(maxsize=1)
def family_specs():
    """A representative spec set per instruction class in the catalog.

    For each class: the first variant, a memory-form variant when one
    exists, and the highest-uop variant — covering register-only,
    memory-touching, and multi-uop decodes of every gadget family.
    """
    by_class = {}
    for spec in shared_catalog().variants:
        by_class.setdefault(spec.iclass, []).append(spec)
    families = {}
    for iclass, specs in by_class.items():
        picks = {specs[0].name: specs[0]}
        mem = next((s for s in specs if s.reads_memory or s.writes_memory),
                   None)
        if mem is not None:
            picks[mem.name] = mem
        widest = max(specs, key=lambda s: s.uops)
        picks[widest.name] = widest
        families[iclass] = list(picks.values())
    return families


def paired_cores(seed):
    return (Core(MODEL, rng=np.random.default_rng(seed)),
            Core(MODEL, rng=np.random.default_rng(seed)))


def assert_results_identical(scalar, vectorized):
    assert len(scalar) == len(vectorized)
    for i, (a, b) in enumerate(zip(scalar, vectorized)):
        assert np.array_equal(a.signals, b.signals), f"signals differ at {i}"
        assert a.cycles == b.cycles, f"cycles differ at {i}"
        assert a.rdpmc_values == b.rdpmc_values, f"rdpmc differs at {i}"
        assert a.faulted == b.faulted, f"faulted differs at {i}"
        assert a.fault_name == b.fault_name, f"fault_name differs at {i}"


def assert_state_identical(a, b):
    """Post-run microarch state + every observable counter must match."""
    fields = batch._counter_fields(a)
    assert batch._state_signature(a) == batch._state_signature(b)
    assert batch._counter_snapshot(a, fields) \
        == batch._counter_snapshot(b, fields)
    assert a.clock.cycles == b.clock.cycles
    assert a.interrupts.total_interrupts == b.interrupts.total_interrupts
    for slot in a.hpc.programmed_slots():
        assert a.hpc.rdpmc(slot) == b.hpc.rdpmc(slot)


def run_both(body, repeats, batch_size, seed=5, update_hpc=False,
             program_slots=()):
    """One body through both engines; returns the two (results, core)."""
    scalar_core, vector_core = paired_cores(seed)
    outputs = []
    for core, scalar in ((scalar_core, True), (vector_core, False)):
        harness = ExecutionHarness(core, rng=0)
        for slot, event in enumerate(program_slots):
            core.hpc.program(slot, int(event))
        program = harness.build_program(list(body), repeats=repeats)
        with force_scalar(scalar):
            outputs.append(core.execute_batch(program, repeats=batch_size,
                                              update_hpc=update_hpc))
    assert_results_identical(outputs[0], outputs[1])
    assert_state_identical(scalar_core, vector_core)
    return outputs[0]


class TestGadgetFamilies:
    """Every instruction class through both paths, bit for bit."""

    @pytest.mark.parametrize(
        "iclass", sorted(family_specs(), key=lambda ic: ic.name),
        ids=lambda ic: ic.name)
    def test_family_batch_equivalence(self, iclass):
        for spec in family_specs()[iclass]:
            results = run_both([spec], repeats=2, batch_size=12)
            if iclass is InstructionClass.SYSTEM:
                assert all(r.faulted for r in results)

    def test_mixed_family_bodies(self):
        families = family_specs()
        body = [families[ic][0] for ic in
                (InstructionClass.LOAD, InstructionClass.BRANCH_COND,
                 InstructionClass.CLFLUSH, InstructionClass.CALL,
                 InstructionClass.RET, InstructionClass.STRING,
                 InstructionClass.PREFETCH, InstructionClass.ALU)]
        run_both(body, repeats=3, batch_size=16)

    def test_hpc_reads_equivalent_with_programmed_slots(self):
        """RDPMC-in-body reads + noisy accumulate force the scalar
        fallback; results (including the noise draws) stay identical."""
        families = family_specs()
        body = [families[InstructionClass.LOAD][0],
                families[InstructionClass.RDPMC][0]]
        results = run_both(body, repeats=2, batch_size=8, update_hpc=True,
                           program_slots=(10, 400))
        assert any(r.rdpmc_values for r in results)


class TestScreeningEquivalence:
    """screen_measure == measure_gadget for sampled campaign gadgets."""

    def _gadgets(self, count, entropy=77, sequence_length=1):
        grammar = GadgetGrammar(list(legal_specs()),
                                sequence_length=sequence_length, rng=0)
        return [grammar.sample(rng=gadget_stream(entropy, i))
                for i in range(count)]

    @pytest.mark.parametrize("sequence_length", [1, 3])
    def test_screen_measure_matches_scalar(self, sequence_length):
        batch.clear_memo()
        scalar_core, vector_core = paired_cores(7)
        scalar_h = ExecutionHarness(scalar_core, rng=0)
        vector_h = ExecutionHarness(vector_core, rng=0)
        for i, gadget in enumerate(self._gadgets(
                120, sequence_length=sequence_length)):
            for core, harness in ((scalar_core, scalar_h),
                                  (vector_core, vector_h)):
                core.reset_microarch_state()
                harness.warm_measurement_state()
                harness.set_rng(gadget_stream(1, i))
            expected = scalar_h.measure_gadget(gadget, EVENTS)
            measured = vector_h.screen_measure(gadget, EVENTS)
            assert np.array_equal(expected.deltas, measured.deltas), i
            assert np.array_equal(expected.signals, measured.signals), i
            assert expected.cycles == measured.cycles, i

    def test_memo_actually_hits(self):
        """The archetype memo must serve repeat shapes without
        executing (otherwise the fast path is a silent no-op)."""
        batch.clear_memo()
        core = Core(MODEL, rng=np.random.default_rng(3))
        harness = ExecutionHarness(core, rng=0)
        gadgets = self._gadgets(200)
        for i, gadget in enumerate(gadgets):
            core.reset_microarch_state()
            harness.warm_measurement_state()
            harness.set_rng(gadget_stream(1, i))
            harness.screen_measure(gadget, EVENTS)
        assert 0 < len(batch._SCREEN_MEMO) < len(gadgets) // 2

    def test_screen_measure_requires_canonical_state(self):
        """Without reset+warm-up the memo must not be consulted."""
        batch.clear_memo()
        core = Core(MODEL, rng=np.random.default_rng(3))
        harness = ExecutionHarness(core, rng=0)
        gadget = self._gadgets(1)[0]
        core.execute_program(harness.build_program(
            [legal_specs()[0]], repeats=1))  # dirty, non-canonical state
        assert batch.screened_begin(
            core, list(gadget.reset) + list(gadget.trigger), 16,
            (harness._push, harness._pop, harness._serialize)) is None


class TestActivityBlocks:
    """execute_blocks == the execute_block loop, draws and all."""

    def _blocks(self, n, seed=0):
        rng = np.random.default_rng(seed)
        return [ActivityBlock(
            signals=np.abs(rng.normal(100.0, 40.0, NUM_SIGNALS)),
            duration_s=float(rng.uniform(1e-7, 2e-3))) for _ in range(n)]

    @pytest.mark.parametrize("noisy", [True, False])
    @pytest.mark.parametrize("programmed", [True, False])
    def test_blocks_equivalent(self, noisy, programmed):
        scalar_core, vector_core = paired_cores(11)
        blocks = self._blocks(48)
        if programmed:
            for core in (scalar_core, vector_core):
                core.hpc.program(0, 10)
                core.hpc.program(1, 1500)
        expected = [scalar_core.execute_block(b, noisy=noisy)
                    for b in blocks]
        produced = vector_core.execute_blocks(blocks, noisy=noisy)
        for i, (a, b) in enumerate(zip(expected, produced)):
            assert np.array_equal(a, b), f"block {i} diverges"
        assert_state_identical(scalar_core, vector_core)

    def test_empty_batch(self):
        core = Core(MODEL, rng=np.random.default_rng(0))
        assert core.execute_blocks([]) == []


class TestCampaignDigests:
    """Whole-campaign reports are invariant to the engine choice."""

    @staticmethod
    def _report_key(report):
        covering = {gadget.name: sorted(events)
                    for gadget, events in report.covering_set.items()}
        confirmed = {
            event: [(r.gadget.name, r.per_iteration_delta)
                    for r in results]
            for event, results in report.confirmed_per_event.items()}
        return (covering, confirmed, dict(report.screened_per_event),
                report.gadgets_tested)

    def test_fuzz_reports_bit_identical_across_engines(self, make_fuzzer,
                                                       fuzz_events):
        events = np.array(fuzz_events)
        vectorized = make_fuzzer().fuzz(events)
        with force_scalar():
            scalar = make_fuzzer().fuzz(events)
        assert self._report_key(scalar) \
            == self._report_key(vectorized)

    def test_warm_cache_replay_across_engines(self, make_fuzzer,
                                              fuzz_events, tmp_path):
        """A measurement cache written by the vectorized engine replays
        bit-for-bit under the scalar engine (PR 3's invariant): the
        fingerprint keys and cached deltas are engine-independent."""
        events = np.array(fuzz_events)
        cache_dir = tmp_path / "cache"
        warm = FuzzingCampaign(make_fuzzer(), cache_dir=cache_dir)
        baseline = self._report_key(warm.run(events))
        with force_scalar():
            replay = FuzzingCampaign(make_fuzzer(), cache_dir=cache_dir)
            assert self._report_key(replay.run(events)) == baseline


class TestBatchApi:
    def test_repeats_and_seeds_are_exclusive(self):
        core = Core(MODEL, rng=np.random.default_rng(0))
        harness = ExecutionHarness(core, rng=0)
        program = harness.build_program([legal_specs()[0]])
        with pytest.raises(ValueError):
            core.execute_batch(program, repeats=4, seeds=np.arange(4))

    def test_seeds_must_be_one_dimensional(self):
        core = Core(MODEL, rng=np.random.default_rng(0))
        harness = ExecutionHarness(core, rng=0)
        program = harness.build_program([legal_specs()[0]])
        with pytest.raises(ValueError):
            core.execute_batch(program, seeds=np.zeros((2, 2)))

    def test_repeats_requires_single_program(self):
        core = Core(MODEL, rng=np.random.default_rng(0))
        harness = ExecutionHarness(core, rng=0)
        program = harness.build_program([legal_specs()[0]])
        with pytest.raises(ValueError):
            core.execute_batch([program, program], repeats=4)

    def test_zero_and_empty_batches(self):
        core = Core(MODEL, rng=np.random.default_rng(0))
        harness = ExecutionHarness(core, rng=0)
        program = harness.build_program([legal_specs()[0]])
        assert core.execute_batch(program, repeats=0) == []
        assert core.execute_batch([]) == []


# -- hypothesis property tests ---------------------------------------------

PROPERTY_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def draw_body(data, max_size=5):
    specs = legal_specs()
    indices = data.draw(st.lists(st.integers(0, len(specs) - 1),
                                 min_size=1, max_size=max_size))
    return [specs[i] for i in indices]


@PROPERTY_SETTINGS
@given(data=st.data())
def test_random_programs_scalar_vs_vectorized(data):
    """Random body x repeats x batch size: both engines bit-identical."""
    body = draw_body(data)
    repeats = data.draw(st.integers(1, 4))
    batch_size = data.draw(st.integers(1, 24))
    seed = data.draw(st.integers(0, 2**32 - 1))
    run_both(body, repeats=repeats, batch_size=batch_size, seed=seed)


@PROPERTY_SETTINGS
@given(data=st.data())
def test_seeds_equivalent_to_repeats(data):
    """seeds= and repeats= spell the same batch; seed values are
    provenance, not perturbation — results must be identical."""
    body = draw_body(data)
    n = data.draw(st.integers(1, 16))
    seed_values = data.draw(st.lists(
        st.integers(0, 2**62), min_size=n, max_size=n))
    core_a, core_b = paired_cores(3)
    program_a = ExecutionHarness(core_a, rng=0).build_program(body, repeats=2)
    program_b = ExecutionHarness(core_b, rng=0).build_program(body, repeats=2)
    by_repeats = core_a.execute_batch(program_a, update_hpc=False, repeats=n)
    by_seeds = core_b.execute_batch(program_b, update_hpc=False,
                                    seeds=np.array(seed_values))
    assert_results_identical(by_repeats, by_seeds)
    assert_state_identical(core_a, core_b)


@PROPERTY_SETTINGS
@given(data=st.data())
def test_batch_size_invariance(data):
    """One call of N == N calls of 1 (state carries over either way)."""
    body = draw_body(data)
    n = data.draw(st.integers(1, 12))
    seed = data.draw(st.integers(0, 2**32 - 1))
    core_a, core_b = paired_cores(seed)
    program_a = ExecutionHarness(core_a, rng=0).build_program(body, repeats=2)
    program_b = ExecutionHarness(core_b, rng=0).build_program(body, repeats=2)
    one_call = core_a.execute_batch(program_a, update_hpc=False, repeats=n)
    n_calls = []
    for _ in range(n):
        n_calls.extend(core_b.execute_batch(program_b, update_hpc=False,
                                            repeats=1))
    assert_results_identical(one_call, n_calls)
    assert_state_identical(core_a, core_b)


@PROPERTY_SETTINGS
@given(data=st.data())
def test_screening_order_invariance(data):
    """Screening measurements are independent of gadget order (each
    starts from reset + warm-up), whatever the memo has seen before."""
    count = data.draw(st.integers(2, 10))
    permutation = data.draw(st.permutations(range(count)))
    grammar = GadgetGrammar(list(legal_specs()), rng=0)
    gadgets = [grammar.sample(rng=gadget_stream(5, i))
               for i in range(count)]

    def screen(order):
        batch.clear_memo()
        core = Core(MODEL, rng=np.random.default_rng(2))
        harness = ExecutionHarness(core, rng=0)
        deltas = {}
        for i in order:
            core.reset_microarch_state()
            harness.warm_measurement_state()
            harness.set_rng(gadget_stream(6, i))
            deltas[i] = harness.screen_measure(gadgets[i], EVENTS).deltas
        return deltas

    natural = screen(range(count))
    permuted = screen(permutation)
    for i in range(count):
        assert np.array_equal(natural[i], permuted[i])


@PROPERTY_SETTINGS
@given(data=st.data())
def test_random_activity_blocks(data):
    """Random block batches: vectorized interrupt draws replay the
    scalar RNG stream exactly."""
    n = data.draw(st.integers(1, 32))
    seed = data.draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    blocks = [ActivityBlock(
        signals=np.abs(rng.normal(50.0, 20.0, NUM_SIGNALS)),
        duration_s=float(rng.uniform(1e-8, 5e-3))) for _ in range(n)]
    core_a, core_b = paired_cores(seed)
    expected = [core_a.execute_block(b) for b in blocks]
    produced = core_b.execute_blocks(blocks)
    for a, b in zip(expected, produced):
        assert np.array_equal(a, b)
    assert_state_identical(core_a, core_b)
