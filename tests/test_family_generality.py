"""Tests for the template-server premise (paper Section V-B).

The profiler runs on a *template server* whose processor only has to be
in the same family as the cloud host; the paper's justification is
Table I (processors in one family share nearly all HPC events). These
tests check that premise holds in the simulation: results profiled on
one family member transfer to its sibling, and do not transfer across
vendors.
"""

import numpy as np
import pytest

from repro.core.profiler import ApplicationProfiler
from repro.cpu.events import processor_catalog
from repro.workloads import WebsiteWorkload


@pytest.fixture(scope="module")
def sibling_profiles():
    workload = WebsiteWorkload()
    reports = {}
    for model in ("intel-xeon-e5-1650", "intel-xeon-e5-4617"):
        profiler = ApplicationProfiler(workload, processor_model=model,
                                       runs_per_secret=4, window_s=1.0,
                                       slice_s=0.02, rng=33)
        reports[model] = profiler.profile(
            secrets=workload.secrets[:6])
    return reports


class TestFamilyGenerality:
    def test_siblings_share_vulnerable_events(self, sibling_profiles):
        a = sibling_profiles["intel-xeon-e5-1650"]
        b = sibling_profiles["intel-xeon-e5-4617"]
        names_a = set(a.ranking.event_names)
        names_b = set(b.ranking.event_names)
        overlap = len(names_a & names_b) / max(len(names_a), len(names_b))
        assert overlap > 0.9

    def test_sibling_rankings_agree(self, sibling_profiles):
        a = sibling_profiles["intel-xeon-e5-1650"]
        b = sibling_profiles["intel-xeon-e5-4617"]
        mi_b = dict(zip(b.ranking.event_names,
                        b.ranking.mutual_information_bits))
        top_a = [name for name, _ in a.ranking.top(20)]
        shared = [name for name in top_a if name in mi_b]
        assert len(shared) >= 15
        # Events top-ranked on the template stay clearly vulnerable on
        # the sibling (above that catalog's median MI).
        median_b = float(np.median(b.ranking.mutual_information_bits))
        strong = sum(1 for name in shared if mi_b[name] >= median_b)
        assert strong >= 0.7 * len(shared)

    def test_cross_vendor_raw_events_do_not_transfer(self):
        from repro.cpu.events import EventType
        intel = processor_catalog("intel-xeon-e5-1650")
        amd = processor_catalog("amd-epyc-7252")
        # Kernel-side tracepoint/software names are vendor-independent
        # (they come from Linux, not the CPU); the vendor-specific part
        # is the RAW PMU event space, where most guest leakage lives.
        intel_raw = {s.name for s in intel
                     if s.event_type is EventType.RAW}
        amd_raw = {s.name for s in amd
                   if s.event_type is EventType.RAW}
        overlap = len(intel_raw & amd_raw)
        assert overlap < 0.25 * len(amd_raw)  # only the curated names
