"""Sharded campaign engine: equivalence, checkpoints, crash-resume.

The acceptance bar for the campaign engine is behavioural equivalence:
for a fixed fuzzer seed, any worker count, shard size, or
interrupt/resume schedule must yield the identical report a plain
sequential :meth:`EventFuzzer.fuzz` produces.
"""

import json

import numpy as np
import pytest

from repro.core.fuzzer import (
    CampaignError,
    EventFuzzer,
    FuzzingCampaign,
    load_shard_checkpoint,
    merge_screened,
    plan_shards,
    save_shard_checkpoint,
    screen_shard,
)
from repro.core.fuzzer.campaign import (
    ShardSpec,
    config_fingerprint,
    shard_checkpoint_path,
)
from repro.isa.catalog import build_catalog


def report_key(report):
    """Everything that must be equal across equivalent campaigns."""
    covering = {gadget.name: sorted(events)
                for gadget, events in report.covering_set.items()}
    confirmed = {
        event: [(r.gadget.name, round(r.per_iteration_delta, 9))
                for r in results]
        for event, results in report.confirmed_per_event.items()}
    return (covering, confirmed, dict(report.screened_per_event),
            report.gadgets_tested, report.search_space_size)


@pytest.fixture(scope="module")
def events(fuzz_events):
    return np.array(fuzz_events)


@pytest.fixture(scope="module")
def baseline(make_fuzzer, events):
    """The sequential reference report every campaign must reproduce."""
    return make_fuzzer().fuzz(events)


class TestEquivalence:
    def test_one_worker_campaign_matches_sequential(self, make_fuzzer,
                                                    events, baseline):
        report = FuzzingCampaign(make_fuzzer(), workers=1).run(events)
        assert report_key(report) == report_key(baseline)

    def test_four_worker_campaign_matches_sequential(self, make_fuzzer,
                                                     events, baseline):
        report = FuzzingCampaign(make_fuzzer(), workers=4).run(events)
        assert report_key(report) == report_key(baseline)

    def test_shard_size_invariance(self, make_fuzzer, events, baseline):
        report = make_fuzzer(shard_size=23).fuzz(events)
        assert report_key(report) == report_key(baseline)

    def test_screening_is_order_independent(self, make_fuzzer, events):
        """Screening a late shard first changes nothing."""
        fuzzer = make_fuzzer()
        fuzzer.run_cleanup()
        config = fuzzer.shard_config(events)
        plan = plan_shards(fuzzer.gadget_budget, fuzzer.shard_size)
        forward = [screen_shard(config, s) for s in plan]
        backward = [screen_shard(config, s) for s in reversed(plan)]
        assert merge_screened(forward) == merge_screened(backward)


class TestCheckpoints:
    def test_resume_round_trip(self, make_fuzzer, events, baseline, tmp_path):
        first = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path)
        assert report_key(first.run(events)) == report_key(baseline)
        assert first.stats.screened_shards == 4
        assert (tmp_path / "campaign.json").exists()

        second = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path,
                                 resume=True)
        assert report_key(second.run(events)) == report_key(baseline)
        assert second.stats.resumed_shards == 4
        assert second.stats.screened_shards == 0

    def test_corrupt_checkpoint_is_rescreened(self, make_fuzzer, events,
                                              baseline, tmp_path):
        FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path).run(events)
        shard_checkpoint_path(tmp_path, 2).write_text("{not json",
                                                      encoding="utf-8")
        resumed = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path,
                                  resume=True)
        assert report_key(resumed.run(events)) == report_key(baseline)
        assert resumed.stats.resumed_shards == 3
        assert resumed.stats.screened_shards == 1

    def test_truncated_checkpoint_is_rescreened(self, make_fuzzer, events,
                                                baseline, tmp_path):
        FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path).run(events)
        path = shard_checkpoint_path(tmp_path, 1)
        path.write_text(path.read_text(encoding="utf-8")[:40],
                        encoding="utf-8")
        resumed = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path,
                                  resume=True)
        assert report_key(resumed.run(events)) == report_key(baseline)
        assert resumed.stats.resumed_shards == 3

    def test_stale_fingerprint_rejected(self, make_fuzzer, events, tmp_path):
        """A checkpoint from a different campaign config never loads."""
        fuzzer = make_fuzzer()
        fuzzer.run_cleanup()
        config = fuzzer.shard_config(events)
        plan = plan_shards(fuzzer.gadget_budget, fuzzer.shard_size)
        result = screen_shard(config, plan[0])
        good = config_fingerprint(config, fuzzer.gadget_budget,
                                  fuzzer.shard_size)
        save_shard_checkpoint(tmp_path, result, good)
        assert load_shard_checkpoint(tmp_path, plan[0], good) is not None
        assert load_shard_checkpoint(tmp_path, plan[0], "deadbeef") is None

    def test_geometry_mismatch_rejected(self, make_fuzzer, events, tmp_path):
        fuzzer = make_fuzzer()
        fuzzer.run_cleanup()
        config = fuzzer.shard_config(events)
        plan = plan_shards(fuzzer.gadget_budget, fuzzer.shard_size)
        fingerprint = config_fingerprint(config, fuzzer.gadget_budget,
                                         fuzzer.shard_size)
        save_shard_checkpoint(tmp_path, screen_shard(config, plan[0]),
                              fingerprint)
        other = ShardSpec(index=0, start=0, count=plan[0].count + 1)
        assert load_shard_checkpoint(tmp_path, other, fingerprint) is None

    def test_crash_then_resume_matches_baseline(self, make_fuzzer, events,
                                                baseline, tmp_path):
        """Kill the campaign after two shards; resume finishes it."""
        class Crash(RuntimeError):
            pass

        completed = []

        def crash_after_two(result):
            completed.append(result.index)
            if len(completed) == 2:
                raise Crash

        interrupted = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path,
                                      shard_hook=crash_after_two)
        with pytest.raises(Crash):
            interrupted.run(events)
        on_disk = sorted(p.name for p in tmp_path.glob("shard-*.json"))
        assert len(on_disk) == 2  # the hook fires after the checkpoint write

        resumed = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path,
                                  resume=True)
        assert report_key(resumed.run(events)) == report_key(baseline)
        assert resumed.stats.resumed_shards == 2
        assert resumed.stats.screened_shards == 2

    def test_manifest_describes_campaign(self, make_fuzzer, events, tmp_path):
        campaign = FuzzingCampaign(make_fuzzer(), checkpoint_dir=tmp_path)
        campaign.run(events)
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        assert manifest["budget"] == 160
        assert manifest["shard_size"] == 40
        assert manifest["num_shards"] == 4
        assert manifest["events"] == [int(e) for e in events]


class TestValidation:
    def test_zero_workers_rejected(self, make_fuzzer):
        with pytest.raises(CampaignError):
            FuzzingCampaign(make_fuzzer(), workers=0)

    def test_resume_requires_checkpoint_dir(self, make_fuzzer):
        with pytest.raises(CampaignError):
            FuzzingCampaign(make_fuzzer(), resume=True)

    def test_empty_events_rejected(self, make_fuzzer):
        with pytest.raises(ValueError):
            FuzzingCampaign(make_fuzzer()).run(np.array([], dtype=int))

    def test_custom_catalog_blocks_parallel(self, events):
        """Bespoke catalogs cannot be rebuilt in workers: refuse early."""
        fuzzer = EventFuzzer(isa_catalog=build_catalog(), gadget_budget=8,
                             rng=3)
        with pytest.raises(ValueError, match="shared ISA catalog"):
            fuzzer.require_shardable()
        with pytest.raises(ValueError, match="shared ISA catalog"):
            FuzzingCampaign(fuzzer, workers=2).run(events)

    def test_custom_catalog_still_runs_sequentially(self, events):
        fuzzer = EventFuzzer(isa_catalog=build_catalog(), gadget_budget=8,
                             rng=3)
        report = FuzzingCampaign(fuzzer, workers=1).run(events)
        assert report.gadgets_tested == 8
