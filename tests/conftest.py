"""Shared fixtures: cached catalogs and small deterministic objects."""

import os

import numpy as np
import pytest

from repro.core.fuzzer import EventFuzzer
from repro.cpu.core import Core
from repro.cpu.events import processor_catalog
from repro.isa.catalog import build_catalog, shared_catalog


@pytest.fixture(scope="session", autouse=True)
def _session_telemetry():
    """Export session telemetry when ``REPRO_TEST_TRACE_DIR`` is set.

    CI points this at a scratch directory and uploads it as an
    artifact when a job fails, so a red run ships its span traces and
    metrics for post-mortems. Tests that open their own telemetry
    sessions nest inside (and restore) this one, and each xdist worker
    writes its own ``trace-<worker>.jsonl``, so the export is safe
    under ``-n auto``. Without the variable this is a no-op.
    """
    trace_dir = os.environ.get("REPRO_TEST_TRACE_DIR", "")
    if not trace_dir:
        yield
        return
    from repro.telemetry import runtime as telemetry
    worker = os.environ.get("PYTEST_XDIST_WORKER", "main")
    runtime = telemetry.configure(trace_dir=trace_dir, process=worker)
    try:
        yield
    finally:
        # Flush the runtime we created even if a test left a different
        # one installed (sessions restore, but a crashed test might
        # not have).
        runtime.flush()
        telemetry.disable()


@pytest.fixture(scope="session")
def amd_catalog():
    return processor_catalog("amd-epyc-7252")


@pytest.fixture(scope="session")
def shared_isa():
    """The process-wide shared ISA catalog (what campaign workers use)."""
    return shared_catalog()


@pytest.fixture(scope="session")
def fuzz_events(amd_catalog):
    """A small, diverse set of event indices for fast fuzzing runs."""
    names = ("RETIRED_UOPS", "DATA_CACHE_REFILLS_FROM_SYSTEM",
             "RETIRED_COND_BRANCHES", "CACHE_LINE_FLUSHES")
    return [amd_catalog.index_of(n) for n in names]


@pytest.fixture(scope="session")
def make_fuzzer(shared_isa):
    """Factory for laptop-scale fuzzers sharing the prebuilt catalog.

    Defaults give a 4-shard budget so campaign tests exercise real
    sharding while staying fast; any default can be overridden.
    """
    def factory(**kwargs):
        kwargs.setdefault("isa_catalog", shared_isa)
        kwargs.setdefault("gadget_budget", 160)
        kwargs.setdefault("shard_size", 40)
        kwargs.setdefault("confirm_per_event", 4)
        kwargs.setdefault("rng", 11)
        return EventFuzzer(**kwargs)
    return factory


@pytest.fixture(scope="session")
def intel_catalog():
    return processor_catalog("intel-xeon-e5-1650")


@pytest.fixture(scope="session")
def isa_catalog():
    return build_catalog()


@pytest.fixture()
def core():
    return Core("amd-epyc-7252", rng=np.random.default_rng(42))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
