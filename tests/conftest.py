"""Shared fixtures: cached catalogs and small deterministic objects."""

import numpy as np
import pytest

from repro.core.fuzzer import EventFuzzer
from repro.cpu.core import Core
from repro.cpu.events import processor_catalog
from repro.isa.catalog import build_catalog, shared_catalog


@pytest.fixture(scope="session")
def amd_catalog():
    return processor_catalog("amd-epyc-7252")


@pytest.fixture(scope="session")
def shared_isa():
    """The process-wide shared ISA catalog (what campaign workers use)."""
    return shared_catalog()


@pytest.fixture(scope="session")
def fuzz_events(amd_catalog):
    """A small, diverse set of event indices for fast fuzzing runs."""
    names = ("RETIRED_UOPS", "DATA_CACHE_REFILLS_FROM_SYSTEM",
             "RETIRED_COND_BRANCHES", "CACHE_LINE_FLUSHES")
    return [amd_catalog.index_of(n) for n in names]


@pytest.fixture(scope="session")
def make_fuzzer(shared_isa):
    """Factory for laptop-scale fuzzers sharing the prebuilt catalog.

    Defaults give a 4-shard budget so campaign tests exercise real
    sharding while staying fast; any default can be overridden.
    """
    def factory(**kwargs):
        kwargs.setdefault("isa_catalog", shared_isa)
        kwargs.setdefault("gadget_budget", 160)
        kwargs.setdefault("shard_size", 40)
        kwargs.setdefault("confirm_per_event", 4)
        kwargs.setdefault("rng", 11)
        return EventFuzzer(**kwargs)
    return factory


@pytest.fixture(scope="session")
def intel_catalog():
    return processor_catalog("intel-xeon-e5-1650")


@pytest.fixture(scope="session")
def isa_catalog():
    return build_catalog()


@pytest.fixture()
def core():
    return Core("amd-epyc-7252", rng=np.random.default_rng(42))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
