"""Shared fixtures: cached catalogs and small deterministic objects."""

import numpy as np
import pytest

from repro.cpu.core import Core
from repro.cpu.events import processor_catalog
from repro.isa.catalog import build_catalog


@pytest.fixture(scope="session")
def amd_catalog():
    return processor_catalog("amd-epyc-7252")


@pytest.fixture(scope="session")
def intel_catalog():
    return processor_catalog("intel-xeon-e5-1650")


@pytest.fixture(scope="session")
def isa_catalog():
    return build_catalog()


@pytest.fixture()
def core():
    return Core("amd-epyc-7252", rng=np.random.default_rng(42))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
