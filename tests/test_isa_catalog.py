"""Tests for the machine-readable ISA catalog."""

import pytest

from repro.isa import (
    Extension,
    InstructionCategory,
    InstructionClass,
    OperandForm,
    build_catalog,
)
from repro.isa.catalog import DEFAULT_CATALOG_SIZE


class TestCatalogGeneration:
    def test_default_size_matches_paper_scale(self, isa_catalog):
        assert len(isa_catalog) == DEFAULT_CATALOG_SIZE == 14015

    def test_deterministic(self, isa_catalog):
        again = build_catalog()
        assert [v.name for v in again] == [v.name for v in isa_catalog]

    def test_unique_names(self, isa_catalog):
        names = [v.name for v in isa_catalog]
        assert len(names) == len(set(names))

    def test_custom_size(self):
        small = build_catalog(target_size=500)
        assert len(small) == 500

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            build_catalog(target_size=0)

    def test_contains_paper_relevant_instructions(self, isa_catalog):
        for name in ("CLFLUSH m8", "CPUID", "RDPMC", "PUSH r64", "POP r64",
                     "ADD r64,r64", "MOV r64,m64"):
            assert isa_catalog.get(name).name == name

    def test_lookup_unknown_raises(self, isa_catalog):
        with pytest.raises(KeyError, match="NOT_AN_INSTR"):
            isa_catalog.get("NOT_AN_INSTR")

    def test_every_extension_present(self, isa_catalog):
        extensions = {v.extension for v in isa_catalog}
        for ext in (Extension.BASE, Extension.SSE2, Extension.AVX2,
                    Extension.AVX512, Extension.X87_FPU, Extension.AES):
            assert ext in extensions

    def test_by_extension_and_category(self, isa_catalog):
        simd = isa_catalog.by_category(InstructionCategory.SIMD)
        assert simd and all(
            v.category is InstructionCategory.SIMD for v in simd)
        avx = isa_catalog.by_extension(Extension.AVX)
        assert avx and all(v.extension is Extension.AVX for v in avx)


class TestInstructionSpec:
    def test_memory_semantics(self, isa_catalog):
        load = isa_catalog.get("MOV r64,m64")
        store = isa_catalog.get("MOV m64,r64")
        assert load.reads_memory and not load.writes_memory
        assert store.writes_memory and not store.reads_memory

    def test_name_includes_operand_form(self, isa_catalog):
        spec = isa_catalog.get("ADD r64,r64")
        assert spec.operand_form is OperandForm.R64_R64

    def test_class_semantics(self, isa_catalog):
        assert isa_catalog.get("CPUID").iclass is InstructionClass.SERIALIZE
        assert isa_catalog.get("CLFLUSH m8").iclass is InstructionClass.CLFLUSH
        assert isa_catalog.get("RDPMC").iclass is InstructionClass.RDPMC
