"""Tests for the RSA workload and the SPA-style key-recovery attack."""

import numpy as np
import pytest

from repro.attacks import TraceCollector
from repro.attacks.spa import KeyRecoveryAttack
from repro.workloads.crypto import RsaSignWorkload, random_key


class TestRsaWorkload:
    def test_keys_are_distinct_and_normalized(self):
        workload = RsaSignWorkload(num_bits=32, num_keys=8)
        keys = workload.secrets
        assert len(set(keys)) == 8
        assert all(key[0] == 1 for key in keys)
        assert all(len(key) == 32 for key in keys)

    def test_schedule_length_tracks_hamming_weight(self, rng):
        workload = RsaSignWorkload(num_bits=16, num_keys=4)
        dense = tuple([1] * 16)
        sparse = tuple([1] + [0] * 15)
        long_program = workload.program_for(dense, rng)
        short_program = workload.program_for(sparse, rng)
        assert len(long_program.phases) == 32
        assert len(short_program.phases) == 17

    def test_signature_fits_window(self):
        workload = RsaSignWorkload(num_bits=64, op_seconds=0.018)
        assert workload.signature_seconds < workload.default_duration_s

    def test_malformed_key_rejected(self, rng):
        workload = RsaSignWorkload(num_bits=16, num_keys=4)
        with pytest.raises(ValueError):
            workload.program_for(tuple([1] * 17), rng)  # wrong length
        with pytest.raises(ValueError):
            workload.program_for(tuple([2] + [0] * 15), rng)  # bad bit

    def test_validation(self):
        with pytest.raises(ValueError):
            RsaSignWorkload(num_bits=1)
        with pytest.raises(ValueError):
            RsaSignWorkload(num_keys=1)
        with pytest.raises(ValueError):
            random_key(0) if False else RsaSignWorkload(op_seconds=0.0)


class TestKeyRecovery:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = RsaSignWorkload(num_bits=32, num_keys=8,
                                   op_seconds=0.018)
        collector = TraceCollector(workload, duration_s=1.5,
                                   slice_s=0.003, rng=1)
        return workload, collector

    def test_undefended_recovery_near_perfect(self, setup):
        workload, collector = setup
        attack = KeyRecoveryAttack(op_slices=6)
        result = attack.run(collector, workload.secrets, rng=2)
        assert result.bit_accuracy > 0.95
        assert result.keys_attacked == 4

    def test_schedule_string(self):
        attack = KeyRecoveryAttack(op_slices=6)
        assert attack._schedule((1, 0, 1)) == "SMSSM"

    def test_recover_before_calibrate_raises(self, setup):
        attack = KeyRecoveryAttack(op_slices=6)
        with pytest.raises(RuntimeError):
            attack.recover_bits(np.zeros((4, 100)), 8)

    def test_defense_degrades_recovery(self, setup):
        from repro.core.obfuscator import EventObfuscator
        workload, _ = setup
        obfuscator = EventObfuscator("laplace", epsilon=0.25,
                                     sensitivity=1e7, rng=5)
        defended = TraceCollector(workload, duration_s=1.5,
                                  slice_s=0.003, obfuscator=obfuscator,
                                  rng=1)
        attack = KeyRecoveryAttack(op_slices=6)
        result = attack.run(defended, workload.secrets, rng=2)
        assert result.bit_accuracy < 0.8
        assert result.full_key_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyRecoveryAttack(op_slices=0)
