"""Property tests for the campaign merge and screening invariants.

:func:`merge_screened` is the reduction the whole campaign design leans
on: it must behave like a set union over per-gadget results —
associative, commutative, duplicate-tolerant, and invariant to how the
budget was partitioned into shards. Hypothesis drives those algebraic
laws on synthetic shard results, and a smaller real-screening property
checks the end-to-end claim on the actual harness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fuzzer import merge_screened, plan_shards, screen_shard
from repro.core.fuzzer.campaign import ShardResult

# -- synthetic pools ------------------------------------------------------

deltas = st.floats(min_value=0.01, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@st.composite
def screened_pools(draw):
    """A gadget budget plus ground-truth screened pairs per event."""
    budget = draw(st.integers(min_value=1, max_value=60))
    events = draw(st.lists(st.integers(min_value=0, max_value=40),
                           min_size=1, max_size=4, unique=True))
    pool = {}
    for event in events:
        indices = draw(st.lists(
            st.integers(min_value=0, max_value=budget - 1),
            unique=True, max_size=budget))
        pool[event] = sorted(
            (index, draw(deltas)) for index in indices)
    return budget, pool


def shard_results(budget, pool, shard_size):
    """Partition a ground-truth pool into per-shard results."""
    results = []
    for spec in plan_shards(budget, shard_size):
        screened = {
            event: [(i, d) for i, d in pairs if spec.start <= i < spec.stop]
            for event, pairs in pool.items()}
        results.append(ShardResult(index=spec.index, start=spec.start,
                                   count=spec.count, screened=screened))
    return results


def ground_truth(pool):
    return {event: list(pairs) for event, pairs in pool.items()}


class TestMergeAlgebra:
    @given(data=screened_pools(),
           size_a=st.integers(1, 60), size_b=st.integers(1, 60))
    def test_partition_invariance(self, data, size_a, size_b):
        """Any two shard sizes merge to the same pool."""
        budget, pool = data
        merged_a = merge_screened(shard_results(budget, pool, size_a))
        merged_b = merge_screened(shard_results(budget, pool, size_b))
        assert merged_a == merged_b == ground_truth(pool)

    @given(data=screened_pools(), size=st.integers(1, 60),
           seed=st.integers(0, 2**31))
    def test_commutativity(self, data, size, seed):
        """Shard completion order (worker scheduling) is irrelevant."""
        budget, pool = data
        results = shard_results(budget, pool, size)
        shuffled = list(results)
        np.random.default_rng(seed).shuffle(shuffled)
        assert merge_screened(shuffled) == merge_screened(results)

    @given(data=screened_pools(), size=st.integers(1, 60),
           split=st.integers(0, 60))
    def test_associativity(self, data, size, split):
        """Merging halves then combining equals one global merge."""
        budget, pool = data
        results = shard_results(budget, pool, size)
        cut = min(split, len(results))
        head = merge_screened(results[:cut])
        tail = merge_screened(results[cut:])
        combined = {}
        for part in (head, tail):
            for event, pairs in part.items():
                combined.setdefault(event, []).extend(pairs)
        for pairs in combined.values():
            pairs.sort(key=lambda pair: pair[0])
        assert combined == merge_screened(results)

    @given(data=screened_pools(), size=st.integers(1, 60),
           dupes=st.lists(st.integers(0, 59), max_size=4))
    def test_duplicate_shards_collapse(self, data, size, dupes):
        """A checkpointed shard re-screened by a racing worker is one
        shard, not two."""
        budget, pool = data
        results = shard_results(budget, pool, size)
        with_dupes = results + [results[i % len(results)] for i in dupes]
        assert merge_screened(with_dupes) == merge_screened(results)


# -- the real pipeline ----------------------------------------------------


@pytest.fixture(scope="module")
def real_screen(make_fuzzer, fuzz_events):
    """One 24-gadget screening pass as ground truth."""
    budget = 24
    fuzzer = make_fuzzer(gadget_budget=budget, shard_size=budget)
    fuzzer.run_cleanup()
    config = fuzzer.shard_config(np.array(fuzz_events[:2]))
    truth = merge_screened(
        screen_shard(config, spec) for spec in plan_shards(budget, budget))
    return budget, config, truth


@given(shard_size=st.integers(min_value=1, max_value=24))
@settings(max_examples=8, deadline=None)
def test_real_screening_partition_invariant(real_screen, shard_size):
    """Actually screening with any shard size reproduces the pool."""
    budget, config, truth = real_screen
    merged = merge_screened(
        screen_shard(config, spec)
        for spec in plan_shards(budget, shard_size))
    assert merged == truth
