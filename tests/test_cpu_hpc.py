"""Tests for the HPC register file and RDPMC semantics."""

import pytest

from repro.cpu.hpc import HpcRegisterFile, PerfCounter
from repro.cpu.signals import Signal, zero_signals


class TestHpcRegisterFile:
    def test_four_registers_by_default(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        assert hpc.num_registers == 4

    def test_program_and_accumulate(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        hpc.program(0, "RETIRED_UOPS")
        signals = zero_signals()
        signals[Signal.UOPS] = 500.0
        hpc.accumulate(signals, noisy=False)
        assert hpc.rdpmc(0) == 500

    def test_accumulation_is_cumulative(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        hpc.program(0, "RETIRED_UOPS")
        signals = zero_signals()
        signals[Signal.UOPS] = 100.0
        for _ in range(3):
            hpc.accumulate(signals, noisy=False)
        assert hpc.rdpmc(0) == 300

    def test_rdpmc_unprogrammed_raises(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        with pytest.raises(RuntimeError):
            hpc.rdpmc(0)

    def test_program_resets_value(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        hpc.program(0, "RETIRED_UOPS")
        signals = zero_signals()
        signals[Signal.UOPS] = 100.0
        hpc.accumulate(signals, noisy=False)
        hpc.program(0, "CPU_CYCLES")
        assert hpc.rdpmc(0) == 0

    def test_slot_bounds(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        with pytest.raises(IndexError):
            hpc.program(4, "RETIRED_UOPS")
        with pytest.raises(IndexError):
            hpc.program(0, 10**6)

    def test_read_all(self, amd_catalog):
        hpc = HpcRegisterFile(amd_catalog, rng=0)
        hpc.program(0, "RETIRED_UOPS")
        hpc.program(2, "CPU_CYCLES")
        values = hpc.read_all()
        assert set(values) == {0, 2}


class TestPerfCounter:
    def test_multiplexing_scale(self):
        counter = PerfCounter(event_index=0, value=100.0,
                              enabled_time=1.0, running_time=0.25)
        assert counter.scaling_factor == pytest.approx(4.0)
        assert counter.scaled_value() == pytest.approx(400.0)

    def test_unscaled_when_always_running(self):
        counter = PerfCounter(event_index=0, value=100.0,
                              enabled_time=1.0, running_time=1.0)
        assert counter.scaled_value() == pytest.approx(100.0)
